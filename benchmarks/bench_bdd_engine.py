"""Memory/throughput smoke benchmark for the BDD engine overhaul.

Three measurements, matching the ISSUE acceptance criteria:

1. **Prefix-set compilation speedup** — the trie-based bulk
   :meth:`HeaderEncoding.prefix_set_bdd` against the old chained
   ``or_`` fold over per-prefix BDDs, on a deterministic synthetic
   prefix set.  The overhaul claims >= 2x.

2. **Kernel compile speedup** — each kernel's *native* compile path
   over the same predicate-set workload: the dict kernel folds
   per-prefix BDDs one ``or_`` at a time (the path the verifier used
   before the flat kernel landed), the flat kernel takes the batched
   bulk path.  Results are cross-checked for equality before timing;
   the flat path must be >= 2x the dict path (CI floor; the acceptance
   target is 3x).

3. **Peak worker node count across a sharded FatTree4 DPV**, run once
   per kernel — the all-pair reachability workload split into query
   shards (:func:`repro.dist.sharding.shard_queries`); the DPO
   garbage-collects worker engines at every ``reset_dataplane_run``
   boundary, so the peak ``node_count`` must stay flat (non-monotonic)
   instead of growing with the query count, on both kernels.

Usage:

    python benchmarks/bench_bdd_engine.py --write-baseline \
        benchmarks/baselines/bdd_engine_fattree4.json
    python benchmarks/bench_bdd_engine.py --check-baseline \
        benchmarks/baselines/bdd_engine_fattree4.json

``--check-baseline`` exits non-zero when either kernel's peak node
count regresses more than ``--tolerance`` (default 20%) over the
committed baseline, or when a compile speedup drops below its 2x
floor — this is the CI memory-regression job.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bdd.engine import FALSE, TRUE, BddEngine
from repro.bdd.headerspace import HeaderEncoding
from repro.dist.controller import S2Controller, S2Options
from repro.dist.sharding import shard_queries
from repro.net.fattree import build_fattree
from repro.net.ip import Prefix

SPEEDUP_FLOOR = 2.0
KERNEL_SPEEDUP_FLOOR = 2.0
KERNELS = ("flat", "dict")


def synthetic_prefixes(count: int, seed: int = 7) -> List[Prefix]:
    """A deterministic mixed-length prefix set (no duplicates)."""
    rng = random.Random(seed)
    seen = set()
    prefixes: List[Prefix] = []
    while len(prefixes) < count:
        length = rng.randint(8, 28)
        network = rng.getrandbits(32) & (~0 << (32 - length)) & 0xFFFFFFFF
        key = (network, length)
        if key in seen:
            continue
        seen.add(key)
        prefixes.append(Prefix(network, length))
    return prefixes


def bench_prefix_compilation(count: int, repeats: int = 3) -> Dict[str, float]:
    """Trie-based bulk compile vs the old chained-``or_`` fold."""
    encoding = HeaderEncoding()
    prefixes = synthetic_prefixes(count)

    def chained() -> float:
        engine = encoding.make_engine()
        start = time.perf_counter()
        acc = FALSE
        for prefix in prefixes:
            acc = engine.or_(acc, encoding.prefix_bdd(engine, prefix))
        return time.perf_counter() - start

    def bulk() -> float:
        engine = encoding.make_engine()
        start = time.perf_counter()
        encoding.prefix_set_bdd(engine, prefixes)
        return time.perf_counter() - start

    # Correctness cross-check on a shared engine before timing.
    engine = encoding.make_engine()
    acc = FALSE
    for prefix in prefixes:
        acc = engine.or_(acc, encoding.prefix_bdd(engine, prefix))
    if encoding.prefix_set_bdd(engine, prefixes) != acc:
        raise AssertionError("bulk compile disagrees with chained or_ fold")

    chained_s = min(chained() for _ in range(repeats))
    bulk_s = min(bulk() for _ in range(repeats))
    return {
        "prefix_count": count,
        "chained_seconds": chained_s,
        "bulk_seconds": bulk_s,
        "speedup": chained_s / bulk_s if bulk_s else float("inf"),
    }


def bench_kernel_compile(
    count: int, repeats: int = 3
) -> Dict[str, float]:
    """Each kernel's native predicate-compile path, head to head.

    The dict kernel compiles the way the verifier did before the flat
    kernel existed: one per-prefix BDD at a time, chained with ``or_``.
    The flat kernel takes its batched path (the bulk trie build).  Both
    results are checked equal (same canonical function — compared via
    model count and a cross-engine transfer-free probe) before timing.
    """
    encoding = HeaderEncoding()
    prefixes = synthetic_prefixes(count)

    def dict_native() -> float:
        engine = encoding.make_engine(kernel="dict")
        start = time.perf_counter()
        acc = FALSE
        for prefix in prefixes:
            acc = engine.or_(acc, encoding.prefix_bdd(engine, prefix))
        return time.perf_counter() - start

    def flat_native() -> float:
        engine = encoding.make_engine(kernel="flat")
        start = time.perf_counter()
        encoding.prefix_set_bdd(engine, prefixes)
        return time.perf_counter() - start

    # Correctness cross-check: same model count from both kernels'
    # native paths (the kernels never share node ids).
    probe_dict = encoding.make_engine(kernel="dict")
    acc = FALSE
    for prefix in prefixes:
        acc = probe_dict.or_(acc, encoding.prefix_bdd(probe_dict, prefix))
    probe_flat = encoding.make_engine(kernel="flat")
    bulk_root = encoding.prefix_set_bdd(probe_flat, prefixes)
    if probe_flat.sat_count(bulk_root) != probe_dict.sat_count(acc):
        raise AssertionError(
            "flat batched compile disagrees with the dict fold"
        )

    dict_s = min(dict_native() for _ in range(repeats))
    flat_s = min(flat_native() for _ in range(repeats))
    return {
        "prefix_count": count,
        "dict_seconds": dict_s,
        "flat_seconds": flat_s,
        "speedup": dict_s / flat_s if flat_s else float("inf"),
    }


def bench_sharded_dpv(
    num_query_shards: int, kernel: str = "flat"
) -> Dict[str, object]:
    """All-pair reachability on FatTree4, one forward pass per query
    shard; records the peak worker node count after each shard."""
    snapshot = build_fattree(4)
    options = S2Options(num_workers=4, num_shards=2, bdd_kernel=kernel)
    with S2Controller(snapshot, options) as controller:
        controller.build_data_plane()
        sources = controller.prefix_holders()
        shards = shard_queries(sources, num_query_shards)
        per_shard_peaks: List[int] = []
        start = time.perf_counter()
        for shard in shards:
            controller.dpo.forward(list(shard), TRUE)
            peak = max(
                int(counters.get("node_count", 0))
                for counters in controller.dpo.worker_engine_counters()
            )
            per_shard_peaks.append(peak)
        elapsed = time.perf_counter() - start
        gc_runs = sum(
            int(counters.get("gc_runs", 0))
            for counters in controller.dpo.worker_engine_counters()
        )
    return {
        "network": "fattree4",
        "kernel": kernel,
        "query_shards": len(shards),
        "per_shard_peak_node_count": per_shard_peaks,
        "peak_node_count": max(per_shard_peaks),
        "gc_runs": gc_runs,
        "forward_seconds": elapsed,
    }


def run(num_query_shards: int, prefix_count: int) -> Dict[str, object]:
    compile_result = bench_prefix_compilation(prefix_count)
    kernel_result = bench_kernel_compile(prefix_count)
    dpv_results = {
        kernel: bench_sharded_dpv(num_query_shards, kernel)
        for kernel in KERNELS
    }
    return {
        "prefix_compile": compile_result,
        "kernel_compile": kernel_result,
        "dpv": dpv_results,
    }


def check(result: Dict[str, object], baseline: Dict[str, object],
          tolerance: float) -> List[str]:
    problems: List[str] = []
    speedup = result["prefix_compile"]["speedup"]
    if speedup < SPEEDUP_FLOOR:
        problems.append(
            f"prefix-set compile speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.1f}x floor"
        )
    kernel_speedup = result["kernel_compile"]["speedup"]
    if kernel_speedup < KERNEL_SPEEDUP_FLOOR:
        problems.append(
            f"flat-kernel compile speedup {kernel_speedup:.2f}x over the "
            f"dict kernel is below the {KERNEL_SPEEDUP_FLOOR:.1f}x floor"
        )
    for kernel in KERNELS:
        dpv = result["dpv"][kernel]
        base = baseline["dpv"][kernel]
        peak = dpv["peak_node_count"]
        allowed = base["peak_node_count"] * (1.0 + tolerance)
        if peak > allowed:
            problems.append(
                f"[{kernel}] peak worker node_count {peak} exceeds "
                f"baseline {base['peak_node_count']} by more than "
                f"{tolerance:.0%} (allowed {allowed:.0f})"
            )
        peaks = dpv["per_shard_peak_node_count"]
        if peaks and peaks[-1] > peaks[0] * (1.0 + tolerance):
            problems.append(
                f"[{kernel}] per-shard peaks grow monotonically: first "
                f"{peaks[0]}, last {peaks[-1]} — between-shard GC is "
                "not holding the footprint flat"
            )
        if dpv["gc_runs"] == 0:
            problems.append(
                f"[{kernel}] no worker GC ran across the sharded DPV"
            )
    # The two kernels GC the same roots from semantically identical
    # BDDs: their live-node peaks must agree, not just regress slowly.
    flat_peak = result["dpv"]["flat"]["peak_node_count"]
    dict_peak = result["dpv"]["dict"]["peak_node_count"]
    if flat_peak > dict_peak * (1.0 + tolerance):
        problems.append(
            f"flat-kernel peak node_count {flat_peak} exceeds the dict "
            f"kernel's {dict_peak} by more than {tolerance:.0%}"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=8,
                        help="query shards for the DPV run (default 8)")
    parser.add_argument("--prefixes", type=int, default=512,
                        help="synthetic prefix-set size (default 512)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed peak node_count regression (0.20=20%%)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the measured baseline JSON and exit")
    parser.add_argument("--check-baseline", metavar="PATH",
                        help="compare against a committed baseline; exit 1 "
                             "on regression")
    args = parser.parse_args(argv)

    result = run(args.shards, args.prefixes)
    compile_result = result["prefix_compile"]
    kernel_result = result["kernel_compile"]
    print(f"prefix-set compile ({compile_result['prefix_count']} prefixes): "
          f"chained {compile_result['chained_seconds'] * 1e3:.1f} ms, "
          f"bulk {compile_result['bulk_seconds'] * 1e3:.1f} ms "
          f"-> {compile_result['speedup']:.1f}x")
    print(f"kernel compile ({kernel_result['prefix_count']} prefixes): "
          f"dict fold {kernel_result['dict_seconds'] * 1e3:.1f} ms, "
          f"flat batched {kernel_result['flat_seconds'] * 1e3:.1f} ms "
          f"-> {kernel_result['speedup']:.1f}x")
    for kernel in KERNELS:
        dpv = result["dpv"][kernel]
        print(f"fattree4 DPV [{kernel}] over {dpv['query_shards']} query "
              f"shards: peak node_count {dpv['peak_node_count']}, "
              f"per-shard {dpv['per_shard_peak_node_count']}, "
              f"gc_runs {dpv['gc_runs']}, "
              f"{dpv['forward_seconds']:.2f} s")

    if args.write_baseline:
        path = Path(args.write_baseline)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {path}")
        return 0

    if args.check_baseline:
        baseline = json.loads(Path(args.check_baseline).read_text())
        problems = check(result, baseline, args.tolerance)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("memory regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
