"""Memory/throughput smoke benchmark for the BDD engine overhaul.

Two measurements, matching the ISSUE acceptance criteria:

1. **Prefix-set compilation speedup** — the trie-based bulk
   :meth:`HeaderEncoding.prefix_set_bdd` against the old chained
   ``or_`` fold over per-prefix BDDs, on a deterministic synthetic
   prefix set.  The overhaul claims >= 2x.

2. **Peak worker node count across a sharded FatTree4 DPV** — the
   all-pair reachability workload split into query shards
   (:func:`repro.dist.sharding.shard_queries`); the DPO garbage-collects
   worker engines at every ``reset_dataplane_run`` boundary, so the peak
   ``node_count`` must stay flat (non-monotonic) instead of growing with
   the query count.

Usage:

    python benchmarks/bench_bdd_engine.py --write-baseline \
        benchmarks/baselines/bdd_engine_fattree4.json
    python benchmarks/bench_bdd_engine.py --check-baseline \
        benchmarks/baselines/bdd_engine_fattree4.json

``--check-baseline`` exits non-zero when the peak node count regresses
more than ``--tolerance`` (default 20%) over the committed baseline, or
when the compile speedup drops below 2x — this is the CI
memory-regression job.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bdd.engine import FALSE, TRUE, BddEngine
from repro.bdd.headerspace import HeaderEncoding
from repro.dist.controller import S2Controller, S2Options
from repro.dist.sharding import shard_queries
from repro.net.fattree import build_fattree
from repro.net.ip import Prefix

SPEEDUP_FLOOR = 2.0


def synthetic_prefixes(count: int, seed: int = 7) -> List[Prefix]:
    """A deterministic mixed-length prefix set (no duplicates)."""
    rng = random.Random(seed)
    seen = set()
    prefixes: List[Prefix] = []
    while len(prefixes) < count:
        length = rng.randint(8, 28)
        network = rng.getrandbits(32) & (~0 << (32 - length)) & 0xFFFFFFFF
        key = (network, length)
        if key in seen:
            continue
        seen.add(key)
        prefixes.append(Prefix(network, length))
    return prefixes


def bench_prefix_compilation(count: int, repeats: int = 3) -> Dict[str, float]:
    """Trie-based bulk compile vs the old chained-``or_`` fold."""
    encoding = HeaderEncoding()
    prefixes = synthetic_prefixes(count)

    def chained() -> float:
        engine = encoding.make_engine()
        start = time.perf_counter()
        acc = FALSE
        for prefix in prefixes:
            acc = engine.or_(acc, encoding.prefix_bdd(engine, prefix))
        return time.perf_counter() - start

    def bulk() -> float:
        engine = encoding.make_engine()
        start = time.perf_counter()
        encoding.prefix_set_bdd(engine, prefixes)
        return time.perf_counter() - start

    # Correctness cross-check on a shared engine before timing.
    engine = encoding.make_engine()
    acc = FALSE
    for prefix in prefixes:
        acc = engine.or_(acc, encoding.prefix_bdd(engine, prefix))
    if encoding.prefix_set_bdd(engine, prefixes) != acc:
        raise AssertionError("bulk compile disagrees with chained or_ fold")

    chained_s = min(chained() for _ in range(repeats))
    bulk_s = min(bulk() for _ in range(repeats))
    return {
        "prefix_count": count,
        "chained_seconds": chained_s,
        "bulk_seconds": bulk_s,
        "speedup": chained_s / bulk_s if bulk_s else float("inf"),
    }


def bench_sharded_dpv(num_query_shards: int) -> Dict[str, object]:
    """All-pair reachability on FatTree4, one forward pass per query
    shard; records the peak worker node count after each shard."""
    snapshot = build_fattree(4)
    options = S2Options(num_workers=4, num_shards=2)
    with S2Controller(snapshot, options) as controller:
        controller.build_data_plane()
        sources = controller.prefix_holders()
        shards = shard_queries(sources, num_query_shards)
        per_shard_peaks: List[int] = []
        start = time.perf_counter()
        for shard in shards:
            controller.dpo.forward(list(shard), TRUE)
            peak = max(
                int(counters.get("node_count", 0))
                for counters in controller.dpo.worker_engine_counters()
            )
            per_shard_peaks.append(peak)
        elapsed = time.perf_counter() - start
        gc_runs = sum(
            int(counters.get("gc_runs", 0))
            for counters in controller.dpo.worker_engine_counters()
        )
    return {
        "network": "fattree4",
        "query_shards": len(shards),
        "per_shard_peak_node_count": per_shard_peaks,
        "peak_node_count": max(per_shard_peaks),
        "gc_runs": gc_runs,
        "forward_seconds": elapsed,
    }


def run(num_query_shards: int, prefix_count: int) -> Dict[str, object]:
    compile_result = bench_prefix_compilation(prefix_count)
    dpv_result = bench_sharded_dpv(num_query_shards)
    return {"prefix_compile": compile_result, "dpv": dpv_result}


def check(result: Dict[str, object], baseline: Dict[str, object],
          tolerance: float) -> List[str]:
    problems: List[str] = []
    speedup = result["prefix_compile"]["speedup"]
    if speedup < SPEEDUP_FLOOR:
        problems.append(
            f"prefix-set compile speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.1f}x floor"
        )
    peak = result["dpv"]["peak_node_count"]
    allowed = baseline["dpv"]["peak_node_count"] * (1.0 + tolerance)
    if peak > allowed:
        problems.append(
            f"peak worker node_count {peak} exceeds baseline "
            f"{baseline['dpv']['peak_node_count']} by more than "
            f"{tolerance:.0%} (allowed {allowed:.0f})"
        )
    peaks = result["dpv"]["per_shard_peak_node_count"]
    if peaks and peaks[-1] > peaks[0] * (1.0 + tolerance):
        problems.append(
            f"per-shard peaks grow monotonically: first {peaks[0]}, "
            f"last {peaks[-1]} — between-shard GC is not holding the "
            "footprint flat"
        )
    if result["dpv"]["gc_runs"] == 0:
        problems.append("no worker GC ran across the sharded DPV")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=8,
                        help="query shards for the DPV run (default 8)")
    parser.add_argument("--prefixes", type=int, default=512,
                        help="synthetic prefix-set size (default 512)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed peak node_count regression (0.20=20%%)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the measured baseline JSON and exit")
    parser.add_argument("--check-baseline", metavar="PATH",
                        help="compare against a committed baseline; exit 1 "
                             "on regression")
    args = parser.parse_args(argv)

    result = run(args.shards, args.prefixes)
    compile_result = result["prefix_compile"]
    dpv = result["dpv"]
    print(f"prefix-set compile ({compile_result['prefix_count']} prefixes): "
          f"chained {compile_result['chained_seconds'] * 1e3:.1f} ms, "
          f"bulk {compile_result['bulk_seconds'] * 1e3:.1f} ms "
          f"-> {compile_result['speedup']:.1f}x")
    print(f"fattree4 DPV over {dpv['query_shards']} query shards: "
          f"peak node_count {dpv['peak_node_count']}, "
          f"per-shard {dpv['per_shard_peak_node_count']}, "
          f"gc_runs {dpv['gc_runs']}, "
          f"{dpv['forward_seconds']:.2f} s")

    if args.write_baseline:
        path = Path(args.write_baseline)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline written to {path}")
        return 0

    if args.check_baseline:
        baseline = json.loads(Path(args.check_baseline).read_text())
        problems = check(result, baseline, args.tolerance)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("memory regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
