"""Telemetry-plane overhead benchmark: streaming on vs off.

The live telemetry plane (worker-side frame sources + the controller
collector) rides on phase boundaries and existing RPC replies, so it
must be close to free.  This benchmark times a full FatTree4 verify
with telemetry disabled and with it enabled at the default interval,
best-of-N each, and reports the relative overhead.  The acceptance bar
is **< 3%**.

The relative overhead is machine-independent (both arms run on the same
box in the same process), so it is the only gated quantity; the
absolute timings in the committed baseline are reference points, not
thresholds.

Usage:

    python benchmarks/bench_telemetry.py --write-baseline \
        benchmarks/baselines/telemetry_fattree4.json
    python benchmarks/bench_telemetry.py --check-baseline \
        benchmarks/baselines/telemetry_fattree4.json

``--check-baseline`` exits non-zero when the measured overhead exceeds
``--threshold`` (default 3%) or when the telemetry arm produced no
frames at all (the plane silently off would make the gate vacuous).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.s2 import S2Verifier
from repro.dist.controller import S2Options
from repro.net.fattree import build_fattree

OVERHEAD_THRESHOLD_PCT = 3.0


def _options(telemetry: bool) -> S2Options:
    return S2Options(
        num_workers=4,
        num_shards=2,
        telemetry=telemetry,
        # In-process runtimes emit at phase boundaries; a short interval
        # makes the enabled arm a worst case rather than a no-op.
        telemetry_interval=0.05 if telemetry else 0.0,
    )


def _one_verify(snapshot, telemetry: bool) -> Dict[str, float]:
    started = time.perf_counter()
    with S2Verifier(snapshot, _options(telemetry)) as verifier:
        result = verifier.verify()
        frames = verifier.controller.telemetry.frames_total
    elapsed = time.perf_counter() - started
    if result.status != "ok":
        raise AssertionError(f"verify failed: {result.status}")
    return {"seconds": elapsed, "frames": frames}


def run(repeats: int) -> Dict[str, object]:
    snapshot = build_fattree(4)
    _one_verify(snapshot, telemetry=False)  # warm caches for both arms
    off: List[float] = []
    on: List[float] = []
    frames = 0
    # Interleave the arms so drift (thermal, page cache) hits both.
    for _ in range(repeats):
        off.append(_one_verify(snapshot, telemetry=False)["seconds"])
        sample = _one_verify(snapshot, telemetry=True)
        on.append(sample["seconds"])
        frames = max(frames, int(sample["frames"]))
    off_best = min(off)
    on_best = min(on)
    overhead_pct = 100.0 * (on_best - off_best) / off_best
    return {
        "network": "fattree4",
        "repeats": repeats,
        "off_seconds": off_best,
        "on_seconds": on_best,
        "overhead_pct": overhead_pct,
        "frames": frames,
    }


def check(result: Dict[str, object], threshold: float) -> List[str]:
    problems: List[str] = []
    if result["overhead_pct"] > threshold:
        problems.append(
            f"telemetry overhead {result['overhead_pct']:.2f}% exceeds "
            f"the {threshold:.1f}% bar "
            f"(off {result['off_seconds']:.3f}s, "
            f"on {result['on_seconds']:.3f}s)"
        )
    if result["frames"] < 1:
        problems.append(
            "the telemetry arm streamed no frames — the plane was "
            "effectively off, so the overhead measurement is vacuous"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5,
                        help="verify runs per arm, best-of (default 5)")
    parser.add_argument("--threshold", type=float,
                        default=OVERHEAD_THRESHOLD_PCT,
                        help="allowed overhead percent (default 3.0)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the measured baseline JSON and exit")
    parser.add_argument("--check-baseline", metavar="PATH",
                        help="run the gate (and report drift against the "
                             "committed baseline); exit 1 on failure")
    args = parser.parse_args(argv)

    result = run(args.repeats)
    print(
        f"fattree4 verify (best of {args.repeats}): "
        f"telemetry off {result['off_seconds']:.3f}s, "
        f"on {result['on_seconds']:.3f}s "
        f"-> {result['overhead_pct']:+.2f}% "
        f"({result['frames']} frames streamed)"
    )

    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"baseline written to {args.write_baseline}")
        return 0

    if args.check_baseline:
        with open(args.check_baseline) as handle:
            baseline = json.load(handle)
        drift = result["overhead_pct"] - baseline["overhead_pct"]
        print(
            f"baseline overhead {baseline['overhead_pct']:+.2f}% "
            f"(drift {drift:+.2f} points)"
        )
        problems = check(result, args.threshold)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1 if problems else 0

    return 1 if check(result, args.threshold) else 0


if __name__ == "__main__":
    sys.exit(main())
