"""Ablations of this reproduction's own design choices (see DESIGN.md).

Not paper figures — these justify the implementation decisions the
reproduction layered on top of the paper's design:

* **wave merging**: OR-merging symbolic packets per (source, node,
  in-port, hops) collapses the ECMP path product.  Without it, BDD
  operation counts explode combinatorially with k.
* **runtime backends**: sequential vs threaded vs process-backed workers
  compute identical results; the process backend adds real parallelism at
  the cost of pipe serialization.
* **round scheme**: the two-phase (Jacobi) distributed rounds converge in
  more rounds than the monolithic engine's immediate-update sweeps, but
  each round is fully parallel — the classic chaotic-iteration trade.
"""

import time

from conftest import emit
from repro.bdd.engine import TRUE
from repro.dataplane.forwarding import inject, run_to_completion
from repro.dataplane.verifier import DataPlaneVerifier
from repro.dist.controller import S2Controller, S2Options
from repro.harness import format_table
from repro.net.fattree import build_fattree
from repro.routing.engine import SimulationEngine


def run_merging_ablation():
    rows = []
    for k in (4, 6):
        engine = SimulationEngine(build_fattree(k))
        routes = engine.run()
        per_mode = {}
        for merge in (True, False):
            dpv = DataPlaneVerifier.from_simulation(engine, routes)
            dpv.compile_predicates()
            started = time.perf_counter()
            finals = run_to_completion(
                dpv.context, [inject("edge-0-0", TRUE)], merge=merge
            )
            per_mode[merge] = {
                "finals": len(finals),
                "wall": time.perf_counter() - started,
            }
        # Finals are the visible proxy for processed packet objects: every
        # enumerated path contributes its own final without merging.
        # (Unique BDD *operations* barely change — repeats hit the apply
        # cache — the cost is the packet-object explosion itself.)
        rows.append(
            [
                f"k={k}",
                per_mode[True]["finals"],
                per_mode[False]["finals"],
                round(
                    per_mode[False]["finals"] / per_mode[True]["finals"], 2
                ),
            ]
        )
    return rows


def run_runtime_ablation():
    rows = []
    for runtime in ("sequential", "threaded", "process"):
        started = time.perf_counter()
        with S2Controller(
            build_fattree(6),
            S2Options(num_workers=4, num_shards=8, runtime=runtime),
        ) as controller:
            controller.run_control_plane()
            total = controller.total_route_count()
            modeled = controller.cpo.stats.modeled_wall_time
        rows.append(
            [
                runtime,
                total,
                round(modeled),
                round(time.perf_counter() - started, 2),
            ]
        )
    return rows


def run_round_scheme_ablation():
    rows = []
    for k in (4, 6, 8):
        mono = SimulationEngine(build_fattree(k))
        mono.run()
        with S2Controller(
            build_fattree(k), S2Options(num_workers=1)
        ) as controller:
            controller.run_control_plane()
            jacobi_rounds = controller.cpo.stats.bgp_rounds
        rows.append([f"k={k}", mono.stats.bgp_rounds, jacobi_rounds])
    return rows


def test_ablation_wave_merging(benchmark):
    rows = benchmark.pedantic(run_merging_ablation, rounds=1, iterations=1)
    table = format_table(
        ["workload", "finals(merged)", "finals(per-path)", "blowup"],
        rows,
        title="Ablation — symbolic-packet wave merging",
    )
    emit("ablation_merging", table, rows)
    # the per-path blowup grows with k (combinatorial ECMP product)
    blowups = [row[3] for row in rows]
    assert blowups[-1] > blowups[0]
    assert all(row[1] < row[2] for row in rows)


def test_ablation_runtimes(benchmark):
    rows = benchmark.pedantic(run_runtime_ablation, rounds=1, iterations=1)
    table = format_table(
        ["runtime", "routes", "modeled-cp", "wall-s"],
        rows,
        title="Ablation — runtime backends compute identical results",
    )
    emit("ablation_runtimes", table, rows)
    routes = {row[1] for row in rows}
    assert len(routes) == 1, "all backends must compute the same routes"
    # The modeled clock is backend-independent up to pickling jitter in
    # the measured RPC payload sizes (shared-object memoization differs
    # between in-process and piped batches): within 1%.
    modeled = [row[2] for row in rows]
    assert max(modeled) <= min(modeled) * 1.01


def test_ablation_round_schemes(benchmark):
    rows = benchmark.pedantic(
        run_round_scheme_ablation, rounds=1, iterations=1
    )
    table = format_table(
        ["workload", "rounds(immediate)", "rounds(two-phase)"],
        rows,
        title="Ablation — immediate-update vs two-phase (Jacobi) rounds",
    )
    emit("ablation_rounds", table, rows)
    # Jacobi never needs fewer rounds, and stays within a small factor
    for _workload, immediate, jacobi in rows:
        assert jacobi >= immediate
        assert jacobi <= immediate * 3
