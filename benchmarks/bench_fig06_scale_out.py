"""Figure 6: scaling out a fixed FatTree from 1 to 16 workers.

Paper shape to reproduce: running time and per-worker peak memory fall
steeply up to ~8 workers, then flatten (§5.5).
"""

from conftest import emit
from repro.harness import ROW_HEADERS, format_table, run_fig6_scale_out

WORKER_COUNTS = (1, 2, 4, 8, 12, 16)


def test_fig06_scale_out(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig6_scale_out(k=8, worker_counts=WORKER_COUNTS),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ROW_HEADERS,
        [r.as_cells() for r in rows],
        title="Figure 6 — scale-out on the FatTree60 analogue (k=8)",
    )
    emit("fig06", table, rows)
    assert all(r.status == "ok" for r in rows)
    by_workers = dict(zip(WORKER_COUNTS, rows))
    # steep improvement up to 8 workers...
    assert by_workers[8].modeled_time < by_workers[1].modeled_time * 0.6
    assert by_workers[8].peak_memory < by_workers[1].peak_memory * 0.7
    # ...then flat: 16 workers gains little over 8 (within 25%)
    assert by_workers[16].modeled_time < by_workers[8].modeled_time * 1.25
    # memory decreases monotonically with the worker count
    peaks = [by_workers[w].peak_memory for w in WORKER_COUNTS]
    assert peaks == sorted(peaks, reverse=True)
