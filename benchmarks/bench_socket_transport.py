"""Socket transport micro-benchmark: what does the hardened RPC cost?

Three layers, measured separately so a regression is attributable:

1. **Framing** — encode + incremental-decode throughput for small
   (control-message) and large (route-batch) payloads.  The CRC pass is
   the dominant cost; it must stay far above the rate the control plane
   actually generates bytes.
2. **Round-trips** — echo latency through a real loopback
   ``RpcChannel``/``RpcServer`` pair, i.e. the floor every ``pull_round``
   barrier pays per worker.
3. **End to end** — a FatTree4 control-plane run on the ``socket``
   runtime next to the ``process`` runtime: the price of real TCP plus
   idempotency bookkeeping over same-host pipes.
"""

from __future__ import annotations

import threading
import time

from conftest import emit
from repro import S2Options
from repro.dist.controller import S2Controller
from repro.dist.transport import FrameDecoder, RpcChannel, RpcServer, encode_frame
from repro.harness.reporting import format_table
from repro.net.fattree import build_fattree

HEADERS = ["layer", "case", "ops", "wall-s", "rate", "notes"]


def _bench_framing(rows):
    results = {}
    for label, size, count in [("64B", 64, 20000), ("64KiB", 1 << 16, 400)]:
        payload = b"\xa5" * size
        frames = [encode_frame(payload) for _ in range(count)]
        wire = b"".join(frames)
        decoder = FrameDecoder()
        started = time.perf_counter()
        out = 0
        # Feed in 64 KiB reads, like the channel's recv loop does.
        for offset in range(0, len(wire), 1 << 16):
            out += len(decoder.feed(wire[offset:offset + (1 << 16)]))
        wall = time.perf_counter() - started
        assert out == count
        mbps = len(wire) / wall / 1e6
        results[label] = mbps
        rows.append(
            ["framing", label, count, f"{wall:.4f}",
             f"{mbps:.0f} MB/s", "encode+crc+decode"]
        )
    return results


def _bench_roundtrips(rows):
    def handler(command, args, flow_id):
        return "ok", args

    server = RpcServer(handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    channel = RpcChannel((server.host, server.port))
    try:
        channel.connect()
        channel.call("warmup")
        results = {}
        for label, args, count in [
            ("ping", (), 2000),
            ("8KiB echo", (b"\x5a" * 8192,), 500),
        ]:
            started = time.perf_counter()
            for _ in range(count):
                status, _ = channel.call("echo", args)
                assert status == "ok"
            wall = time.perf_counter() - started
            mean_us = 1e6 * wall / count
            results[label] = mean_us
            rows.append(
                ["rpc", label, count, f"{wall:.4f}",
                 f"{mean_us:.0f} us/call", "loopback round-trip"]
            )
        return results
    finally:
        channel.close()
        server.stop()
        thread.join(5.0)


def _bench_pipelining(rows):
    """One exchange phase: call-and-wait vs ``call_nowait`` fan-out.

    Models the CPO's round exchange against N workers, each behind its
    own server with a fixed per-delivery service time.  The sequential
    loop pays N full round trips back to back; the pipelined path
    issues every delivery first and drains the futures at the flush
    barrier, so the workers' service times overlap.  The measured
    factor (sequential wall / pipelined wall, ideal N) is the
    round-overlap the pipelined exchange actually buys.
    """
    service_s = 0.005
    workers = 4
    rounds = 5

    def handler(command, args, flow_id):
        time.sleep(service_s)
        return "ok", args

    servers = [RpcServer(handler) for _ in range(workers)]
    threads = [
        threading.Thread(target=s.serve_forever, daemon=True)
        for s in servers
    ]
    for thread in threads:
        thread.start()
    channels = [
        RpcChannel((s.host, s.port), worker_id=i)
        for i, s in enumerate(servers)
    ]
    try:
        for channel in channels:
            channel.connect()
            channel.call("warmup")
        started = time.perf_counter()
        for _ in range(rounds):
            for channel in channels:
                status, _ = channel.call("deliver", ())
                assert status == "ok"
        sequential = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(rounds):
            futures = [c.call_nowait("deliver", ()) for c in channels]
            for future in futures:  # the flush barrier
                status, _ = future.result()
                assert status == "ok"
        pipelined = time.perf_counter() - started
    finally:
        for channel in channels:
            channel.close()
        for server in servers:
            server.stop()
        for thread in threads:
            thread.join(5.0)
    overlap = sequential / pipelined if pipelined else float("inf")
    calls = workers * rounds
    rows.append(
        ["rpc", f"{workers}-worker exchange seq", calls,
         f"{sequential:.4f}",
         f"{1e3 * sequential / rounds:.1f} ms/round", "call-and-wait"]
    )
    rows.append(
        ["rpc", f"{workers}-worker exchange pipe", calls,
         f"{pipelined:.4f}",
         f"{overlap:.1f}x overlap", "call_nowait + flush barrier"]
    )
    return {"sequential": sequential, "pipelined": pipelined,
            "overlap": overlap}


def _bench_control_plane(rows):
    snapshot = build_fattree(4)
    walls = {}
    for runtime in ["process", "socket"]:
        best = float("inf")
        for _ in range(2):
            options = S2Options(num_workers=3, num_shards=2, runtime=runtime)
            started = time.perf_counter()
            with S2Controller(snapshot, options) as controller:
                controller.run_control_plane()
            best = min(best, time.perf_counter() - started)
        walls[runtime] = best
        rows.append(
            ["end-to-end", f"fattree4 {runtime}", 1, f"{best:.3f}",
             f"{best:.3f} s", "control plane, best of 2"]
        )
    overhead = 100.0 * (walls["socket"] / walls["process"] - 1.0)
    rows.append(
        ["end-to-end", "socket overhead", "-", "-",
         f"{overhead:+.1f}%", "vs process runtime"]
    )
    return walls


def _run_experiment():
    rows = []
    framing = _bench_framing(rows)
    rpc = _bench_roundtrips(rows)
    pipe = _bench_pipelining(rows)
    walls = _bench_control_plane(rows)
    return rows, framing, rpc, pipe, walls


def test_socket_transport(benchmark):
    rows, framing, rpc, pipe, walls = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        HEADERS, rows, title="Socket transport costs (loopback)"
    )
    emit("socket_transport", table, rows)
    # Loose floors: catastrophic regressions only, not scheduler noise.
    assert framing["64KiB"] > 50, f"framing {framing['64KiB']:.0f} MB/s"
    assert rpc["ping"] < 5000, f"ping {rpc['ping']:.0f} us"
    # The fan-out must show real round overlap (ideal is 4x here); a
    # value near 1x means call_nowait degenerated to call-and-wait.
    assert pipe["overlap"] > 1.5, f"overlap {pipe['overlap']:.2f}x"
    assert walls["socket"] < 60.0


if __name__ == "__main__":
    rows, *_ = _run_experiment()
    print(format_table(HEADERS, rows))
