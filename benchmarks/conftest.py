"""Shared benchmark plumbing.

Every ``bench_figNN_*`` file reproduces one figure of the paper's §5: it
runs the experiment once under ``benchmark.pedantic`` (so the recorded
time is the real experiment, not a repeated micro-op), prints the
resulting table, and writes it to ``benchmarks/results/figNN.txt`` so
``pytest benchmarks/ --benchmark-only`` leaves a browsable record.  When
the caller also hands ``emit`` the underlying rows, a machine-readable
``benchmarks/results/figNN.json`` lands next to the table for plotting
scripts and regression diffing.

Sweep sizes honor the ``S2_BENCH_SIZES`` environment variable
(comma-separated FatTree k values; default ``4,6,8``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, table: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")


def _row_payload(row: object) -> object:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, (list, tuple)):
        return list(row)
    return row


def save_json(name: str, rows: Sequence[object]) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    payload = {"figure": name, "rows": [_row_payload(r) for r in rows]}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def emit(name: str, table: str, rows: Optional[Sequence[object]] = None) -> None:
    """Print the figure table and persist it (plus JSON when rows given)."""
    print(f"\n{table}\n")
    save_table(name, table)
    if rows is not None:
        save_json(name, rows)
