"""Shared benchmark plumbing.

Every ``bench_figNN_*`` file reproduces one figure of the paper's §5: it
runs the experiment once under ``benchmark.pedantic`` (so the recorded
time is the real experiment, not a repeated micro-op), prints the
resulting table, and writes it to ``benchmarks/results/figNN.txt`` so
``pytest benchmarks/ --benchmark-only`` leaves a browsable record.

Sweep sizes honor the ``S2_BENCH_SIZES`` environment variable
(comma-separated FatTree k values; default ``4,6,8``).
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, table: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")


def emit(name: str, table: str) -> None:
    """Print the figure table and persist it."""
    print(f"\n{table}\n")
    save_table(name, table)
