"""Figure 11: single-pair forwarding across workers on FatTree4.

The figure illustrates how checking reachability between two edge
switches in different pods triggers packet forwarding on *all* workers
(the symbolic packet copies at the core to explore every path).  The
benchmark reproduces the trace and asserts the all-workers-touched
property; the step-by-step rendering lives in
``examples/fig11_forwarding_trace.py``.
"""

from conftest import emit
from repro.dataplane.forwarding import FinalState
from repro.dataplane.queries import Query
from repro.dist.controller import S2Controller, S2Options
from repro.harness import format_table
from repro.net.fattree import build_fattree
from repro.net.ip import Prefix


def run_trace():
    snapshot = build_fattree(4)
    controller = S2Controller(
        snapshot,
        S2Options(num_workers=4, partition_scheme="expert", num_shards=2),
    )
    try:
        controller.run_control_plane()
        controller.build_data_plane()
        dpo = controller.dpo
        header = controller.options.encoding.prefix_bdd(
            dpo.engine, Prefix.parse("10.3.1.0/24")
        )
        finals = dpo.forward(["edge-0-0"], header, trace=True)
        arrived = [
            f
            for f in finals
            if f.state is FinalState.ARRIVE and f.node == "edge-3-1"
        ]
        assignment = controller.partition.assignment
        touched = set()
        for final in finals:
            for node in final.path or ():
                touched.add(assignment[node])
        return {
            "finals": len(finals),
            "paths": sorted(f.path for f in arrived),
            "workers_touched": len(touched),
            "num_workers": controller.options.num_workers,
            "crossings": dpo.stats.packets_crossed,
        }
    finally:
        controller.close()


def test_fig11_trace(benchmark):
    result = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    cells = [
        ["paths found", len(result["paths"])],
        ["workers touched", f"{result['workers_touched']}"
         f"/{result['num_workers']}"],
        ["cross-worker packets", result["crossings"]],
        ["example path", " -> ".join(result["paths"][0])],
    ]
    table = format_table(
        ["metric", "value"],
        cells,
        title="Figure 11 — single-pair check engages every worker",
    )
    emit("fig11", table, cells)
    # k=4: 4 equal-cost paths between edges in different pods
    assert len(result["paths"]) == 4
    assert all(len(p) == 5 for p in result["paths"])  # 4 hops, 5 nodes
    # the single-pair check touched every worker (the §5.8 observation)
    assert result["workers_touched"] == result["num_workers"]
    assert result["crossings"] > 0
