"""Figure 4: verifying the (synthesized stand-in for the) real DCN.

Paper shape to reproduce: vanilla Batfish runs out of memory; Batfish
with prefix sharding finishes near the memory limit; S2 finishes fastest
with the lowest per-worker memory; enabling sharding on S2 *slows it
down* because memory is sufficient (§5.3).
"""

from conftest import emit
from repro.harness import ROW_HEADERS, format_table, run_fig4_real_dcn


def test_fig04_real_dcn(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig4_real_dcn(scale=1, workers=4),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ROW_HEADERS,
        [r.as_cells() for r in rows],
        title="Figure 4 — real-DCN substitute: time and peak memory",
    )
    emit("fig04", table, rows)
    by_series = {r.series: r for r in rows}
    # the paper's qualitative claims
    assert by_series["batfish"].status == "oom"
    assert by_series["batfish+sharding"].status == "ok"
    assert by_series["s2"].status == "ok"
    assert by_series["s2-nosharding"].status == "ok"
    # S2 beats sharded Batfish on time and memory
    assert (
        by_series["s2"].modeled_time
        < by_series["batfish+sharding"].modeled_time
    )
    assert (
        by_series["s2"].peak_memory
        < by_series["batfish+sharding"].peak_memory
    )
    # with memory sufficient, sharding slows S2 down (§5.3 observation)
    assert (
        by_series["s2-nosharding"].modeled_time
        < by_series["s2"].modeled_time
    )
    # and sharding still lowers S2's peak memory
    assert by_series["s2"].peak_memory <= by_series["s2-nosharding"].peak_memory
