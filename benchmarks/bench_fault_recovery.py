"""Fault-recovery micro-benchmark: what does resilience cost?

Three questions, answered on one FatTree control-plane run:

1. **Checkpoint overhead** — a fault-free run with the manifest + OSPF
   checkpointing enabled must cost < 5% wall time over a run without it
   (the paper-scale argument: per-shard manifest writes are O(shards),
   not O(routes)).
2. **Recovery cost** — a run that loses a worker mid-fixed-point pays
   roughly one shard replay, not a full rerun.
3. **Resume savings** — resuming a run killed after most shards have
   converged recomputes only the remainder.
"""

from __future__ import annotations

import time

from conftest import emit
from repro import FaultPlan, FaultSpec, S2Options
from repro.dist.controller import S2Controller
from repro.harness.reporting import format_table
from repro.net.fattree import build_fattree

WORKERS = 4
SHARDS = 8


def _run(snapshot, tmp_dir=None, fault_plan=None, runs=3):
    """Best-of-N control-plane wall time (stats from the last run)."""
    best = float("inf")
    stats = None
    for _ in range(runs):
        options = S2Options(
            num_workers=WORKERS,
            num_shards=SHARDS,
            store_dir=tmp_dir,
            fault_plan=fault_plan,
        )
        started = time.perf_counter()
        with S2Controller(snapshot, options) as controller:
            stats = controller.run_control_plane()
            respawns = controller.report().total_respawns
        best = min(best, time.perf_counter() - started)
    return best, stats, respawns


def _run_experiment():
    import tempfile

    snapshot = build_fattree(6)
    rows = []

    plain_s, plain_stats, _ = _run(snapshot)
    rows.append(
        ["fault-free (no checkpoint)", f"{plain_s:.3f}", plain_stats.bgp_rounds, 0, 0, "-"]
    )

    with tempfile.TemporaryDirectory(prefix="s2-bench-ckpt-") as tmp:
        ckpt_s, ckpt_stats, _ = _run(snapshot, tmp_dir=tmp)
    overhead = (ckpt_s - plain_s) / plain_s * 100.0
    rows.append(
        [
            "fault-free (checkpointing)",
            f"{ckpt_s:.3f}",
            ckpt_stats.bgp_rounds,
            0,
            0,
            f"{overhead:+.1f}% overhead",
        ]
    )

    plan = FaultPlan(
        [FaultSpec(kind="crash", worker=1, shard=SHARDS // 2, command="pull_round")]
    )
    crash_s, crash_stats, respawns = _run(snapshot, fault_plan=plan, runs=1)
    rows.append(
        [
            "1 worker crash mid-run",
            f"{crash_s:.3f}",
            crash_stats.bgp_rounds,
            crash_stats.worker_failures,
            crash_stats.shard_replays,
            f"{respawns} respawns",
        ]
    )

    # Resume: kill after 6 of 8 shards, time only the completion.
    with tempfile.TemporaryDirectory(prefix="s2-bench-resume-") as tmp:
        options = S2Options(
            num_workers=WORKERS, num_shards=SHARDS, store_dir=tmp
        )
        controller = S2Controller(snapshot, options)
        controller.cpo.run_ospf()
        controller.cpo._checkpoint_ospf()
        for shard in controller.shards[: SHARDS - 2]:
            controller.cpo.run_bgp_shard(shard)
            controller.cpo._mark_shard_done(shard.index, 0)
        controller.runtime.close()  # abandon without store cleanup
        started = time.perf_counter()
        with S2Controller.resume(snapshot, options) as resumed:
            resume_stats = resumed.run_control_plane()
        resume_s = time.perf_counter() - started
    rows.append(
        [
            f"resume (last {SHARDS - resume_stats.shards_skipped} shards)",
            f"{resume_s:.3f}",
            resume_stats.bgp_rounds,
            0,
            0,
            f"{resume_stats.shards_skipped} shards skipped",
        ]
    )

    return rows, overhead, crash_stats


def test_fault_recovery(benchmark):
    rows, overhead, crash_stats = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        ["scenario", "wall-s", "bgp-rounds", "failures", "replays", "notes"],
        rows,
        title=f"Fault recovery — FatTree6, {WORKERS} workers, {SHARDS} shards",
    )
    emit("fault_recovery", table, rows)
    # The acceptance bar: checkpointing is effectively free when nothing
    # fails (5% budget, measured best-of-3 to damp scheduler noise).
    assert overhead < 5.0, f"checkpoint overhead {overhead:.1f}% >= 5%"
    # Recovery replays one shard, not the whole run.
    assert crash_stats.worker_failures == 1
    assert crash_stats.shard_replays == 1


if __name__ == "__main__":
    rows, overhead, _ = _run_experiment()
    print(
        format_table(
            ["scenario", "wall-s", "bgp-rounds", "failures", "replays", "notes"],
            rows,
        )
    )
