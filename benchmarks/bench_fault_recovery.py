"""Fault-recovery micro-benchmark: what does resilience cost?

Three questions, answered on one FatTree control-plane run:

1. **Checkpoint overhead** — a fault-free run with the manifest + OSPF
   checkpointing enabled must cost < 5% wall time over a run without it
   (the paper-scale argument: per-shard manifest writes are O(shards),
   not O(routes)).
2. **Recovery cost** — a run that loses a worker mid-fixed-point pays
   roughly one shard replay, not a full rerun.
3. **Resume savings** — resuming a run killed after most shards have
   converged recomputes only the remainder.
4. **Loss + rebalance** — a *permanent* worker loss pays the shard
   reassignment once (the survivors adopt the orphans and the run still
   finishes distributed), and after the healed host is rebalanced back
   in, steady-state throughput is within 10% of the pre-loss fleet.
"""

from __future__ import annotations

import time

from conftest import emit
from repro import FaultPlan, FaultSpec, S2Options
from repro.dist.controller import S2Controller
from repro.harness.reporting import format_table
from repro.net.fattree import build_fattree

WORKERS = 4
SHARDS = 8


def _run(snapshot, tmp_dir=None, fault_plan=None, runs=3):
    """Best-of-N control-plane wall time (stats from the last run)."""
    best = float("inf")
    stats = None
    for _ in range(runs):
        options = S2Options(
            num_workers=WORKERS,
            num_shards=SHARDS,
            store_dir=tmp_dir,
            fault_plan=fault_plan,
        )
        started = time.perf_counter()
        with S2Controller(snapshot, options) as controller:
            stats = controller.run_control_plane()
            respawns = controller.report().total_respawns
        best = min(best, time.perf_counter() - started)
    return best, stats, respawns


def _run_experiment():
    import tempfile

    snapshot = build_fattree(6)
    rows = []

    plain_s, plain_stats, _ = _run(snapshot)
    rows.append(
        ["fault-free (no checkpoint)", f"{plain_s:.3f}", plain_stats.bgp_rounds, 0, 0, "-"]
    )

    with tempfile.TemporaryDirectory(prefix="s2-bench-ckpt-") as tmp:
        ckpt_s, ckpt_stats, _ = _run(snapshot, tmp_dir=tmp)
    overhead = (ckpt_s - plain_s) / plain_s * 100.0
    rows.append(
        [
            "fault-free (checkpointing)",
            f"{ckpt_s:.3f}",
            ckpt_stats.bgp_rounds,
            0,
            0,
            f"{overhead:+.1f}% overhead",
        ]
    )

    plan = FaultPlan(
        [FaultSpec(kind="crash", worker=1, shard=SHARDS // 2, command="pull_round")]
    )
    crash_s, crash_stats, respawns = _run(snapshot, fault_plan=plan, runs=1)
    rows.append(
        [
            "1 worker crash mid-run",
            f"{crash_s:.3f}",
            crash_stats.bgp_rounds,
            crash_stats.worker_failures,
            crash_stats.shard_replays,
            f"{respawns} respawns",
        ]
    )

    # Resume: kill after 6 of 8 shards, time only the completion.
    with tempfile.TemporaryDirectory(prefix="s2-bench-resume-") as tmp:
        options = S2Options(
            num_workers=WORKERS, num_shards=SHARDS, store_dir=tmp
        )
        controller = S2Controller(snapshot, options)
        controller.cpo.run_ospf()
        controller.cpo._checkpoint_ospf()
        for shard in controller.shards[: SHARDS - 2]:
            controller.cpo.run_bgp_shard(shard)
            controller.cpo._mark_shard_done(shard.index, 0)
        controller.runtime.close()  # abandon without store cleanup
        started = time.perf_counter()
        with S2Controller.resume(snapshot, options) as resumed:
            resume_stats = resumed.run_control_plane()
        resume_s = time.perf_counter() - started
    rows.append(
        [
            f"resume (last {SHARDS - resume_stats.shards_skipped} shards)",
            f"{resume_s:.3f}",
            resume_stats.bgp_rounds,
            0,
            0,
            f"{resume_stats.shards_skipped} shards skipped",
        ]
    )

    # Permanent loss: one host dies for good mid-run — pinned to a
    # middle shard so the survivors adopt real flushed store files.
    plan = FaultPlan(
        [
            FaultSpec(
                kind="host_loss", worker=1, command="pull_round",
                shard=SHARDS // 2, heal_after=100,
            )
        ]
    )
    loss_s, loss_stats, _ = _run(snapshot, fault_plan=plan, runs=1)
    assert loss_stats.workers_lost == 1
    assert not loss_stats.sequential_fallback
    reassign_cost = (loss_s - plain_s) / plain_s * 100.0
    rows.append(
        [
            "1 worker lost permanently",
            f"{loss_s:.3f}",
            loss_stats.bgp_rounds,
            loss_stats.worker_failures,
            loss_stats.shard_replays,
            f"{loss_stats.shards_reassigned} shards reassigned "
            f"({reassign_cost:+.1f}%)",
        ]
    )

    # Post-rebalance throughput: lose a worker, let the host heal,
    # rebalance it back, then time a full reconfigure+rerun on the
    # healed fleet against the best fault-free time.
    heal_plan = FaultPlan(
        [
            FaultSpec(
                kind="host_loss", worker=1, command="pull_round",
                heal_after=2,   # == respawn budget: healed right after loss
            )
        ]
    )
    options = S2Options(
        num_workers=WORKERS, num_shards=SHARDS, fault_plan=heal_plan
    )
    rebalanced_s = float("inf")
    with S2Controller(snapshot, options) as controller:
        controller.run_control_plane()
        assert controller.capacity()["lost_workers"] == 1
        assert controller.rejoin_worker(1)
        assert controller.capacity()["lost_workers"] == 0
        for _ in range(3):
            controller.reconfigure(snapshot)
            started = time.perf_counter()
            controller.run_control_plane()
            rebalanced_s = min(
                rebalanced_s, time.perf_counter() - started
            )
    rebalance_delta = (rebalanced_s - plain_s) / plain_s * 100.0
    rows.append(
        [
            "post-rebalance rerun",
            f"{rebalanced_s:.3f}",
            "-",
            0,
            0,
            f"{rebalance_delta:+.1f}% vs pre-loss",
        ]
    )

    return rows, overhead, crash_stats, rebalance_delta


def test_fault_recovery(benchmark):
    rows, overhead, crash_stats, rebalance_delta = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        ["scenario", "wall-s", "bgp-rounds", "failures", "replays", "notes"],
        rows,
        title=f"Fault recovery — FatTree6, {WORKERS} workers, {SHARDS} shards",
    )
    emit("fault_recovery", table, rows)
    # The acceptance bar: checkpointing is effectively free when nothing
    # fails (5% budget, measured best-of-3 to damp scheduler noise).
    assert overhead < 5.0, f"checkpoint overhead {overhead:.1f}% >= 5%"
    # Recovery replays one shard, not the whole run.
    assert crash_stats.worker_failures == 1
    assert crash_stats.shard_replays == 1
    # After the healed host is rebalanced back in, steady-state
    # throughput is within 10% of the pre-loss fleet.
    assert rebalance_delta < 10.0, (
        f"post-rebalance rerun {rebalance_delta:+.1f}% vs pre-loss"
    )


if __name__ == "__main__":
    rows, overhead, _, _ = _run_experiment()
    print(
        format_table(
            ["scenario", "wall-s", "bgp-rounds", "failures", "replays", "notes"],
            rows,
        )
    )
