"""Ground-truth oracle cost: what a concrete-packet audit adds.

The oracle's value proposition is "an independent check cheap enough to
run alongside every verification".  These benchmarks keep that claim
honest: a full witness/near-miss audit of FatTree4, the same audit on a
2-DC folded Clos (three ECMP tiers plus inter-DC paths), and the raw
all-paths walker throughput with the symbolic machinery out of the
picture entirely.
"""

from conftest import emit

from repro.dataplane.verifier import DataPlaneVerifier
from repro.groundtruth import ConcretePacket, GroundTruthNetwork, audit_verifier
from repro.net.fattree import build_fattree
from repro.net.folded_clos import build_folded_clos
from repro.routing.engine import SimulationEngine


def _verifier(snapshot):
    engine = SimulationEngine(snapshot)
    routes = engine.run()
    return DataPlaneVerifier.from_simulation(engine, routes)


def test_groundtruth_audit_fattree4(benchmark):
    """Witness + near-miss + finals audit of every FatTree4 pair."""
    dpv = _verifier(build_fattree(4))
    dpv.compile_predicates()

    report = benchmark.pedantic(
        lambda: audit_verifier(dpv, seed=0, witnesses=2, near_misses=2),
        rounds=1,
        iterations=1,
    )
    assert report.ok, report.describe()
    emit(
        "groundtruth_fattree4",
        f"fattree4 ground-truth audit: {report.summary()}",
        [report.to_dict()],
    )


def test_groundtruth_audit_folded_clos(benchmark):
    """The same audit over a 2-DC folded Clos (cross-DC paths included)."""
    dpv = _verifier(build_folded_clos(dcs=2, pods=2, leaves=2, spines=2))
    dpv.compile_predicates()

    report = benchmark.pedantic(
        lambda: audit_verifier(dpv, seed=0, witnesses=1, near_misses=1),
        rounds=1,
        iterations=1,
    )
    assert report.ok, report.describe()
    emit(
        "groundtruth_folded_clos",
        f"folded-clos d2 ground-truth audit: {report.summary()}",
        [report.to_dict()],
    )


def test_concrete_walker_throughput(benchmark):
    """Raw all-ECMP-paths walks/second, no sampling or BDDs involved."""
    snapshot = build_fattree(4)
    dpv = _verifier(snapshot)
    net = GroundTruthNetwork(snapshot, dpv.fibs)
    holders = dpv.prefix_holders()
    packets = [
        ConcretePacket(dst=int(next(iter(
            snapshot.configs[holder].bgp.networks
        )).network) | 1)
        for holder in holders
    ]

    def work():
        total = 0
        for source in holders[:4]:
            for packet in packets:
                total += len(net.walk(packet, source).outcomes)
        return total

    outcomes = benchmark(work)
    assert outcomes > 0
