"""Figure 5: FatTree size sweep — Batfish vs Bonsai vs S2 x {1,8,16}.

Paper shape to reproduce: Batfish OOMs first (between the first and
second sweep sizes), Bonsai survives longer but is compute-bound and
eventually times out, S2 with more workers reaches the largest sizes with
the lowest per-worker memory.
"""

from conftest import emit
from repro.harness import ROW_HEADERS, format_table, run_fig5_fattree_scaling


def test_fig05_fattree_scaling(benchmark):
    rows = benchmark.pedantic(
        run_fig5_fattree_scaling, rounds=1, iterations=1
    )
    table = format_table(
        ROW_HEADERS,
        [r.as_cells() for r in rows],
        title="Figure 5 — FatTree sweep: Batfish / Bonsai / S2 workers",
    )
    emit("fig05", table, rows)
    first_size = rows[0].workload
    largest = rows[-1].workload
    by_key = {(r.series, r.workload): r for r in rows}
    # Batfish handles the smallest size, OOMs beyond it
    assert by_key[("batfish", first_size)].status == "ok"
    assert by_key[("batfish", largest)].status == "oom"
    # S2 reaches the largest size with multiple workers
    assert by_key[("s2-8w", largest)].status == "ok"
    assert by_key[("s2-16w", largest)].status == "ok"
    # per-worker memory decreases with the worker count at every size
    for workload in {r.workload for r in rows}:
        assert (
            by_key[("s2-16w", workload)].peak_memory
            <= by_key[("s2-8w", workload)].peak_memory
            <= by_key[("s2-1w", workload)].peak_memory
        )
    # Bonsai stays memory-light wherever it finishes
    bonsai_rows = [r for r in rows if r.series == "bonsai"]
    ok_bonsai = [r for r in bonsai_rows if r.status == "ok"]
    assert ok_bonsai, "bonsai should finish at least the smallest size"
    assert all(
        r.peak_memory <= by_key[("batfish", first_size)].peak_memory
        for r in ok_bonsai
    )
