"""Figure 8: is prefix sharding necessary at the largest sizes?

Paper shape to reproduce: without sharding, control-plane simulation of
the largest FatTree exceeds worker memory (the paper's FatTree90); with
sharding every size completes, at a markedly lower per-worker peak
(§5.7).  Times are control-plane simulation only, as in the figure.
"""

from conftest import emit
from repro.harness import ROW_HEADERS, format_table, run_fig8_sharding_necessity


def test_fig08_sharding_necessity(benchmark):
    rows = benchmark.pedantic(
        run_fig8_sharding_necessity, rounds=1, iterations=1
    )
    table = format_table(
        ROW_HEADERS,
        [r.as_cells() for r in rows],
        title="Figure 8 — control-plane simulation with/without sharding",
    )
    emit("fig08", table, rows)
    by_key = {(r.series, r.workload): r for r in rows}
    workloads = list(dict.fromkeys(r.workload for r in rows))
    largest = workloads[-1]
    # sharding-off dies at the largest size; sharding-on completes all
    assert by_key[("no-sharding", largest)].status == "oom"
    for workload in workloads:
        assert by_key[("sharding", workload)].status == "ok"
    # wherever both complete, sharding has the lower peak memory
    for workload in workloads[:-1]:
        assert (
            by_key[("sharding", workload)].peak_memory
            < by_key[("no-sharding", workload)].peak_memory
        )
