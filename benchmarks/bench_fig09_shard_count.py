"""Figure 9: sweeping the number of prefix shards on a fixed FatTree.

Paper shape to reproduce: peak memory falls monotonically with the shard
count; simulation time is U-shaped — when memory is insufficient, more
shards *reduce* time (GC pressure relieved); once memory suffices, the
per-shard overhead dominates and time grows (§5.7).
"""

from conftest import emit
from repro.harness import ROW_HEADERS, format_table, run_fig9_shard_count

SHARD_COUNTS = (1, 2, 5, 10, 15, 20, 30, 40)


def test_fig09_shard_count(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig9_shard_count(k=8, shard_counts=SHARD_COUNTS),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ROW_HEADERS,
        [r.as_cells() for r in rows],
        title="Figure 9 — shard-count sweep (control-plane simulation)",
    )
    emit("fig09", table, rows)
    assert all(r.status == "ok" for r in rows)
    times = [r.modeled_time for r in rows]
    peaks = [r.peak_memory for r in rows]
    # memory falls monotonically (non-strictly) with the shard count
    assert peaks == sorted(peaks, reverse=True)
    # U-shape: the minimum is strictly inside the sweep, below both ends
    best = min(range(len(times)), key=times.__getitem__)
    assert 0 < best < len(times) - 1
    assert times[best] < times[0]
    assert times[best] < times[-1]
