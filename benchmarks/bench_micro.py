"""Micro-benchmarks of the core substrates.

Unlike the figure benchmarks (one timed experiment), these measure the
hot primitives under pytest-benchmark's repeated sampling: BDD apply
throughput, cross-engine serialization, LPM trie lookups, configuration
parsing, and a full control-plane round — the numbers to watch when
optimizing, and the baseline for regression tracking.
"""

import random

from repro.bdd.engine import BddEngine
from repro.bdd.headerspace import HeaderEncoding
from repro.bdd.serialize import deserialize, serialize
from repro.config.cisco import parse_cisco
from repro.dataplane.fib import Fib, FibAction, FibEntry, NextHop
from repro.net.fattree import FatTreeSpec, build_fattree, render_configs
from repro.net.ip import Prefix
from repro.routing.engine import SimulationEngine


def test_bdd_prefix_conjunctions(benchmark):
    """AND-ing prefix cubes: the predicate-compilation inner loop."""
    encoding = HeaderEncoding()
    engine = encoding.make_engine()
    rng = random.Random(5)
    prefixes = [
        Prefix(rng.getrandbits(32), rng.randint(8, 24)) for _ in range(200)
    ]
    cubes = [encoding.prefix_bdd(engine, p) for p in prefixes]

    def work():
        acc = 1
        for cube in cubes:
            acc = engine.or_(acc, engine.and_(cube, engine.not_(acc)))
        return acc

    benchmark(work)


def test_bdd_serialization_roundtrip(benchmark):
    """Serialize + re-encode a mid-size BDD (a cross-worker packet)."""
    encoding = HeaderEncoding()
    source = encoding.make_engine()
    rng = random.Random(6)
    u = 0
    for _ in range(60):
        p = Prefix(rng.getrandbits(32), rng.randint(8, 20))
        u = source.or_(u, encoding.prefix_bdd(source, p))
    destination = encoding.make_engine()

    def work():
        return deserialize(destination, serialize(source, u))

    benchmark(work)


def test_lpm_trie_lookups(benchmark):
    """Longest-prefix-match over a 1000-entry FIB."""
    rng = random.Random(7)
    fib = Fib("r")
    for i in range(1000):
        fib.add(
            FibEntry(
                prefix=Prefix(rng.getrandbits(32), rng.randint(8, 28)),
                action=FibAction.FORWARD,
                next_hops=(NextHop(iface=f"e{i % 32}", node="x"),),
            )
        )
    probes = [rng.getrandbits(32) for _ in range(500)]

    def work():
        return sum(1 for p in probes if fib.lookup(p) is not None)

    benchmark(work)


def test_parse_cisco_config(benchmark):
    """Parsing one synthesized FatTree switch config."""
    texts = render_configs(FatTreeSpec(k=8))
    sample = next(iter(texts.values()))[1]
    benchmark(parse_cisco, sample)


def test_control_plane_round(benchmark):
    """One pull round across every node of FatTree k=6."""
    engine = SimulationEngine(build_fattree(6))
    for node in engine.nodes.values():
        node.begin_shard(None)
    # warm up to a mid-convergence state
    for round_token in range(2):
        for node in engine.nodes.values():
            node.pull_round(engine._bgp_resolver, round_token)
    counter = [10]

    def work():
        token = counter[0]
        counter[0] += 1
        for node in engine.nodes.values():
            node.pull_round(engine._bgp_resolver, token)

    benchmark(work)
