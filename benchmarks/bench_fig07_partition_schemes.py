"""Figure 7: comparing network partition schemes.

Paper shape to reproduce: random/expert/metis differ only slightly; the
load-imbalanced extreme is far worse; the communication-heaviest extreme
costs only a little (§5.6) — performance tracks load balance, not cut.
"""

from conftest import emit
from repro.harness import format_table, run_fig7_partition_schemes

HEADERS = [
    "series", "workload", "status", "total", "cp", "dp", "peak-mem", "rpc-KB"
]


def test_fig07_partition_schemes(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig7_partition_schemes(k=8, workers=8, include_dcn=True),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        HEADERS,
        [
            [
                r.series,
                r.workload,
                r.status,
                round(r.modeled_time),
                round(r.extra.get("cp_modeled", 0)),
                round(r.extra.get("dp_modeled", 0)),
                f"{r.peak_memory / (1 << 20):.1f}MB",
                round(r.extra.get("rpc_bytes", 0) / 1e3),
            ]
            for r in rows
        ],
        title="Figure 7 — partition schemes (total / CP / DP splits)",
    )
    emit("fig07", table, rows)
    assert all(r.status == "ok" for r in rows)
    for workload in {r.workload for r in rows}:
        by_scheme = {
            r.series: r for r in rows if r.workload == workload
        }
        balanced = [
            by_scheme[s].modeled_time for s in ("random", "expert", "metis")
        ]
        # the three balanced schemes are within 30% of each other
        assert max(balanced) < min(balanced) * 1.3, workload
        # the load-imbalanced extreme is clearly worse than all of them
        assert by_scheme["imbalanced"].modeled_time > max(balanced) * 1.2
        # the communication-heavy extreme is at worst mildly worse
        assert by_scheme["commheavy"].modeled_time < max(balanced) * 1.3
