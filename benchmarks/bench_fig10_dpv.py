"""Figure 10: distributed data-plane verification vs centralized.

Paper shape to reproduce: S2 is faster than Batfish for both all-pair and
single-pair reachability, in both phases (predicate computation and
symbolic forwarding); the predicate phase shows the largest speedup; the
speedup grows with the FatTree size; even a single-pair check engages all
workers (§5.8).
"""

from conftest import emit
from repro.harness import format_table, run_fig10_dpv

HEADERS = [
    "series", "workload", "pred", "fwd-allpair", "fwd-single", "peak-mem"
]


def test_fig10_dpv(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig10_dpv(workers=8), rounds=1, iterations=1
    )
    table = format_table(
        HEADERS,
        [
            [
                r.series,
                r.workload,
                round(r.extra["phase_predicates"]),
                round(r.extra.get("phase_forward_allpair", 0)),
                round(r.extra.get("phase_forward_singlepair", 0)),
                f"{r.peak_memory / (1 << 20):.1f}MB",
            ]
            for r in rows
        ],
        title="Figure 10 — DPV phases: Batfish vs S2 (modeled units)",
    )
    emit("fig10", table, rows)
    workloads = list(dict.fromkeys(r.workload for r in rows))
    by_key = {(r.series, r.workload): r for r in rows}
    s2_series = next(r.series for r in rows if r.series != "batfish")
    speedups = []
    for workload in workloads:
        batfish = by_key[("batfish", workload)]
        s2 = by_key[(s2_series, workload)]
        # S2 wins both phases
        assert (
            s2.extra["phase_predicates"] < batfish.extra["phase_predicates"]
        )
        assert (
            s2.extra["phase_forward_allpair"]
            < batfish.extra["phase_forward_allpair"]
        )
        assert (
            s2.extra["phase_forward_singlepair"]
            < batfish.extra["phase_forward_singlepair"]
        )
        speedups.append(
            batfish.extra["phase_predicates"]
            / max(1.0, s2.extra["phase_predicates"])
        )
    # the predicate-phase speedup grows with the FatTree size
    assert speedups[-1] > speedups[0]
