"""The resident verifier behind ``repro serve``.

A :class:`VerifierSession` wraps one :class:`~repro.dist.controller.
S2Controller` and keeps it *converged*: the worker fleet stays up
between requests, holding the committed epoch's state, and every
accepted delta advances a monotonically-increasing **epoch**.

Self-healing rests on four mechanisms:

* **Epoch fencing** — every delta bumps the epoch and re-seeds it into
  each worker; ``begin_shard`` carries the expected epoch, so a worker
  that respawned (fresh contexts boot at epoch ``-1``) or rejoined
  after a partition with stale state is *rejected*, routed through
  :meth:`~repro.dist.controller.WorkerSupervisor.recover` (respawn +
  OSPF checkpoint + epoch re-seed), and the shard replays.
* **Read/write separation** — queries read the last *committed* view
  (reachability matrix + RIBs), swapped atomically after each epoch
  commits.  A query during a recompute sees the previous epoch, never
  torn state.
* **Bounded admission** — deltas queue up to ``queue_limit``; beyond
  that :class:`SessionBusyError` sheds load explicitly.
* **Graceful degradation** — a recompute that fails terminally (after
  worker recovery, shard replay, and the sequential fallback have all
  been exhausted) flips the session to *degraded*: the previous epoch
  keeps serving read-only and further deltas are refused.

Commits are two-phase on disk: the manifest (tagged with the epoch and
per-shard fingerprints) is written, then the ``EPOCH`` tag file.  A warm
boot (:class:`VerifierSession` over an existing store) trusts the RIB
files only when the two agree — otherwise (torn commit, damaged
manifest) it raises the typed storage error internally and falls back
to a cold start.
"""

from __future__ import annotations

import os
import queue
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Dict, FrozenSet, Optional, Tuple

from ..config.loader import Snapshot
from ..dataplane.queries import Query
from ..dist.controller import S2Controller, S2Options, options_fingerprint
from ..dist.sharding import make_shards
from ..dist.storage import (
    CorruptShardError,
    EpochMismatchError,
    RouteStore,
    RunManifest,
)
from ..obs.journal import EventJournal
from ..obs.openmetrics import render_openmetrics
from ..routing.engine import BgpResult
from .deltas import DeltaClassification, DeltaError, classify


class SessionError(RuntimeError):
    """Base of the serving layer's refusals."""


class SessionBusyError(SessionError):
    """The admission queue is full; retry later (explicit load shed)."""


class SessionDegradedError(SessionError):
    """The session is read-only: a recompute failed terminally."""


class SessionClosedError(SessionError):
    """The session was closed (or has no committed epoch to serve)."""


class SessionDrainingError(SessionClosedError):
    """The session is shutting down: queued deltas are still finishing,
    but new ones are refused.  Subclasses :class:`SessionClosedError`
    so callers that only know "closed" still behave correctly; the API
    maps it to its own ``draining`` code."""


class UnknownEndpointError(SessionError):
    """A query named a node outside the committed endpoint set."""


@dataclass(frozen=True)
class CommittedView:
    """One epoch's queryable state; immutable, swapped atomically."""

    epoch: int
    endpoints: Tuple[str, ...]
    pairs: FrozenSet[Tuple[str, str]]
    ribs: BgpResult

    def holds(self, src: str, dst: str) -> bool:
        return (src, dst) in self.pairs


@dataclass(frozen=True)
class QueryResult:
    holds: bool
    epoch: int
    degraded: bool = False


@dataclass(frozen=True)
class DeltaResult:
    """What one committed delta did."""

    epoch: int
    kind: str                    # "announce" | "full"
    shards_recomputed: int
    shards_reused: int
    dirty_prefixes: int
    sequential_fallback: bool
    reachable_pairs: int
    lost_pairs: Tuple[Tuple[str, str], ...] = ()
    gained_pairs: Tuple[Tuple[str, str], ...] = ()


_STOP = object()

# Internal queue item: the heal-probe thread asking the mutator to
# rebalance healed hosts back in (fleet mutation stays single-threaded).
_REBALANCE = object()


class VerifierSession:
    """A persistent, delta-accepting verifier over one worker fleet."""

    def __init__(
        self,
        snapshot: Snapshot,
        options: Optional[S2Options] = None,
        queue_limit: int = 8,
        warm_boot: bool = True,
        ground_truth_every: int = 0,
        journal_capacity: int = 512,
    ) -> None:
        opts = dc_replace(options) if options is not None else S2Options()
        self._owned_store = False
        if opts.store_dir is None:
            # Epoch commits and respawn re-seeding live on the store, so
            # a session is always persistent — anonymous ones own a
            # temp spool removed on close.
            opts.store_dir = tempfile.mkdtemp(prefix="s2-serve-")
            self._owned_store = True
        opts.checkpoint = True
        self.options = opts
        self.snapshot = snapshot
        self.epoch = 0
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self.warm_booted = False
        self.boot_fallback: Optional[str] = None
        self._closed = False
        self._draining = False
        self._recomputing = False
        self._view_lock = threading.Lock()
        self._committed: Optional[CommittedView] = None
        # The structured event journal: bounded in memory, mirrored to a
        # JSONL sink on the store so post-mortems survive the process.
        self.journal = EventJournal(
            capacity=journal_capacity,
            sink_path=os.path.join(opts.store_dir, "journal.jsonl"),
        )
        self.last_commit_ts: Optional[float] = None
        # Post-commit spot check: every Nth committed epoch, walk sampled
        # concrete packets through the committed FIBs (no BDDs) and
        # compare against the symbolic verdicts (0 = off).
        self._ground_truth_every = max(0, ground_truth_every)
        self._commits = 0
        self.last_ground_truth: Optional[Dict[str, Any]] = None
        self._queue: "queue.Queue" = queue.Queue(maxsize=max(1, queue_limit))
        self._controller = self._boot(warm_boot)
        # Supervision and telemetry feed the journal from here on.
        self._controller.supervisor.journal = self.journal
        self._controller.telemetry.journal = self.journal
        self.journal.record(
            "boot",
            warm=self.warm_booted,
            fallback=self.boot_fallback,
            epoch=self.epoch,
            snapshot=snapshot.name,
            runtime=opts.runtime,
            workers=opts.num_workers,
        )
        self._commit_view()
        self._mutator = threading.Thread(
            target=self._mutate_loop, name="serve-mutator", daemon=True
        )
        self._mutator.start()
        # Heal probe: while any worker is lost, periodically (with
        # backoff) ask the mutator to try rebalancing it back in.
        self._heal_stop = threading.Event()
        self._heal_thread = threading.Thread(
            target=self._heal_loop, name="serve-heal", daemon=True
        )
        self._heal_thread.start()

    # -- boot --------------------------------------------------------------

    def _boot(self, warm_boot: bool) -> S2Controller:
        if warm_boot:
            try:
                controller = self._try_warm_boot()
            except (CorruptShardError, EpochMismatchError, ValueError) as exc:
                # Typed damage — torn manifest JSON, epoch tag/manifest
                # disagreement, incompatible options hash.  The store
                # cannot be trusted; record why and start cold.
                self.boot_fallback = f"{type(exc).__name__}: {exc}"
            else:
                if controller is not None:
                    self.warm_booted = True
                    return controller
        return self._cold_start()

    def _try_warm_boot(self) -> Optional[S2Controller]:
        """Adopt an existing store's committed epoch; None = nothing there.

        Raises the typed storage errors (:class:`CorruptShardError`,
        :class:`EpochMismatchError`) or ``ValueError`` (options hash)
        when the store exists but cannot be trusted.
        """
        probe = RouteStore(self.options.store_dir)
        manifest = probe.read_manifest()
        if manifest is None:
            return None
        tag = probe.read_epoch_tag()
        if tag is None or tag != manifest.epoch:
            raise EpochMismatchError(manifest.epoch, tag)
        controller = S2Controller.resume(self.snapshot, self.options)
        # Attach the journal before any control-plane work: a worker
        # permanently lost *during boot* must still leave a record.
        controller.supervisor.journal = self.journal
        self.epoch = manifest.epoch
        controller.begin_epoch(self.epoch)
        controller.run_control_plane()
        controller.build_data_plane()
        return controller

    def _cold_start(self) -> S2Controller:
        controller = S2Controller(self.snapshot, self.options)
        controller.supervisor.journal = self.journal
        self.epoch = 0
        controller.begin_epoch(0)
        controller.run_control_plane()
        controller.build_data_plane()
        return controller

    # -- committed view ----------------------------------------------------

    def _commit_view(
        self,
    ) -> Tuple[Optional[CommittedView], CommittedView]:
        """Persist the epoch (manifest, then tag) and swap the view."""
        controller = self._controller
        manifest = controller.manifest
        if manifest is not None:
            manifest.epoch = self.epoch
            manifest.shard_fingerprints = {
                str(shard.index): shard.fingerprint()
                for shard in controller.shards
            }
            controller.store.write_manifest(manifest)
            controller.store.write_epoch_tag(self.epoch)
        checker = controller.checker()
        endpoints = tuple(controller.prefix_holders())
        result = checker.check_reachability(
            Query(sources=endpoints, destinations=endpoints)
        )
        view = CommittedView(
            epoch=self.epoch,
            endpoints=endpoints,
            pairs=frozenset(result.pairs()),
            ribs=controller.collected_ribs(),
        )
        with self._view_lock:
            previous, self._committed = self._committed, view
        self.last_commit_ts = time.time()
        self.journal.record(
            "epoch_commit",
            epoch=self.epoch,
            endpoints=len(endpoints),
            reachable_pairs=len(view.pairs),
        )
        if self._ground_truth_every:
            self._commits += 1
            if (self._commits - 1) % self._ground_truth_every == 0:
                self._ground_truth_check(view)
        self._publish_gauges()
        return previous, view

    def _ground_truth_check(self, view: CommittedView) -> None:
        """Audit the committed epoch with concrete packet walks.

        A mismatch does not degrade the session (queries keep serving
        the committed view), but it is surfaced in :meth:`health` and
        the ``serve.groundtruth_mismatches`` gauge — a symbolic verdict
        the concrete FIB walk contradicts is exactly the regression this
        spot check exists to catch.
        """
        from ..dataplane.verifier import verifier_from_ribs
        from ..groundtruth import audit_verifier

        try:
            dpv = verifier_from_ribs(self.snapshot, view.ribs)
            report = audit_verifier(
                dpv, seed=view.epoch, witnesses=1, near_misses=1
            )
            self.last_ground_truth = {
                "epoch": view.epoch,
                "ok": report.ok,
                "packets_walked": report.packets_walked,
                "mismatches": [
                    m.describe() for m in report.mismatches[:10]
                ],
            }
        except Exception as exc:  # noqa: BLE001 — a check, not the service
            self.last_ground_truth = {
                "epoch": view.epoch,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        self.journal.record(
            "ground_truth",
            epoch=view.epoch,
            ok=bool(self.last_ground_truth.get("ok")),
            mismatches=len(self.last_ground_truth.get("mismatches", ())),
            error=self.last_ground_truth.get("error"),
        )

    def _publish_gauges(self) -> None:
        capacity = self._controller.capacity()
        gauges = {
            "serve.epoch": self.epoch,
            "serve.queue_depth": self._queue.qsize(),
            "serve.degraded": 1 if self.degraded else 0,
            "active_workers": capacity["active_workers"],
            "lost_workers": capacity["lost_workers"],
            "serve.capacity_ratio": capacity["capacity_ratio"],
        }
        if self.last_ground_truth is not None:
            # -1 flags an audit that failed to run at all.
            gauges["serve.groundtruth_mismatches"] = (
                -1
                if "error" in self.last_ground_truth
                else len(self.last_ground_truth.get("mismatches", ()))
            )
        self._controller.metrics.set_gauges(gauges)

    def _view(self) -> CommittedView:
        with self._view_lock:
            view = self._committed
        if view is None:
            raise SessionClosedError("no committed epoch yet")
        return view

    # -- reads (always served, never torn) ---------------------------------

    def query(self, src: str, dst: str) -> QueryResult:
        started = time.perf_counter()
        try:
            view = self._view()
            unknown = [n for n in (src, dst) if n not in view.endpoints]
            if unknown:
                raise UnknownEndpointError(
                    f"not in the committed endpoint set: {', '.join(unknown)}"
                )
            return QueryResult(
                holds=view.holds(src, dst),
                epoch=view.epoch,
                degraded=self.degraded,
            )
        finally:
            # Bounded-reservoir histogram: a resident session can absorb
            # millions of queries without growing.
            self._controller.metrics.histogram(
                "serve.query_latency"
            ).observe(time.perf_counter() - started)

    def routes(self, node: str) -> Dict[str, int]:
        """Per-prefix selected-route counts of one node's committed RIB."""
        view = self._view()
        if node not in view.ribs:
            raise UnknownEndpointError(f"unknown node {node!r}")
        return {
            str(prefix): len(selected)
            for prefix, selected in sorted(view.ribs[node].items())
        }

    def reachability(self) -> CommittedView:
        return self._view()

    def health(self) -> Dict[str, Any]:
        with self._view_lock:
            view = self._committed
        if self.degraded:
            status = "degraded"
        elif self._draining:
            status = "draining"
        elif self._recomputing or not self._queue.empty():
            status = "recomputing"
        else:
            status = "serving"
        supervisor = self._controller.supervisor
        capacity = self._controller.capacity()
        now = time.time()
        return {
            "status": status,
            "epoch": view.epoch if view is not None else None,
            "queue_depth": self._queue.qsize(),
            "degraded_reason": self.degraded_reason,
            "warm_boot": self.warm_booted,
            "boot_fallback": self.boot_fallback,
            "endpoints": len(view.endpoints) if view is not None else 0,
            "snapshot": self.snapshot.name,
            "workers": capacity["active_workers"],
            "capacity": capacity,
            "runtime": self.options.runtime,
            "ground_truth": self.last_ground_truth,
            # Machine-monitorable liveness: a scraper can alert on a
            # stalled journal sequence or a stale last-commit timestamp
            # without parsing prose.
            "journal": self.journal.describe(),
            "last_commit_ts": self.last_commit_ts,
            "last_commit_age_seconds": (
                now - self.last_commit_ts
                if self.last_commit_ts is not None
                else None
            ),
            "worker_health": {
                "recoveries": supervisor.recoveries,
                "stale_epoch_rejections": supervisor.stale_epoch_rejections,
                "workers": self._controller.telemetry.worker_summary(),
            },
        }

    def statusz(self) -> Dict[str, Any]:
        """:meth:`health` plus the live telemetry plane — the payload
        behind the ``statusz`` API op and ``repro top``."""
        status = self.health()
        status["frames"] = {
            str(worker_id): frame
            for worker_id, frame in self._controller.telemetry.latest().items()
        }
        status["telemetry"] = self._controller.telemetry.summary()
        status["query_latency"] = self._controller.metrics.histogram(
            "serve.query_latency"
        ).summary()
        return status

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self._controller.metrics.snapshot()

    def openmetrics(self) -> str:
        """The session's metrics in OpenMetrics text format."""
        return render_openmetrics(self.metrics_snapshot())

    # -- writes (single mutator thread, bounded admission) -----------------

    def submit_delta(self, delta) -> Future:
        """Enqueue a delta; the Future resolves to a :class:`DeltaResult`."""
        if self._closed:
            if self._draining:
                raise SessionDrainingError(
                    "session is draining; new deltas refused"
                )
            raise SessionClosedError("session is closed")
        if self.degraded:
            raise SessionDegradedError(
                self.degraded_reason or "session is degraded"
            )
        future: Future = Future()
        try:
            self._queue.put_nowait((delta, future))
        except queue.Full:
            self.journal.record(
                "load_shed",
                queue_limit=self._queue.maxsize,
                epoch=self.epoch,
            )
            raise SessionBusyError(
                f"admission queue is full "
                f"({self._queue.maxsize} deltas pending)"
            ) from None
        return future

    def apply_delta(self, delta, timeout: Optional[float] = None) -> DeltaResult:
        return self.submit_delta(delta).result(timeout)

    def _mutate_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            delta, future = item
            if not future.set_running_or_notify_cancel():
                continue
            if delta is _REBALANCE:
                # Capacity change is an epoch event; run it on the same
                # thread as deltas so fleet mutation is never concurrent.
                self._recomputing = True
                try:
                    future.set_result(self._rebalance())
                except BaseException as exc:  # noqa: BLE001 — same ladder
                    self.degraded = True
                    self.degraded_reason = f"{type(exc).__name__}: {exc}"
                    self.journal.record(
                        "degraded",
                        reason=self.degraded_reason,
                        epoch=self.epoch,
                    )
                    self._publish_gauges()
                    future.set_exception(exc)
                finally:
                    self._recomputing = False
                continue
            if self.degraded:
                future.set_exception(
                    SessionDegradedError(
                        self.degraded_reason or "session is degraded"
                    )
                )
                continue
            self._recomputing = True
            try:
                result = self._apply(delta)
            except DeltaError as exc:
                # Rejected before any state was touched (bad hostname,
                # unparsable text, no such link): not a degradation.
                future.set_exception(exc)
            except BaseException as exc:  # noqa: BLE001 — degradation ladder
                self.degraded = True
                self.degraded_reason = f"{type(exc).__name__}: {exc}"
                self.journal.record(
                    "degraded",
                    reason=self.degraded_reason,
                    epoch=self.epoch,
                )
                self._publish_gauges()
                future.set_exception(exc)
            else:
                future.set_result(result)
            finally:
                self._recomputing = False

    def _apply(self, delta) -> DeltaResult:
        old_snapshot = self.snapshot
        new_snapshot, changed_hosts = delta.apply(old_snapshot)
        classification = classify(old_snapshot, new_snapshot, changed_hosts)
        epoch = self.epoch + 1
        self.journal.record(
            "delta_classified",
            delta_kind=classification.kind,
            incremental=classification.incremental,
            dirty_prefixes=len(classification.dirty_prefixes),
            changed_hosts=len(classification.changed_hosts),
            epoch=epoch,
        )
        controller = self._controller
        if classification.incremental:
            self._prepare_incremental(new_snapshot, classification, epoch)
        else:
            self._prepare_full(new_snapshot, epoch)
        stats = controller.run_control_plane()
        controller.rebuild_data_plane()
        self.snapshot = new_snapshot
        self.epoch = epoch
        previous, view = self._commit_view()
        return DeltaResult(
            epoch=epoch,
            kind=classification.kind,
            shards_recomputed=stats.shards_run,
            shards_reused=stats.shards_skipped,
            dirty_prefixes=len(classification.dirty_prefixes),
            sequential_fallback=stats.sequential_fallback,
            reachable_pairs=len(view.pairs),
            lost_pairs=(
                tuple(sorted(previous.pairs - view.pairs))
                if previous is not None
                else ()
            ),
            gained_pairs=(
                tuple(sorted(view.pairs - previous.pairs))
                if previous is not None
                else ()
            ),
        )

    def _rebalance(self) -> bool:
        """Probe every lost worker; rebalance each healed one back in.

        Runs on the mutator thread.  A successful rejoin is a capacity
        change, so it lands as a fresh committed epoch; a host that is
        still down simply keeps the session at reduced capacity.
        """
        controller = self._controller
        healed = False
        for worker_id in sorted(controller.lost):
            epoch = self.epoch + 1
            if not controller.rejoin_worker(worker_id, epoch=epoch):
                continue
            self.epoch = epoch
            healed = True
        if healed:
            controller.rebuild_data_plane()
            self._commit_view()
        return healed

    def _heal_loop(self) -> None:
        """Backoff timer that retries blacklisted hosts via the mutator."""
        policy = self.options.retry_policy
        delay = policy.heal_probe_base
        while not self._heal_stop.wait(delay):
            if self._closed or self.degraded:
                continue
            if not self._controller.lost:
                delay = policy.heal_probe_base
                continue
            future: Future = Future()
            try:
                self._queue.put_nowait((_REBALANCE, future))
            except queue.Full:
                # Deltas keep priority; try again next tick.
                delay = min(delay * policy.heal_probe_factor, policy.heal_probe_max)
                continue
            try:
                healed = future.result(timeout=300)
            except BaseException:  # noqa: BLE001 — probe must never crash
                healed = False
            if healed:
                delay = policy.heal_probe_base
            else:
                delay = min(delay * policy.heal_probe_factor, policy.heal_probe_max)

    def _prepare_incremental(
        self,
        new_snapshot: Snapshot,
        classification: DeltaClassification,
        epoch: int,
    ) -> int:
        """Announce-only path: carry clean shards over, recompute dirty.

        Returns the number of shards carried over (also visible as the
        new CPO's ``shards_skipped``).
        """
        opts = self.options
        controller = self._controller
        store = controller.store
        old_manifest = controller.manifest
        old_fingerprints = (
            dict(old_manifest.shard_fingerprints)
            if old_manifest is not None
            else {}
        )
        new_shards = (
            make_shards(new_snapshot, opts.num_shards, seed=opts.seed)
            if opts.num_shards and opts.num_shards > 1
            else []
        )
        # Same topology and partition: rebuild only the changed hosts'
        # router models, seeding the new epoch in the same RPC.
        controller.rebind_snapshot(
            new_snapshot, classification.changed_hosts, epoch
        )
        controller.shards = new_shards
        # A new shard is *clean* when it holds no dirty prefix and its
        # fingerprint matches a converged flush index of the old epoch.
        dirty = classification.dirty_prefixes
        carry: Dict[int, int] = {}
        for shard in new_shards:
            if shard.prefixes & dirty:
                continue
            fingerprint = shard.fingerprint()
            for old_index_text, old_fp in old_fingerprints.items():
                if old_fp != fingerprint:
                    continue
                old_index = int(old_index_text)
                if old_manifest is not None and old_manifest.is_shard_done(
                    old_index
                ):
                    carry[shard.index] = old_index
                break
        # Read the clean payloads out before the between-epoch reset; a
        # shard with any file missing is recomputed instead.
        payloads: Dict[int, Dict[int, bytes]] = {}
        for new_index, old_index in list(carry.items()):
            per_worker: Dict[int, bytes] = {}
            for worker in controller.workers:
                data = store.read_shard_payload(worker.worker_id, old_index)
                if data is None:
                    break
                per_worker[worker.worker_id] = data
            else:
                payloads[new_index] = per_worker
                continue
            del carry[new_index]
        store.clear_shard_files()
        for new_index, per_worker in payloads.items():
            for worker_id, data in per_worker.items():
                store.write_shard_payload(worker_id, new_index, data)
        manifest = RunManifest(
            options_hash=options_fingerprint(opts, new_snapshot),
            seed=opts.seed,
            num_workers=opts.num_workers,
            num_shards=max(1, len(new_shards) or 1),
            ospf_done=True,  # announce-only: the IGP result is unchanged
            epoch=epoch,
        )
        for new_index in carry:
            manifest.mark_shard(new_index)
        manifest.shard_fingerprints = {
            str(shard.index): shard.fingerprint() for shard in new_shards
        }
        store.write_manifest(manifest)
        controller.make_cpo(manifest, epoch)
        return len(carry)

    def _prepare_full(self, new_snapshot: Snapshot, epoch: int) -> None:
        """Topology/policy path: repartition, respawn, recompute all."""
        opts = self.options
        controller = self._controller
        controller.reconfigure(new_snapshot, epoch)
        controller.store.clear_run_state()
        manifest = RunManifest(
            options_hash=options_fingerprint(opts, new_snapshot),
            seed=opts.seed,
            num_workers=opts.num_workers,
            num_shards=max(1, len(controller.shards) or 1),
            epoch=epoch,
        )
        controller.store.write_manifest(manifest)
        controller.make_cpo(manifest, epoch)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        # Draining before closed: new deltas get the typed refusal while
        # queued ones still finish.
        self._draining = True
        self._closed = True
        self.journal.record(
            "drain", epoch=self.epoch, queued=self._queue.qsize()
        )
        self._heal_stop.set()
        self._queue.put(_STOP)  # drains queued deltas first
        self._mutator.join(timeout=120)
        self._heal_thread.join(timeout=5)
        self._draining = False
        try:
            self._controller.close()
        finally:
            self.journal.close()
            if self._owned_store:
                shutil.rmtree(self.options.store_dir, ignore_errors=True)

    def __enter__(self) -> "VerifierSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
