"""Line-JSON API over TCP for a :class:`VerifierSession`.

One JSON object per line in, one per line out; readable with netcat::

    $ printf '{"op": "health"}\\n' | nc 127.0.0.1 7000

Operations (``op`` field):

``health``   session status, epoch, queue depth, journal/commit liveness
``query``    ``src``/``dst`` → committed reachability verdict
``routes``   ``node`` → per-prefix selected-route counts
``delta``    ``kind: "config"`` (``hostname``, ``text``, optional
             ``dialect``) or ``kind: "link"`` (``a``, ``b``, optional
             ``state: "down"|"up"``); blocks until the epoch commits
``statusz``  health plus live per-worker telemetry frames and the
             query-latency summary (what ``repro top`` renders)
``eventsz``  structured event journal replay; optional ``since``
             (sequence-number floor) and ``limit``
``metrics``  the session's metrics as OpenMetrics text (``text`` field)
``stop``     acknowledge, then shut the server down

Every response carries ``ok``.  Refusals are typed: ``"busy"`` (queue
full — retry later), ``"degraded"`` (read-only), ``"draining"``
(shutting down, queued deltas still finishing), ``"bad-request"``,
``"closed"``.  Connections are handled on their own threads, so queries
keep answering while a delta recomputes on another connection.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, Optional, Set

from .deltas import ConfigTextDelta, DeltaError, LinkDelta
from .session import (
    SessionBusyError,
    SessionClosedError,
    SessionDegradedError,
    SessionDrainingError,
    UnknownEndpointError,
    VerifierSession,
)


def _error(code: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "error": code, "message": message}


def parse_delta(request: Dict[str, Any]):
    """Build a delta object from a ``delta`` request body."""
    kind = request.get("kind")
    if kind == "config":
        if "hostname" not in request or "text" not in request:
            raise DeltaError("config delta needs 'hostname' and 'text'")
        return ConfigTextDelta(
            hostname=request["hostname"],
            text=request["text"],
            dialect=request.get("dialect"),
        )
    if kind == "link":
        if "a" not in request or "b" not in request:
            raise DeltaError("link delta needs 'a' and 'b'")
        state = request.get("state", "down")
        if state not in ("down", "up"):
            raise DeltaError(f"link state must be 'down' or 'up', got {state!r}")
        return LinkDelta(a=request["a"], b=request["b"], up=(state == "up"))
    raise DeltaError(f"unknown delta kind {kind!r} (want 'config' or 'link')")


class SessionServer:
    """Serves one :class:`VerifierSession` over line-JSON TCP."""

    # Closing a listener does not reliably wake a thread blocked in
    # accept(); poll on a short timeout so stop() is observed promptly.
    ACCEPT_POLL_SECONDS = 0.5

    def __init__(
        self,
        session: VerifierSession,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.session = session
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self._listener.settimeout(self.ACCEPT_POLL_SECONDS)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping = False
        self._conns: Set[socket.socket] = set()
        self._conn_lock = threading.Lock()

    def serve_forever(self) -> None:
        try:
            while not self._stopping:
                try:
                    conn, _peer = self._listener.accept()
                except socket.timeout:
                    continue  # re-check _stopping
                except OSError:
                    break  # listener closed by stop()
                conn.settimeout(None)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name="serve-conn",
                    daemon=True,
                )
                thread.start()
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._conns.add(conn)
        try:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                response = self.handle_line(line)
                try:
                    conn.sendall(
                        (json.dumps(response) + "\n").encode("utf-8")
                    )
                except OSError:
                    return
                if self._stopping:
                    return
        except (OSError, ValueError):
            pass  # client vanished mid-line
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def handle_line(self, line: str) -> Dict[str, Any]:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return _error("bad-request", f"not JSON: {exc}")
        if not isinstance(request, dict):
            return _error("bad-request", "request must be a JSON object")
        return self.handle(request)

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        try:
            if op == "health":
                return {"ok": True, **self.session.health()}
            if op == "query":
                if "src" not in request or "dst" not in request:
                    return _error("bad-request", "query needs 'src' and 'dst'")
                result = self.session.query(request["src"], request["dst"])
                return {
                    "ok": True,
                    "holds": result.holds,
                    "epoch": result.epoch,
                    "degraded": result.degraded,
                }
            if op == "routes":
                if "node" not in request:
                    return _error("bad-request", "routes needs 'node'")
                node = request["node"]
                return {
                    "ok": True,
                    "node": node,
                    "routes": self.session.routes(node),
                }
            if op == "delta":
                delta = parse_delta(request)
                result = self.session.apply_delta(
                    delta, timeout=request.get("timeout")
                )
                return {
                    "ok": True,
                    "epoch": result.epoch,
                    "kind": result.kind,
                    "shards_recomputed": result.shards_recomputed,
                    "shards_reused": result.shards_reused,
                    "dirty_prefixes": result.dirty_prefixes,
                    "sequential_fallback": result.sequential_fallback,
                    "reachable_pairs": result.reachable_pairs,
                    "lost_pairs": [list(pair) for pair in result.lost_pairs],
                    "gained_pairs": [
                        list(pair) for pair in result.gained_pairs
                    ],
                }
            if op == "statusz":
                return {"ok": True, **self.session.statusz()}
            if op == "eventsz":
                since = request.get("since", 0)
                limit = request.get("limit")
                if not isinstance(since, int) or isinstance(since, bool):
                    return _error("bad-request", "'since' must be an integer")
                if limit is not None and (
                    not isinstance(limit, int) or isinstance(limit, bool)
                ):
                    return _error("bad-request", "'limit' must be an integer")
                events = self.session.journal.events(since=since, limit=limit)
                return {
                    "ok": True,
                    "journal": self.session.journal.describe(),
                    "events": [event.to_dict() for event in events],
                }
            if op == "metrics":
                return {"ok": True, "text": self.session.openmetrics()}
            if op == "stop":
                self.stop()
                return {"ok": True, "stopping": True}
            return _error("bad-request", f"unknown op {op!r}")
        except SessionBusyError as exc:
            return _error("busy", str(exc))
        except SessionDegradedError as exc:
            return _error("degraded", str(exc))
        except SessionDrainingError as exc:
            # Before SessionClosedError — draining subclasses closed, and
            # monitors treat "still finishing" and "gone" differently.
            return _error("draining", str(exc))
        except SessionClosedError as exc:
            return _error("closed", str(exc))
        except (DeltaError, UnknownEndpointError) as exc:
            return _error("bad-request", str(exc))
        except Exception as exc:  # noqa: BLE001 — a delta's terminal failure
            # (e.g. the recompute error that just degraded the session)
            # surfaces on the submitting connection; later requests see
            # the typed "degraded" refusal.
            return _error("internal", f"{type(exc).__name__}: {exc}")

    def stop(self) -> None:
        """Stop accepting; live connections finish their current line."""
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)  # sends EOF to the reader
            except OSError:
                pass
