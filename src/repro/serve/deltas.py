"""Delta vocabulary for the serving layer (``repro serve``).

A delta is a small, operator-shaped change to the running snapshot: one
device's configuration text is swapped, or one link is failed/restored.
Applying a delta produces a *new* :class:`~repro.config.loader.Snapshot`
(the serving layer treats snapshots as immutable) plus the hosts whose
device model changed.

:func:`classify` then decides how much recompute the delta needs:

* **announce-only** — every changed host differs solely in its
  ``bgp.networks`` list (prefixes announced or withdrawn).  Topology,
  IGP, sessions, and policy are untouched, so only the shards holding a
  *dirty* prefix (the per-host symmetric difference, closed over the
  DPDG components of both the old and the new snapshot) must recompute.
* **full** — anything else (interfaces, links, neighbors, policy): the
  partition and the IGP result may shift, so everything reruns.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from ..config.loader import Snapshot, make_snapshot, parse_device
from ..dist.sharding import build_dpdg
from ..net.ip import Prefix


class DeltaError(ValueError):
    """A delta that cannot be applied to the current snapshot."""


def _reannotate(old: Snapshot, new: Snapshot) -> Snapshot:
    """Carry synthesizer hints (role/pod/layer) across re-derivation."""
    new.metadata.update(old.metadata)
    for node in new.topology.nodes():
        try:
            original = old.topology.node(node.name)
        except KeyError:
            continue
        node.role = original.role
        node.pod = original.pod
        node.layer = original.layer
        node.cluster = original.cluster
    return new


@dataclass(frozen=True)
class ConfigTextDelta:
    """Swap one device's configuration text in place."""

    hostname: str
    text: str
    dialect: Optional[str] = None

    def apply(self, snapshot: Snapshot) -> Tuple[Snapshot, Tuple[str, ...]]:
        if self.hostname not in snapshot.configs:
            raise DeltaError(
                f"unknown device {self.hostname!r} (snapshot has "
                f"{len(snapshot.configs)} devices)"
            )
        try:
            config = parse_device(self.text, dialect=self.dialect)
        except Exception as exc:  # noqa: BLE001 — parser errors vary
            raise DeltaError(
                f"cannot parse config for {self.hostname}: {exc}"
            ) from exc
        if config.hostname != self.hostname:
            raise DeltaError(
                f"config text names {config.hostname!r}, delta targets "
                f"{self.hostname!r}"
            )
        configs = dict(snapshot.configs)
        configs[self.hostname] = config
        new = make_snapshot(configs, name=snapshot.name)
        return _reannotate(snapshot, new), (self.hostname,)


@dataclass(frozen=True)
class LinkDelta:
    """Fail (``up=False``) or restore (``up=True``) one a—b link.

    Modeled the way operators see it: both endpoint interfaces go
    ``shutdown`` (or come back up), which removes the link from the
    derived topology and the sessions riding it.
    """

    a: str
    b: str
    up: bool = False

    def apply(self, snapshot: Snapshot) -> Tuple[Snapshot, Tuple[str, ...]]:
        for host in (self.a, self.b):
            if host not in snapshot.configs:
                raise DeltaError(f"unknown device {host!r}")
        pairs = (
            self._shut_interface_pairs(snapshot)
            if self.up
            else self._live_interface_pairs(snapshot)
        )
        if not pairs:
            state = "failed" if self.up else "live"
            raise DeltaError(
                f"no {state} link between {self.a} and {self.b}"
            )
        configs = copy.deepcopy(snapshot.configs)
        for (iface_a, iface_b) in pairs:
            configs[self.a].interfaces[iface_a].shutdown = not self.up
            configs[self.b].interfaces[iface_b].shutdown = not self.up
        new = make_snapshot(configs, name=snapshot.name)
        return _reannotate(snapshot, new), (self.a, self.b)

    def _live_interface_pairs(
        self, snapshot: Snapshot
    ) -> Sequence[Tuple[str, str]]:
        """Interface pairs of links currently in the derived topology."""
        pairs = []
        for link in snapshot.topology.links():
            ends = {link.a.node: link.a, link.b.node: link.b}
            if set(ends) == {self.a, self.b}:
                pairs.append((ends[self.a].interface, ends[self.b].interface))
        return pairs

    def _shut_interface_pairs(
        self, snapshot: Snapshot
    ) -> Sequence[Tuple[str, str]]:
        """Shutdown interface pairs sharing a subnet (a failed link is
        no longer in the derived topology, so match on addressing)."""
        pairs = []
        for iface_a in snapshot.configs[self.a].interfaces.values():
            if not iface_a.shutdown or iface_a.prefix is None:
                continue
            for iface_b in snapshot.configs[self.b].interfaces.values():
                if not iface_b.shutdown or iface_b.prefix is None:
                    continue
                if iface_a.prefix == iface_b.prefix:
                    pairs.append((iface_a.name, iface_b.name))
        return pairs


@dataclass(frozen=True)
class DeltaClassification:
    """How much recompute a delta needs."""

    kind: str                       # "announce" | "full"
    changed_hosts: Tuple[str, ...]
    dirty_prefixes: FrozenSet[Prefix] = frozenset()

    @property
    def incremental(self) -> bool:
        return self.kind == "announce"


def _links_signature(snapshot: Snapshot) -> FrozenSet[Tuple]:
    return frozenset(
        tuple(
            sorted(
                [
                    (link.a.node, link.a.interface),
                    (link.b.node, link.b.interface),
                ]
            )
        )
        for link in snapshot.topology.links()
    )


def _same_but_networks(old_cfg, new_cfg) -> bool:
    """True when the configs differ at most in ``bgp.networks``."""
    if (old_cfg.bgp is None) != (new_cfg.bgp is None):
        return False
    if replace(old_cfg, bgp=None) != replace(new_cfg, bgp=None):
        return False
    if old_cfg.bgp is None:
        return True
    return replace(old_cfg.bgp, networks=[]) == replace(
        new_cfg.bgp, networks=[]
    )


def dirty_closure(
    dirty: Iterable[Prefix], *snapshots: Snapshot
) -> FrozenSet[Prefix]:
    """Close a dirty prefix set over DPDG components of every snapshot.

    A dirty prefix drags its whole dependency component along (an
    aggregate watching a withdrawn contributor recomputes too), and the
    closure must hold in *both* the old and the new graph — a dependency
    that only exists on one side still couples the shards on that side.
    """
    closed: Set[Prefix] = set(dirty)
    components = [
        set(component)
        for snapshot in snapshots
        for component in build_dpdg(snapshot).weakly_connected_components()
        if len(component) > 1
    ]
    changed = True
    while changed:
        changed = False
        for component in components:
            if (closed & component) and not component <= closed:
                closed |= component
                changed = True
    return frozenset(closed)


def classify(
    old: Snapshot, new: Snapshot, changed_hosts: Sequence[str]
) -> DeltaClassification:
    """Decide the recompute scope of ``old -> new``."""
    changed = tuple(changed_hosts)
    full = DeltaClassification(kind="full", changed_hosts=changed)
    if set(old.configs) != set(new.configs):
        return full
    if _links_signature(old) != _links_signature(new):
        return full
    dirty: Set[Prefix] = set()
    for host in changed:
        old_cfg, new_cfg = old.configs[host], new.configs[host]
        if old_cfg == new_cfg:
            continue
        if not _same_but_networks(old_cfg, new_cfg):
            return full
        dirty |= set(old_cfg.bgp.networks) ^ set(new_cfg.bgp.networks)
    return DeltaClassification(
        kind="announce",
        changed_hosts=changed,
        dirty_prefixes=dirty_closure(dirty, old, new),
    )
