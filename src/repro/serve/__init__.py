"""The serving layer: a resident, delta-accepting verifier.

:class:`VerifierSession` keeps one converged S2 controller (and its
worker fleet) alive between requests, applies config/link deltas with
epoch-fenced incremental recompute, and serves reachability queries
from the last committed epoch.  :class:`SessionServer` exposes it over
a line-JSON TCP API (the ``repro serve`` command).
"""

from .api import SessionServer, parse_delta
from .deltas import (
    ConfigTextDelta,
    DeltaClassification,
    DeltaError,
    LinkDelta,
    classify,
    dirty_closure,
)
from .session import (
    CommittedView,
    DeltaResult,
    QueryResult,
    SessionBusyError,
    SessionClosedError,
    SessionDegradedError,
    SessionDrainingError,
    SessionError,
    UnknownEndpointError,
    VerifierSession,
)

__all__ = [
    "CommittedView",
    "ConfigTextDelta",
    "DeltaClassification",
    "DeltaError",
    "DeltaResult",
    "LinkDelta",
    "QueryResult",
    "SessionBusyError",
    "SessionClosedError",
    "SessionDegradedError",
    "SessionDrainingError",
    "SessionError",
    "SessionServer",
    "UnknownEndpointError",
    "VerifierSession",
    "classify",
    "dirty_closure",
    "parse_delta",
]
