"""What-if analysis on top of the verifier: change review and link failures.

The verifiers answer "is the network correct *now*"; operators usually ask
comparative questions — "what breaks if I apply this change?" (§2.1's
failure mitigation edits) and "what breaks if this link dies?" (the
analysis-based verifiers' signature query, §6.2, answered here by honest
re-simulation rather than abstraction).

The building block is the :class:`ReachabilityMatrix`: the boolean
src→dst closure over a chosen endpoint set, cheap to diff.  On top of it:

* :func:`compare_snapshots` — verify two snapshots (before/after a config
  change) and report lost/gained pairs;
* :class:`LinkFailureAnalyzer` — re-verify the snapshot with each link
  removed and report the pairs each failure would break, distinguishing
  fragile links from ECMP-protected ones.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..config.loader import Snapshot, make_snapshot
from ..dataplane.queries import Query
from ..dist.controller import S2Options
from ..net.topology import Link
from .s2 import S2Verifier


@dataclass(frozen=True)
class ReachabilityMatrix:
    """The reachable src→dst pairs over a fixed endpoint set."""

    endpoints: Tuple[str, ...]
    pairs: FrozenSet[Tuple[str, str]]

    def holds(self, src: str, dst: str) -> bool:
        return (src, dst) in self.pairs

    def __len__(self) -> int:
        return len(self.pairs)

    def diff(self, other: "ReachabilityMatrix") -> "ReachabilityDiff":
        """Pairs lost and gained going from ``self`` to ``other``."""
        return ReachabilityDiff(
            lost=tuple(sorted(self.pairs - other.pairs)),
            gained=tuple(sorted(other.pairs - self.pairs)),
        )


@dataclass(frozen=True)
class ReachabilityDiff:
    lost: Tuple[Tuple[str, str], ...]
    gained: Tuple[Tuple[str, str], ...]

    @property
    def breaks_anything(self) -> bool:
        return bool(self.lost)

    def summary(self) -> str:
        if not self.lost and not self.gained:
            return "no reachability change"
        parts = []
        if self.lost:
            parts.append(f"{len(self.lost)} pairs lost")
        if self.gained:
            parts.append(f"{len(self.gained)} pairs gained")
        return ", ".join(parts)


def compute_matrix(
    snapshot: Snapshot,
    endpoints: Optional[Sequence[str]] = None,
    options: Optional[S2Options] = None,
) -> ReachabilityMatrix:
    """Verify ``snapshot`` and return its reachability matrix.

    ``endpoints`` defaults to every prefix-announcing device.  A fresh
    verifier (with its own workers and stores) runs per call, so matrices
    for different snapshots never share state.
    """
    with S2Verifier(snapshot, options or S2Options(num_workers=2)) as verifier:
        if endpoints is None:
            endpoints = verifier.controller.prefix_holders()
        checker = verifier.checker()
        result = checker.check_reachability(
            Query(sources=tuple(endpoints), destinations=tuple(endpoints))
        )
        return ReachabilityMatrix(
            endpoints=tuple(endpoints),
            pairs=frozenset(result.pairs()),
        )


def compare_snapshots(
    before: Snapshot,
    after: Snapshot,
    endpoints: Optional[Sequence[str]] = None,
    options: Optional[S2Options] = None,
) -> ReachabilityDiff:
    """Change review: the reachability delta from ``before`` to ``after``."""
    base = compute_matrix(before, endpoints, options)
    return base.diff(compute_matrix(after, base.endpoints, options))


def without_link(snapshot: Snapshot, link: Link) -> Snapshot:
    """A copy of ``snapshot`` with one link failed.

    The failure is modeled the way operators see it: both endpoint
    interfaces go down (``shutdown``), which removes the link from the
    derived topology and the BGP sessions riding it.
    """
    configs = copy.deepcopy(snapshot.configs)
    for endpoint in (link.a, link.b):
        config = configs[endpoint.node]
        iface = config.interfaces.get(endpoint.interface)
        if iface is not None:
            iface.shutdown = True
    failed = make_snapshot(configs, name=f"{snapshot.name}-minus-{link.a}")
    failed.metadata.update(snapshot.metadata)
    # re-annotate synthesizer hints lost by re-derivation
    for node in failed.topology.nodes():
        original = snapshot.topology.node(node.name)
        node.role = original.role
        node.pod = original.pod
        node.layer = original.layer
        node.cluster = original.cluster
    return failed


@dataclass
class LinkFailureReport:
    """Per-link impact of a single failure."""

    link: str
    status: str                   # "safe" | "breaks" | "oom" | "no-converge"
    lost_pairs: Tuple[Tuple[str, str], ...] = ()

    @property
    def is_safe(self) -> bool:
        return self.status == "safe"


class LinkFailureAnalyzer:
    """Single-link failure sweep by honest re-simulation."""

    def __init__(
        self,
        snapshot: Snapshot,
        endpoints: Optional[Sequence[str]] = None,
        options: Optional[S2Options] = None,
    ) -> None:
        self.snapshot = snapshot
        self.options = options or S2Options(num_workers=2)
        self.baseline = compute_matrix(snapshot, endpoints, self.options)

    def analyze_link(self, link: Link) -> LinkFailureReport:
        from ..routing.engine import ConvergenceError

        name = f"{link.a}--{link.b}"
        failed = without_link(self.snapshot, link)
        try:
            matrix = compute_matrix(
                failed, self.baseline.endpoints, self.options
            )
        except ConvergenceError:
            return LinkFailureReport(link=name, status="no-converge")
        diff = self.baseline.diff(matrix)
        if diff.breaks_anything:
            return LinkFailureReport(
                link=name, status="breaks", lost_pairs=diff.lost
            )
        return LinkFailureReport(link=name, status="safe")

    def sweep(
        self, links: Optional[Sequence[Link]] = None
    ) -> List[LinkFailureReport]:
        """Analyze every link (or the given subset), worst first."""
        if links is None:
            links = list(self.snapshot.topology.links())
        reports = [self.analyze_link(link) for link in links]
        reports.sort(key=lambda r: (-len(r.lost_pairs), r.link))
        return reports

    def fragile_links(self) -> List[LinkFailureReport]:
        return [r for r in self.sweep() if not r.is_safe]
