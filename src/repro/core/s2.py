"""The high-level S2 public API.

:class:`S2Verifier` is the one-stop entry point a user sees::

    from repro import S2Verifier, S2Options
    from repro.net.fattree import build_fattree

    snapshot = build_fattree(8)
    verifier = S2Verifier(snapshot, S2Options(num_workers=8, num_shards=20))
    result = verifier.verify()          # all-pair reachability by default
    print(result.summary())

It owns an :class:`~repro.dist.controller.S2Controller`, turns resource
exhaustion (:class:`~repro.dist.resources.SimulatedOOM`,
:class:`~repro.bdd.engine.BddOverflowError`) into a structured
:class:`VerificationResult` instead of a traceback, and bundles the stats
the benchmark harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd.engine import BddOverflowError
from ..obs.tracer import stopwatch
from ..config.loader import Snapshot
from ..dataplane.forwarding import FinalPacket
from ..dataplane.queries import (
    MultipathViolation,
    PropertyViolation,
    Query,
    ReachabilityResult,
)
from ..dist.controller import S2Controller, S2Options
from ..dist.cpo import ControlPlaneStats
from ..dist.dpo import DataPlaneStats
from ..dist.faults import WorkerFailure
from ..dist.resources import ClusterReport, SimulatedOOM
from ..net.ip import Prefix


@dataclass
class VerificationResult:
    """Everything one verification run produced."""

    status: str          # "ok" | "oom" | "bdd-overflow" | "worker-failure"
    snapshot_name: str
    num_workers: int
    num_shards: int
    wall_seconds: float = 0.0
    modeled_time: float = 0.0
    peak_worker_bytes: int = 0
    total_routes: int = 0
    error: Optional[str] = None
    cp_stats: Optional[ControlPlaneStats] = None
    dp_stats: Optional[DataPlaneStats] = None
    report: Optional[ClusterReport] = None
    reachability: Optional[ReachabilityResult] = None
    reachable_pairs: int = 0
    checked_pairs: int = 0
    loop_violations: List[PropertyViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary(self) -> str:
        if not self.ok:
            return (
                f"{self.snapshot_name}: {self.status.upper()} "
                f"({self.error})"
            )
        return (
            f"{self.snapshot_name}: OK — {self.reachable_pairs}/"
            f"{self.checked_pairs} pairs reachable, "
            f"{self.total_routes} routes, "
            f"peak {self.peak_worker_bytes / 1e6:.1f} MB/worker, "
            f"{self.wall_seconds:.2f}s wall "
            f"({self.modeled_time:.0f} modeled units)"
        )


class S2Verifier:
    """Distributed configuration verification of one snapshot."""

    def __init__(
        self, snapshot: Snapshot, options: Optional[S2Options] = None
    ) -> None:
        self.snapshot = snapshot
        self.options = options or S2Options()
        self.controller = S2Controller(snapshot, self.options)

    @classmethod
    def resume(
        cls, snapshot: Snapshot, options: S2Options
    ) -> "S2Verifier":
        """Reattach to a killed run (``options.store_dir`` required).

        The resumed run restores the OSPF checkpoint, skips every shard
        the run manifest records as converged, and completes the rest —
        producing the same RIBs and verdicts the uninterrupted run would
        have.
        """
        verifier = cls.__new__(cls)
        verifier.snapshot = snapshot
        verifier.options = options
        verifier.controller = S2Controller.resume(snapshot, options)
        return verifier

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.controller.close()

    def __enter__(self) -> "S2Verifier":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- pieces (usable individually) ----------------------------------------

    def run_control_plane(self) -> ControlPlaneStats:
        return self.controller.run_control_plane()

    def checker(self):
        return self.controller.checker()

    def collected_ribs(self):
        return self.controller.collected_ribs()

    # -- the one-shot entry point ----------------------------------------------

    def verify(
        self,
        query: Optional[Query] = None,
        check_loops: bool = False,
    ) -> VerificationResult:
        """Full pipeline: control plane → data plane → property checking.

        Defaults to the paper's all-pair reachability.  Resource
        exhaustion is reported in the result's ``status`` — the paper's
        figures treat OOM as a data point, not a crash.
        """
        result = VerificationResult(
            status="ok",
            snapshot_name=self.snapshot.name,
            num_workers=self.options.num_workers,
            num_shards=max(1, self.options.num_shards),
        )
        tracer = self.controller.tracer
        with stopwatch() as clock, tracer.span(
            "verify", snapshot=self.snapshot.name
        ) as span:
            try:
                result.cp_stats = self.controller.run_control_plane()
                result.total_routes = self.controller.total_route_count()
                checker = self.controller.checker()
                result.dp_stats = self.controller.dpo.stats
                if query is None:
                    holders = self.controller.prefix_holders()
                    query = Query(
                        sources=tuple(holders), destinations=tuple(holders)
                    )
                with tracer.span("check.reachability", category="check"):
                    result.reachability = checker.check_reachability(query)
                result.reachable_pairs = len(result.reachability.pairs())
                result.checked_pairs = len(query.sources) * max(
                    1, len(query.destinations)
                )
                if check_loops:
                    with tracer.span("check.loops", category="check"):
                        result.loop_violations = checker.check_loop_free(
                            Query(sources=query.sources)
                        )
            except SimulatedOOM as exc:
                result.status = "oom"
                result.error = str(exc)
            except BddOverflowError as exc:
                result.status = "bdd-overflow"
                result.error = str(exc)
            except WorkerFailure as exc:
                # Supervision, shard replay, and the sequential fallback
                # are all exhausted (or the data-plane phase lost a worker
                # it could not get back): report it, don't traceback.
                result.status = "worker-failure"
                result.error = str(exc)
            span.set(status=result.status, routes=result.total_routes)
        result.wall_seconds = clock.seconds
        result.report = self.controller.report()
        result.peak_worker_bytes = result.report.peak_worker_bytes
        cp_modeled = (
            result.cp_stats.modeled_wall_time if result.cp_stats else 0.0
        )
        dp_modeled = result.dp_stats.modeled_total if result.dp_stats else 0.0
        result.modeled_time = cp_modeled + dp_modeled
        return result


def verify_snapshot(
    snapshot: Snapshot, options: Optional[S2Options] = None, **verify_kwargs
) -> VerificationResult:
    """Convenience: construct, verify, and clean up in one call."""
    with S2Verifier(snapshot, options) as verifier:
        return verifier.verify(**verify_kwargs)
