"""Public facade of the S2 reproduction."""

from .analysis import (  # noqa: F401
    LinkFailureAnalyzer,
    LinkFailureReport,
    ReachabilityDiff,
    ReachabilityMatrix,
    compare_snapshots,
    compute_matrix,
    without_link,
)
from .s2 import S2Verifier, VerificationResult, verify_snapshot  # noqa: F401
