"""Synthesized FatTree networks (the paper's ACORN-derived workload, §5.2).

``build_fattree(k)`` produces a k-pod FatTree running eBGP with a unique
ASN per switch, ECMP up to 64 paths, and one or more /24 host prefixes
announced by every edge switch.  The synthesizer emits *vendor config
text* and pushes it through the real parsers, so generated networks take
exactly the same path as user-provided snapshots.

Paper size mapping: FatTree``10k/2`` in the paper means ``k`` pods here —
FatTree40 is ``k=40`` (2000 switches), FatTree90 is ``k=90`` (10125
switches).  The benchmarks run scaled-down ``k`` by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config.loader import Snapshot, make_snapshot, parse_device
from .addressing import AddressPlan
from .ip import Prefix, format_ip
from .topology import Topology

LINK_SPACE = Prefix.parse("100.64.0.0/10")
HOST_SPACE = Prefix.parse("10.0.0.0/8")
ASN_BASE = 1000
DEFAULT_MAX_PATHS = 64


@dataclass(frozen=True)
class FatTreeSpec:
    """Parameters of a synthesized FatTree."""

    k: int                         # number of pods (must be even)
    prefixes_per_edge: int = 1     # host /24s announced by each edge switch
    max_paths: int = DEFAULT_MAX_PATHS
    juniper_fraction: float = 0.0  # fraction of switches using the 2nd dialect

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise ValueError("k must be an even integer >= 2")
        if self.k > 126:
            raise ValueError("k must fit the 10/8 addressing plan (k <= 126)")

    @property
    def half(self) -> int:
        return self.k // 2

    @property
    def num_edges(self) -> int:
        return self.k * self.half

    @property
    def num_aggs(self) -> int:
        return self.k * self.half

    @property
    def num_cores(self) -> int:
        return self.half * self.half

    @property
    def num_switches(self) -> int:
        return self.num_edges + self.num_aggs + self.num_cores

    @property
    def num_prefixes(self) -> int:
        return self.num_edges * self.prefixes_per_edge

    def estimated_total_routes(self) -> int:
        """Rough O(prefixes × switches) total-route estimate (§2.2)."""
        return self.num_prefixes * self.num_switches


def paper_size_name(k: int) -> str:
    """The paper's name for a k-pod FatTree (FatTree40 == k=40)."""
    return f"FatTree{k}"


@dataclass
class _Switch:
    name: str
    asn: int
    role: str            # "edge" | "agg" | "core"
    pod: Optional[int]
    index: int           # global index within role
    interfaces: List[Tuple[str, int, int]]  # (name, address, prefix-length)
    neighbors: List[Tuple[str, int, int]]   # (iface-name, peer-addr, peer-asn)
    networks: List[Prefix]


def _edge_prefixes(spec: FatTreeSpec, pod: int, idx: int) -> List[Prefix]:
    """Host prefixes announced by edge ``idx`` of ``pod``: 10.pod.X.0/24."""
    prefixes = []
    for p in range(spec.prefixes_per_edge):
        third_octet = idx * spec.prefixes_per_edge + p
        if third_octet > 255:
            raise ValueError("too many host prefixes per pod for 10/8 plan")
        network = (10 << 24) | (pod << 16) | (third_octet << 8)
        prefixes.append(Prefix(network, 24))
    return prefixes


def _build_switches(spec: FatTreeSpec) -> List[_Switch]:
    half = spec.half
    plan = AddressPlan(LINK_SPACE)
    switches: Dict[str, _Switch] = {}

    def new_switch(
        name: str, asn: int, role: str, pod: Optional[int], index: int
    ) -> _Switch:
        switch = _Switch(
            name=name,
            asn=asn,
            role=role,
            pod=pod,
            index=index,
            interfaces=[],
            neighbors=[],
            networks=[],
        )
        switches[name] = switch
        return switch

    asn = ASN_BASE
    for pod in range(spec.k):
        for i in range(half):
            edge = new_switch(f"edge-{pod}-{i}", asn, "edge", pod, pod * half + i)
            edge.networks = _edge_prefixes(spec, pod, i)
            asn += 1
        for i in range(half):
            new_switch(f"agg-{pod}-{i}", asn, "agg", pod, pod * half + i)
            asn += 1
    for c in range(spec.num_cores):
        new_switch(f"core-{c}", asn, "core", None, c)
        asn += 1

    def connect(a: _Switch, b: _Switch) -> None:
        addr_a, addr_b, _prefix = plan.next_p2p()
        iface_a = f"eth{len(a.interfaces)}"
        iface_b = f"eth{len(b.interfaces)}"
        a.interfaces.append((iface_a, addr_a, 31))
        b.interfaces.append((iface_b, addr_b, 31))
        a.neighbors.append((iface_a, addr_b, b.asn))
        b.neighbors.append((iface_b, addr_a, a.asn))

    # Pod wiring: full bipartite edge <-> agg within a pod.
    for pod in range(spec.k):
        for i in range(half):
            for j in range(half):
                connect(
                    switches[f"edge-{pod}-{i}"], switches[f"agg-{pod}-{j}"]
                )
    # Core wiring: core c connects to agg (c // half) of every pod.
    for c in range(spec.num_cores):
        agg_index = c // half
        for pod in range(spec.k):
            connect(switches[f"core-{c}"], switches[f"agg-{pod}-{agg_index}"])

    return list(switches.values())


def _render_cisco(switch: _Switch, spec: FatTreeSpec) -> str:
    lines = [f"hostname {switch.name}", "!"]
    for iface, addr, length in switch.interfaces:
        mask = format_ip(Prefix(addr, length).mask)
        lines += [
            f"interface {iface}",
            f" ip address {format_ip(addr)} {mask}",
            "!",
        ]
    lines.append(f"router bgp {switch.asn}")
    lines.append(f" bgp router-id {format_ip((192 << 24) | switch.asn)}")
    lines.append(f" maximum-paths {spec.max_paths}")
    for _iface, peer_addr, peer_asn in switch.neighbors:
        lines.append(f" neighbor {format_ip(peer_addr)} remote-as {peer_asn}")
    for prefix in switch.networks:
        lines.append(
            f" network {format_ip(prefix.network)} mask {format_ip(prefix.mask)}"
        )
    lines.append("!")
    return "\n".join(lines) + "\n"


def _render_juniper(switch: _Switch, spec: FatTreeSpec) -> str:
    out = [
        "system {",
        f"    host-name {switch.name};",
        "}",
        "interfaces {",
    ]
    for iface, addr, length in switch.interfaces:
        out += [
            f"    {iface} {{",
            "        unit 0 {",
            "            family {",
            "                inet {",
            f"                    address {format_ip(addr)}/{length};",
            "                }",
            "            }",
            "        }",
            "    }",
        ]
    out.append("}")
    out += [
        "routing-options {",
        f"    router-id {format_ip((192 << 24) | switch.asn)};",
        f"    autonomous-system {switch.asn};",
        "}",
        "protocols {",
        "    bgp {",
        f"        multipath {spec.max_paths};",
        "        group fabric {",
    ]
    for _iface, peer_addr, peer_asn in switch.neighbors:
        out += [
            f"            neighbor {format_ip(peer_addr)} {{",
            f"                peer-as {peer_asn};",
            "            }",
        ]
    out.append("        }")
    for prefix in switch.networks:
        out.append(f"        network {prefix};")
    out += ["    }", "}"]
    return "\n".join(out) + "\n"


def render_configs(spec: FatTreeSpec) -> Dict[str, Tuple[str, str]]:
    """Render hostname -> (dialect, config-text) for the FatTree."""
    switches = _build_switches(spec)
    texts: Dict[str, Tuple[str, str]] = {}
    for i, switch in enumerate(switches):
        use_juniper = (
            spec.juniper_fraction > 0
            and (i % max(1, round(1 / spec.juniper_fraction))) == 0
        )
        if use_juniper:
            texts[switch.name] = ("juniperish", _render_juniper(switch, spec))
        else:
            texts[switch.name] = ("ciscoish", _render_cisco(switch, spec))
    return texts


def build_fattree(
    k: int,
    prefixes_per_edge: int = 1,
    max_paths: int = DEFAULT_MAX_PATHS,
    juniper_fraction: float = 0.0,
) -> Snapshot:
    """Synthesize a k-pod FatTree and return its parsed snapshot.

    The returned snapshot's topology nodes carry ``role``/``pod`` hints
    consumed by the expert partition scheme and load estimation.
    """
    spec = FatTreeSpec(
        k=k,
        prefixes_per_edge=prefixes_per_edge,
        max_paths=max_paths,
        juniper_fraction=juniper_fraction,
    )
    texts = render_configs(spec)
    configs = {
        hostname: parse_device(text, dialect)
        for hostname, (dialect, text) in texts.items()
    }
    snapshot = make_snapshot(configs, name=f"fattree-k{k}")
    _annotate(snapshot.topology)
    snapshot.metadata["k"] = str(k)
    snapshot.metadata["kind"] = "fattree"
    return snapshot


def _annotate(topology: Topology) -> None:
    """Attach role/pod/layer metadata parsed back from switch names."""
    for node in topology.nodes():
        role, _, rest = node.name.partition("-")
        node.role = role
        if role in ("edge", "agg"):
            pod_text, _, _idx = rest.partition("-")
            node.pod = int(pod_text)
            node.layer = 0 if role == "edge" else 1
        else:
            node.layer = 2


# The §4.1 per-role load estimates live with the partitioner
# (repro.dist.partition.estimate_loads), which consumes them.
