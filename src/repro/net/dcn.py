"""Synthesized hyper-scale-DCN-style network (substitute for §2.3's DCN).

The paper evaluates on a proprietary 16K-switch datacenter whose configs we
cannot obtain.  This module generates a structurally equivalent network at
configurable scale, reproducing every §2.3 trait that matters to S2:

* multi-layer Clos clusters of *different depths* (3-layer and 5-layer
  clusters coexist) joined by a fabric layer and border (backbone) routers;
* one ASN per layer (so AS paths repeat across clusters), with an
  **AS_PATH overwrite** policy on the fabric's downward exports — without
  it, cross-cluster routes are dropped by AS-path loop prevention;
* **route aggregation** at 5-layer cluster tops (layer ≥ 3): business VLAN
  and management loopback ranges are summarized ``summary-only`` and tagged
  with communities via attribute maps;
* community-based filtering at the border: backbone routers reject
  management aggregates, so loopbacks stay DC-internal;
* valley-free enforcement via a ``FROM-UP`` community set on import from
  upper layers and denied on export to upper layers;
* heterogeneous ECMP limits (16/32/64) across same-layer switches;
* a mix of the two vendor dialects with differing ``remove-private-AS``
  behaviours, plus a *legacy* cluster whose aggregation layer kept a public
  ASN — the combination that makes the VSB observable at the border;
* conditional advertisement: the default route is originated by the
  backbone only while the external prefix is present.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config.loader import Snapshot, make_snapshot, parse_device
from .addressing import AddressPlan
from .ip import Prefix, format_ip
from .topology import Topology

LINK_SPACE = Prefix.parse("100.64.0.0/10")

# Layer ASNs (private, RFC 6996) — one per layer across the whole DCN.
LAYER_ASNS = {0: 64601, 1: 64602, 2: 64603, 3: 64604, 4: 64605}
LEGACY_AGG_ASN = 3000          # public ASN kept by the legacy cluster's aggs
FABRIC_ASN = 64700
BACKBONE_ASNS = (4200, 4201)   # public border ASNs

COMM_FROM_UP = "65000:99"      # learned-from-upper-layer marker
COMM_AGG = "65000:200"         # business VLAN aggregate
COMM_MGMT = "65000:201"        # management loopback aggregate

EXTERNAL_PREFIX = Prefix.parse("8.8.8.0/24")
DEFAULT_PREFIX = Prefix.parse("0.0.0.0/0")

ECMP_CHOICES = (64, 32, 16)    # heterogeneous maximum-paths (§2.3)


@dataclass(frozen=True)
class ClusterSpec:
    """One Clos cluster: ``widths[i]`` switches at layer ``i``.

    ``aggregate`` enables VLAN/loopback summarization at the top layer
    (the paper does this at layer 3 and above, i.e. 5-layer clusters).
    ``legacy`` swaps the aggregation layer's ASN for a public one.
    """

    widths: Tuple[int, ...]
    aggregate: bool = False
    legacy: bool = False

    @property
    def depth(self) -> int:
        return len(self.widths)


@dataclass(frozen=True)
class DcnSpec:
    clusters: Tuple[ClusterSpec, ...]
    fabric_width: int = 4
    juniper_fraction: float = 0.3
    # Dual stack (§2.3: the DCN's IPv6 routes outnumber its IPv4 routes;
    # the paper's S2 is IPv4-only and lists IPv6 as future work — this
    # reproduction implements it).  When enabled, TORs announce a /64
    # business prefix and aggregating cluster tops summarize the /48.
    ipv6: bool = False

    @property
    def num_switches(self) -> int:
        return (
            sum(sum(c.widths) for c in self.clusters)
            + self.fabric_width
            + len(BACKBONE_ASNS)
        )


def default_spec(scale: int = 1) -> DcnSpec:
    """The default mixed DCN: two 3-layer clusters, one legacy 3-layer
    cluster, and one aggregating 5-layer cluster, scaled by ``scale``."""
    s = max(1, scale)
    return DcnSpec(
        clusters=(
            ClusterSpec(widths=(4 * s, 2 * s, 2)),
            ClusterSpec(widths=(4 * s, 2 * s, 2)),
            ClusterSpec(widths=(3 * s, 2 * s, 2), legacy=True),
            ClusterSpec(widths=(6 * s, 3 * s, 2 * s, 2, 2), aggregate=True),
        ),
        fabric_width=max(2, 2 * s),
    )


@dataclass
class _Neighbor:
    iface: str
    peer_addr: int
    peer_asn: int
    direction: str          # "up" | "down" | "peer"
    remove_private_as: bool = False


@dataclass
class _Device:
    name: str
    asn: int
    layer: int                         # global layer; fabric=90, backbone=99
    cluster: Optional[int]
    role: str
    dialect: str = "ciscoish"
    max_paths: int = 64
    interfaces: List[Tuple[str, int, int]] = field(default_factory=list)
    neighbors: List[_Neighbor] = field(default_factory=list)
    networks: List[Prefix] = field(default_factory=list)
    vlan_aggregate: Optional[Prefix] = None
    vlan6_aggregate: Optional[Prefix] = None
    mgmt_aggregate: Optional[Prefix] = None
    overwrite_down: bool = False       # AS_PATH overwrite on down exports
    border_filter: bool = False        # deny MGMT community on import
    conditional_default: bool = False  # advertise 0/0 while 8.8.8/24 exists
    external: bool = False             # owns the external stub prefix


def vlan_prefix(cluster: int, tor: int) -> Prefix:
    """Business prefix announced by TOR ``tor`` of ``cluster``."""
    if tor > 255 or cluster > 255:
        raise ValueError("cluster/tor index exceeds the 10/8 plan")
    return Prefix((10 << 24) | (cluster << 16) | (tor << 8), 24)


def loopback_prefix(cluster: int, tor: int) -> Prefix:
    """Management loopback of TOR ``tor`` of ``cluster``."""
    return Prefix((172 << 24) | (16 << 16) | (cluster << 8) | tor, 32)


def vlan6_prefix(cluster: int, tor: int) -> Prefix:
    """IPv6 business prefix announced by TOR ``tor`` of ``cluster``."""
    return Prefix.parse(f"2001:db8:{cluster:x}:{tor:x}::/64")


def cluster_vlan6_aggregate(cluster: int) -> Prefix:
    return Prefix.parse(f"2001:db8:{cluster:x}::/48")


def cluster_vlan_aggregate(cluster: int) -> Prefix:
    return Prefix((10 << 24) | (cluster << 16), 16)


def cluster_mgmt_aggregate(cluster: int) -> Prefix:
    return Prefix((172 << 24) | (16 << 16) | (cluster << 8), 24)


def _build_devices(spec: DcnSpec) -> List[_Device]:
    plan = AddressPlan(LINK_SPACE)
    devices: Dict[str, _Device] = {}

    def connect(lower: _Device, upper: _Device) -> None:
        """Wire a link where ``upper`` is the higher-layer device."""
        addr_low, addr_high, _prefix = plan.next_p2p()
        iface_l = f"eth{len(lower.interfaces)}"
        iface_u = f"eth{len(upper.interfaces)}"
        lower.interfaces.append((iface_l, addr_low, 31))
        upper.interfaces.append((iface_u, addr_high, 31))
        lower.neighbors.append(
            _Neighbor(iface_l, addr_high, upper.asn, "up")
        )
        upper.neighbors.append(
            _Neighbor(iface_u, addr_low, lower.asn, "down")
        )

    ecmp_counter = 0

    def pick_ecmp() -> int:
        nonlocal ecmp_counter
        ecmp_counter += 1
        return ECMP_CHOICES[ecmp_counter % len(ECMP_CHOICES)]

    # -- clusters ----------------------------------------------------------
    for c_index, cluster in enumerate(spec.clusters):
        tiers: List[List[_Device]] = []
        for layer, width in enumerate(cluster.widths):
            asn = LAYER_ASNS[layer]
            if cluster.legacy and layer == 1:
                asn = LEGACY_AGG_ASN
            tier: List[_Device] = []
            for i in range(width):
                role = "tor" if layer == 0 else f"t{layer}"
                device = _Device(
                    name=f"c{c_index}-t{layer}-{i}",
                    asn=asn,
                    layer=layer,
                    cluster=c_index,
                    role=role,
                    max_paths=pick_ecmp(),
                    # §2.3: switches overwrite the AS_PATH of routes they
                    # send *down*; with one ASN per layer, a route that
                    # went up and comes back down would otherwise be
                    # dropped by the same-layer receiver's loop check —
                    # even between two TORs of the same cluster.
                    overwrite_down=(layer >= 1),
                )
                devices[device.name] = device
                tier.append(device)
            tiers.append(tier)
        # TOR originations.
        for t, tor in enumerate(tiers[0]):
            tor.networks.append(vlan_prefix(c_index, t))
            tor.networks.append(loopback_prefix(c_index, t))
            if spec.ipv6:
                tor.networks.append(vlan6_prefix(c_index, t))
        # Full bipartite wiring between consecutive tiers.
        for layer in range(len(tiers) - 1):
            for lower in tiers[layer]:
                for upper in tiers[layer + 1]:
                    connect(lower, upper)
        # Aggregation at the cluster top (paper: layer >= 3).
        if cluster.aggregate:
            for top in tiers[-1]:
                top.vlan_aggregate = cluster_vlan_aggregate(c_index)
                top.mgmt_aggregate = cluster_mgmt_aggregate(c_index)
                if spec.ipv6:
                    top.vlan6_aggregate = cluster_vlan6_aggregate(c_index)

    # -- fabric ---------------------------------------------------------------
    fabric: List[_Device] = []
    for i in range(spec.fabric_width):
        device = _Device(
            name=f"fab-{i}",
            asn=FABRIC_ASN,
            layer=90,
            cluster=None,
            role="fabric",
            max_paths=pick_ecmp(),
            overwrite_down=True,
        )
        devices[device.name] = device
        fabric.append(device)
    for c_index, cluster in enumerate(spec.clusters):
        top_layer = cluster.depth - 1
        tops = [
            d
            for d in devices.values()
            if d.cluster == c_index and d.layer == top_layer
        ]
        for top in tops:
            for fab in fabric:
                connect(top, fab)

    # -- backbone ----------------------------------------------------------------
    backbones: List[_Device] = []
    for i, asn in enumerate(BACKBONE_ASNS):
        device = _Device(
            name=f"bb-{i}",
            asn=asn,
            layer=99,
            cluster=None,
            role="backbone",
            max_paths=64,
            border_filter=True,
            conditional_default=True,
            external=(i == 0),
        )
        devices[device.name] = device
        backbones.append(device)
        for fab in fabric:
            connect(fab, device)
    # Border peering between the two backbone routers, with the
    # remove-private-AS VSB applied on both sides.
    bb0, bb1 = backbones[0], backbones[1]
    addr_low, addr_high, _prefix = plan.next_p2p()
    iface0 = f"eth{len(bb0.interfaces)}"
    iface1 = f"eth{len(bb1.interfaces)}"
    bb0.interfaces.append((iface0, addr_low, 31))
    bb1.interfaces.append((iface1, addr_high, 31))
    bb0.neighbors.append(
        _Neighbor(iface0, addr_high, bb1.asn, "peer", remove_private_as=True)
    )
    bb1.neighbors.append(
        _Neighbor(iface1, addr_low, bb0.asn, "peer", remove_private_as=True)
    )
    # External stub on bb-0: the watch prefix for conditional default.
    if bb0.external:
        stub = f"eth{len(bb0.interfaces)}"
        bb0.interfaces.append((stub, EXTERNAL_PREFIX.network + 1, 24))
        bb0.networks.append(EXTERNAL_PREFIX)

    # -- dialect assignment -----------------------------------------------------
    # The top-of-cluster, fabric, and backbone switches stay on the
    # ciscoish dialect (attribute-maps, conditional advertisement); lower
    # layers rotate through the vendor mix.
    mixed = [
        d
        for d in devices.values()
        if d.role not in ("fabric", "backbone")
        and d.vlan_aggregate is None
    ]
    if spec.juniper_fraction > 0:
        stride = max(1, round(1 / spec.juniper_fraction))
        for i, device in enumerate(sorted(mixed, key=lambda d: d.name)):
            if i % stride == 0:
                device.dialect = "juniperish"
            elif i % stride == 1:
                # EOS-flavoured third vendor (same grammar family as the
                # ciscoish dialect, opposite remove-private-AS VSB).
                device.dialect = "aristaish"
    return list(devices.values())


# -- rendering -------------------------------------------------------------


def _policy_blocks_cisco(device: _Device) -> List[str]:
    lines: List[str] = []
    lines += [
        f"ip community-list standard CL-FROM-UP permit {COMM_FROM_UP}",
        f"ip community-list standard CL-MGMT permit {COMM_MGMT}",
        # Routes learned from an upper layer carry the FROM-UP marker and
        # a lower local-pref: together with the EXPORT-UP filter this
        # enforces valley-free routing even though the AS_PATH overwrite
        # erases path-length evidence (down-learned paths must always
        # beat up-learned ones, or ECMP ties would route traffic back up
        # and loop it through the fabric).
        "route-map IMPORT-UP permit 10",
        f" set community {COMM_FROM_UP} additive",
        " set local-preference 90",
        "route-map EXPORT-UP deny 5",
        " match community CL-FROM-UP",
        "route-map EXPORT-UP permit 10",
    ]
    if device.overwrite_down:
        lines += [
            "route-map EXPORT-DOWN permit 10",
            " set as-path replace any",
        ]
    if device.vlan_aggregate is not None:
        lines += [
            "route-map AGG-TAG permit 10",
            f" set community {COMM_AGG} additive",
            "route-map MGMT-TAG permit 10",
            f" set community {COMM_MGMT} additive",
        ]
    if device.border_filter:
        lines += [
            "route-map BORDER-IN deny 5",
            " match community CL-MGMT",
            "route-map BORDER-IN permit 10",
            # Peer-learned routes get a lower local-pref than DC-internal
            # ones.  Besides being standard border practice, this keeps the
            # control plane at a unique fixed point: without it the two
            # border routers form a BGP "disagree" gadget over each other's
            # remove-private-AS-shortened paths (the paper's multiple-
            # converged-states caveat, §7).
            "route-map PEER-IN deny 5",
            " match community CL-MGMT",
            "route-map PEER-IN permit 10",
            " set local-preference 80",
        ]
    return lines


def _render_cisco(device: _Device) -> str:
    lines = [f"hostname {device.name}", "!"]
    for iface, addr, length in device.interfaces:
        mask = format_ip(Prefix(addr, length).mask)
        lines += [
            f"interface {iface}",
            f" ip address {format_ip(addr)} {mask}",
            "!",
        ]
    lines += _policy_blocks_cisco(device)
    lines.append("!")
    lines.append(f"router bgp {device.asn}")
    # crc32, not hash(): router-ids must be stable across interpreter runs
    # (hash randomization would desynchronize multi-process workers).
    router_id = (193 << 24) | (zlib.crc32(device.name.encode()) & 0xFFFFFF)
    lines.append(f" bgp router-id {format_ip(router_id)}")
    lines.append(f" maximum-paths {device.max_paths}")
    for neighbor in device.neighbors:
        peer = format_ip(neighbor.peer_addr)
        lines.append(f" neighbor {peer} remote-as {neighbor.peer_asn}")
        if neighbor.direction == "up":
            lines.append(f" neighbor {peer} route-map IMPORT-UP in")
            lines.append(f" neighbor {peer} route-map EXPORT-UP out")
        elif neighbor.direction == "down" and device.overwrite_down:
            lines.append(f" neighbor {peer} route-map EXPORT-DOWN out")
        elif neighbor.direction == "peer":
            if device.border_filter:
                lines.append(f" neighbor {peer} route-map PEER-IN in")
            if neighbor.remove_private_as:
                lines.append(f" neighbor {peer} remove-private-as")
        if neighbor.direction == "down" and device.border_filter:
            lines.append(f" neighbor {peer} route-map BORDER-IN in")
    for prefix in device.networks:
        if prefix.is_ipv6:
            lines.append(f" network {prefix}")
        else:
            lines.append(
                f" network {format_ip(prefix.network)} "
                f"mask {format_ip(prefix.mask)}"
            )
    if device.vlan6_aggregate is not None:
        lines.append(
            f" aggregate-address {device.vlan6_aggregate} "
            f"summary-only attribute-map AGG-TAG"
        )
    if device.vlan_aggregate is not None:
        agg = device.vlan_aggregate
        lines.append(
            f" aggregate-address {format_ip(agg.network)} "
            f"{format_ip(agg.mask)} summary-only attribute-map AGG-TAG"
        )
    if device.mgmt_aggregate is not None:
        agg = device.mgmt_aggregate
        lines.append(
            f" aggregate-address {format_ip(agg.network)} "
            f"{format_ip(agg.mask)} summary-only attribute-map MGMT-TAG"
        )
    if device.conditional_default:
        lines.append(
            f" network 0.0.0.0 mask 0.0.0.0"
        )
        lines.append(
            f" advertise {DEFAULT_PREFIX} exist {EXTERNAL_PREFIX}"
        )
    lines.append("!")
    return "\n".join(lines) + "\n"


def _render_juniper(device: _Device) -> str:
    out = ["system {", f"    host-name {device.name};", "}", "interfaces {"]
    for iface, addr, length in device.interfaces:
        out += [
            f"    {iface} {{",
            "        unit 0 {",
            "            family {",
            "                inet {",
            f"                    address {format_ip(addr)}/{length};",
            "                }",
            "            }",
            "        }",
            "    }",
        ]
    out.append("}")
    out += [
        "routing-options {",
        f"    autonomous-system {device.asn};",
        "}",
    ]
    overwrite_policy = []
    if device.overwrite_down:
        overwrite_policy = [
            "    policy-statement EXPORT-DOWN {",
            "        term overwrite {",
            "            then {",
            "                as-path-replace;",
            "                accept;",
            "            }",
            "        }",
            "    }",
        ]
    out += [
        "policy-options {",
        f"    community FROM-UP members [ {COMM_FROM_UP} ];",
        *overwrite_policy,
        "    policy-statement IMPORT-UP {",
        "        term mark {",
        "            then {",
        "                community add FROM-UP;",
        "                local-preference 90;",
        "                accept;",
        "            }",
        "        }",
        "    }",
        "    policy-statement EXPORT-UP {",
        "        term no-valley {",
        "            from {",
        "                community FROM-UP;",
        "            }",
        "            then {",
        "                reject;",
        "            }",
        "        }",
        "        term rest {",
        "            then {",
        "                accept;",
        "            }",
        "        }",
        "    }",
        "}",
    ]
    out += [
        "protocols {",
        "    bgp {",
        f"        multipath {device.max_paths};",
        "        group up {",
        "            import IMPORT-UP;",
        "            export EXPORT-UP;",
    ]
    for neighbor in device.neighbors:
        if neighbor.direction != "up":
            continue
        out += [
            f"            neighbor {format_ip(neighbor.peer_addr)} {{",
            f"                peer-as {neighbor.peer_asn};",
            "            }",
        ]
    out.append("        }")
    down = [n for n in device.neighbors if n.direction != "up"]
    if down:
        out.append("        group down {")
        if device.overwrite_down:
            out.append("            export EXPORT-DOWN;")
        for neighbor in down:
            out += [
                f"            neighbor {format_ip(neighbor.peer_addr)} {{",
                f"                peer-as {neighbor.peer_asn};",
                "            }",
            ]
        out.append("        }")
    for prefix in device.networks:
        out.append(f"        network {prefix};")
    out += ["    }", "}"]
    return "\n".join(out) + "\n"


def render_configs(spec: DcnSpec) -> Dict[str, Tuple[str, str]]:
    """Render hostname -> (dialect, config-text) for the DCN."""
    devices = _build_devices(spec)
    texts: Dict[str, Tuple[str, str]] = {}
    for device in devices:
        if device.dialect == "juniperish":
            texts[device.name] = ("juniperish", _render_juniper(device))
        else:
            # the aristaish dialect shares the IOS-like grammar; the
            # dialect tag selects the parser (and therefore the VSB).
            texts[device.name] = (device.dialect, _render_cisco(device))
    return texts


def build_dcn(
    spec: Optional[DcnSpec] = None, scale: int = 1, ipv6: bool = False
) -> Snapshot:
    """Synthesize the DCN-like network and return its parsed snapshot."""
    if spec is None:
        spec = default_spec(scale)
    if ipv6 and not spec.ipv6:
        spec = DcnSpec(
            clusters=spec.clusters,
            fabric_width=spec.fabric_width,
            juniper_fraction=spec.juniper_fraction,
            ipv6=True,
        )
    texts = render_configs(spec)
    configs = {
        hostname: parse_device(text, dialect)
        for hostname, (dialect, text) in texts.items()
    }
    snapshot = make_snapshot(configs, name=f"dcn-x{scale}")
    _annotate(snapshot.topology, spec)
    snapshot.metadata["kind"] = "dcn"
    snapshot.metadata["scale"] = str(scale)
    return snapshot


def _annotate(topology: Topology, spec: DcnSpec) -> None:
    for node in topology.nodes():
        if node.name.startswith("fab-"):
            node.role, node.layer = "fabric", 90
        elif node.name.startswith("bb-"):
            node.role, node.layer = "backbone", 99
        else:
            cluster_text, layer_text, _ = node.name.split("-")
            node.cluster = int(cluster_text[1:])
            node.layer = int(layer_text[1:])
            node.role = "tor" if node.layer == 0 else f"t{node.layer}"


def tor_prefixes(snapshot: Snapshot) -> Dict[str, List[Prefix]]:
    """The VLAN prefixes announced by each TOR, keyed by hostname."""
    result: Dict[str, List[Prefix]] = {}
    for hostname, config in snapshot.configs.items():
        node = snapshot.topology.node(hostname)
        if node.role != "tor" or config.bgp is None:
            continue
        result[hostname] = [
            p for p in config.bgp.networks if p.length == 24
        ]
    return result
