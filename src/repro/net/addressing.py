"""Link address allocation shared by the network synthesizers.

Every synthesizer (FatTree, DCN, and the fuzzer's random networks) needs
the same primitive: carve sequential point-to-point /31 subnets out of a
link space.  :class:`AddressPlan` is that allocator; it hands out
``(low, high, prefix)`` triples and raises when the space is exhausted,
so an over-ambitious topology fails loudly instead of aliasing links.
"""

from __future__ import annotations

from typing import Tuple

from .ip import Prefix


class AddressPlan:
    """Sequential /31 allocator for point-to-point links."""

    def __init__(self, space: Prefix) -> None:
        self._base = space.network
        self._limit = space.broadcast
        self._next = space.network

    def next_p2p(self) -> Tuple[int, int, Prefix]:
        low = self._next
        if low + 1 > self._limit:
            raise ValueError("link address space exhausted")
        self._next += 2
        return low, low + 1, Prefix(low, 31)

    @property
    def allocated(self) -> int:
        """Number of /31s handed out so far."""
        return (self._next - self._base) // 2
