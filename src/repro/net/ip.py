"""IP address and prefix primitives (IPv4 and IPv6).

Everything in the verifier speaks addresses as plain integers wrapped in a
small frozen :class:`Prefix` value type carrying its family width (32 or
128 bits).  We avoid the standard-library ``ipaddress`` objects on the hot
paths: route computation touches millions of prefixes, and a frozen
dataclass over ints is faster and easier to reason about (hashable,
totally ordered, picklable with a tiny footprint); ``ipaddress`` is used
only to parse/format IPv6 text.

IPv6 is this reproduction's implementation of the paper's first-listed
future-work item — the paper's S2 supports IPv4 only (§7).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

MAX_IPV4 = (1 << 32) - 1
MAX_IPV6 = (1 << 128) - 1
V4 = 32
V6 = 128


class AddressError(ValueError):
    """Raised when an IPv4 address or prefix string is malformed."""


def parse_ip(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted quad.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv6(text: str) -> int:
    """Parse IPv6 text into a 128-bit integer."""
    try:
        return int(ipaddress.IPv6Address(text.strip()))
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise AddressError(f"not an IPv6 address: {text!r}") from exc


def format_ipv6(value: int) -> str:
    """Format a 128-bit integer in canonical compressed IPv6 notation."""
    if not 0 <= value <= MAX_IPV6:
        raise AddressError(f"not a 128-bit value: {value}")
    return str(ipaddress.IPv6Address(value))


def format_address(value: int, width: int = V4) -> str:
    """Format an address of either family."""
    return format_ip(value) if width == V4 else format_ipv6(value)


def mask_for(length: int, width: int = V4) -> int:
    """Return the network mask for a prefix ``length`` as an integer."""
    if not 0 <= length <= width:
        raise AddressError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    full = (1 << width) - 1
    return (full << (width - length)) & full


def mask_to_length(mask: int) -> int:
    """Convert a contiguous netmask integer to a prefix length.

    >>> mask_to_length(parse_ip("255.255.255.0"))
    24
    """
    length = bin(mask & MAX_IPV4).count("1")
    if mask_for(length) != mask:
        raise AddressError(f"non-contiguous mask: {format_ip(mask)}")
    return length


@dataclass(frozen=True, order=True)
class Prefix:
    """An IP prefix: a network address, a length, and a family width.

    ``width`` is 32 (IPv4, the default) or 128 (IPv6).  The network
    address is always stored masked, so two textual spellings of the same
    prefix compare equal.  Instances are immutable, hashable, and ordered
    (by family, network, then length), which lets RIBs keep them in sorted
    containers and lets tests compare route tables directly.
    """

    network: int
    length: int
    width: int = V4

    def __post_init__(self) -> None:
        if self.width not in (V4, V6):
            raise AddressError(f"unsupported address width: {self.width}")
        if not 0 <= self.length <= self.width:
            raise AddressError(f"prefix length out of range: {self.length}")
        masked = self.network & mask_for(self.length, self.width)
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.0.0/24"`` / ``"2001:db8::/48"`` (or a bare host
        address of either family) into a prefix."""
        text = text.strip()
        if "/" in text:
            addr_text, _, length_text = text.partition("/")
            if not length_text.isdigit():
                raise AddressError(f"bad prefix length in {text!r}")
            if ":" in addr_text:
                return cls(parse_ipv6(addr_text), int(length_text), V6)
            return cls(parse_ip(addr_text), int(length_text))
        if ":" in text:
            return cls(parse_ipv6(text), V6, V6)
        return cls(parse_ip(text), V4)

    @classmethod
    def parse_v6(cls, text: str) -> "Prefix":
        """Parse IPv6 prefix text (rejects IPv4)."""
        prefix = cls.parse(text)
        if prefix.width != V6:
            raise AddressError(f"not an IPv6 prefix: {text!r}")
        return prefix

    @classmethod
    def from_ip_mask(cls, addr: str, mask: str) -> "Prefix":
        """Build a prefix from Cisco-style ``address mask`` notation."""
        return cls(parse_ip(addr), mask_to_length(parse_ip(mask)))

    @classmethod
    def host(cls, value: int, width: int = V4) -> "Prefix":
        """A host prefix (/32 or /128) for a single address."""
        return cls(value, width, width)

    @property
    def is_ipv6(self) -> bool:
        return self.width == V6

    @property
    def mask(self) -> int:
        return mask_for(self.length, self.width)

    @property
    def broadcast(self) -> int:
        """The highest address covered by this prefix."""
        full = (1 << self.width) - 1
        return self.network | (full ^ self.mask)

    @property
    def num_addresses(self) -> int:
        return 1 << (self.width - self.length)

    def contains_ip(self, value: int) -> bool:
        """True when the address ``value`` falls inside this prefix."""
        return (value & self.mask) == self.network

    def contains(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or more specific than ``self``.

        Prefixes of different families never contain each other.
        """
        return (
            self.width == other.width
            and self.length <= other.length
            and self.contains_ip(other.network)
        )

    def overlaps(self, other: "Prefix") -> bool:
        """True when the address sets of the two prefixes intersect."""
        return self.contains(other) or other.contains(self)

    def supernet(self, new_length: int) -> "Prefix":
        """The covering prefix of ``new_length`` bits (must not be longer)."""
        if new_length > self.length:
            raise AddressError(
                f"supernet length {new_length} longer than /{self.length}"
            )
        return Prefix(
            self.network & mask_for(new_length, self.width),
            new_length,
            self.width,
        )

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the subdivision of this prefix into /``new_length`` pieces."""
        if new_length < self.length:
            raise AddressError(
                f"subnet length {new_length} shorter than /{self.length}"
            )
        step = 1 << (self.width - new_length)
        for network in range(self.network, self.broadcast + 1, step):
            yield Prefix(network, new_length, self.width)

    def bits(self) -> Tuple[int, ...]:
        """The first ``length`` bits of the network address, MSB first.

        This is the key used by the LPM trie and the BDD encoder.
        """
        top = self.width - 1
        return tuple(
            (self.network >> (top - i)) & 1 for i in range(self.length)
        )

    def __str__(self) -> str:
        return f"{format_address(self.network, self.width)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


def summarize(prefixes: List[Prefix]) -> List[Prefix]:
    """Collapse a list of prefixes into a minimal covering list.

    Removes prefixes already covered by another entry and merges adjacent
    sibling prefixes bottom-up.  Used by route aggregation when deciding
    which contributors an aggregate suppresses.
    """
    work = sorted(set(prefixes))
    # Drop entries covered by an earlier (shorter or equal) prefix.
    kept: List[Prefix] = []
    for prefix in work:
        if not any(other.contains(prefix) for other in kept):
            kept.append(prefix)
    # Merge sibling pairs until a fixed point.
    merged = True
    while merged:
        merged = False
        kept.sort()
        result: List[Prefix] = []
        i = 0
        while i < len(kept):
            current = kept[i]
            if (
                i + 1 < len(kept)
                and current.width == kept[i + 1].width
                and current.length == kept[i + 1].length
                and current.length > 0
                and current.supernet(current.length - 1)
                == kept[i + 1].supernet(current.length - 1)
            ):
                result.append(current.supernet(current.length - 1))
                merged = True
                i += 2
            else:
                result.append(current)
                i += 1
        kept = result
    return kept
