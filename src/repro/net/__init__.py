"""Network primitives and topology synthesizers.

Only the dependency-free primitives are re-exported here; the synthesizers
(`repro.net.fattree`, `repro.net.dcn`) sit above the config layer and are
imported by their full module path (or via :mod:`repro.core`) to keep the
package import graph acyclic.
"""

from .ip import AddressError, Prefix, format_ip, parse_ip, summarize  # noqa: F401
from .topology import (  # noqa: F401
    Interface,
    InterfaceRef,
    Link,
    Topology,
    TopologyNode,
)
