"""Network topology model: nodes, interfaces, and point-to-point links.

The topology is the substrate every later stage consumes: the partitioner
cuts it into segments, the control plane walks its adjacencies to form BGP
sessions, and the data plane forwards symbolic packets along its links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .ip import Prefix, format_ip


@dataclass(frozen=True)
class InterfaceRef:
    """A (node, interface-name) endpoint of a link."""

    node: str
    interface: str

    def __str__(self) -> str:
        return f"{self.node}[{self.interface}]"


@dataclass(frozen=True)
class Link:
    """An undirected point-to-point link between two interfaces."""

    a: InterfaceRef
    b: InterfaceRef

    def other(self, node: str) -> InterfaceRef:
        """The endpoint on the far side of ``node``."""
        if self.a.node == node:
            return self.b
        if self.b.node == node:
            return self.a
        raise KeyError(f"{node} is not an endpoint of {self}")

    def local(self, node: str) -> InterfaceRef:
        """The endpoint on ``node``'s side."""
        if self.a.node == node:
            return self.a
        if self.b.node == node:
            return self.b
        raise KeyError(f"{node} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.a} <-> {self.b}"


@dataclass
class Interface:
    """A configured interface: an address within a (usually /31) subnet."""

    name: str
    address: int
    prefix: Prefix

    @property
    def address_text(self) -> str:
        return format_ip(self.address)


@dataclass
class TopologyNode:
    """A device in the topology, with its interfaces and metadata.

    ``role`` and ``pod``/``layer`` are synthesizer hints used by the expert
    partition scheme and by load estimation; they are optional for parsed
    real-world snapshots.
    """

    name: str
    interfaces: Dict[str, Interface] = field(default_factory=dict)
    role: str = "unknown"
    pod: Optional[int] = None
    layer: Optional[int] = None
    cluster: Optional[int] = None

    def add_interface(self, interface: Interface) -> None:
        if interface.name in self.interfaces:
            raise ValueError(
                f"duplicate interface {interface.name} on {self.name}"
            )
        self.interfaces[interface.name] = interface


class Topology:
    """An undirected multigraph of :class:`TopologyNode` joined by links."""

    def __init__(self) -> None:
        self._nodes: Dict[str, TopologyNode] = {}
        self._links: List[Link] = []
        self._adjacency: Dict[str, List[Link]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: TopologyNode) -> TopologyNode:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name}")
        self._nodes[node.name] = node
        self._adjacency[node.name] = []
        return node

    def add_link(self, a: InterfaceRef, b: InterfaceRef) -> Link:
        for ref in (a, b):
            if ref.node not in self._nodes:
                raise KeyError(f"unknown node {ref.node}")
            if ref.interface not in self._nodes[ref.node].interfaces:
                raise KeyError(f"unknown interface {ref}")
        link = Link(a, b)
        self._links.append(link)
        self._adjacency[a.node].append(link)
        self._adjacency[b.node].append(link)
        return link

    # -- queries ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> TopologyNode:
        return self._nodes[name]

    def nodes(self) -> Iterator[TopologyNode]:
        return iter(self._nodes.values())

    def node_names(self) -> List[str]:
        return list(self._nodes)

    def links(self) -> Iterator[Link]:
        return iter(self._links)

    def links_of(self, name: str) -> List[Link]:
        return list(self._adjacency[name])

    def neighbors(self, name: str) -> List[str]:
        """Names of nodes adjacent to ``name`` (with multiplicity removed)."""
        seen: Set[str] = set()
        result: List[str] = []
        for link in self._adjacency[name]:
            other = link.other(name).node
            if other not in seen:
                seen.add(other)
                result.append(other)
        return result

    def degree(self, name: str) -> int:
        return len(self._adjacency[name])

    def link_between(self, a: str, b: str) -> Optional[Link]:
        """The first link joining nodes ``a`` and ``b``, if any."""
        for link in self._adjacency[a]:
            if link.other(a).node == b:
                return link
        return None

    def edge_list(self) -> List[Tuple[str, str]]:
        """Links as (node, node) name pairs; used by the partitioner."""
        return [(link.a.node, link.b.node) for link in self._links]

    def interface_address(self, ref: InterfaceRef) -> int:
        return self._nodes[ref.node].interfaces[ref.interface].address

    def subgraph_nodes(self, names: Iterable[str]) -> "Topology":
        """A new topology restricted to ``names`` and the links among them."""
        wanted = set(names)
        sub = Topology()
        for name in wanted:
            original = self._nodes[name]
            clone = TopologyNode(
                name=original.name,
                interfaces=dict(original.interfaces),
                role=original.role,
                pod=original.pod,
                layer=original.layer,
                cluster=original.cluster,
            )
            sub.add_node(clone)
        for link in self._links:
            if link.a.node in wanted and link.b.node in wanted:
                sub.add_link(link.a, link.b)
        return sub

    def is_connected(self) -> bool:
        """True when every node is reachable from the first node."""
        names = self.node_names()
        if not names:
            return True
        seen = {names[0]}
        frontier = [names[0]]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(names)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        Every link endpoint must exist, and the two ends of a link must sit
        in the same subnet (the synthesizers always produce /31 links, but
        parsed snapshots may use /30 or larger).
        """
        for link in self._links:
            ia = self._nodes[link.a.node].interfaces[link.a.interface]
            ib = self._nodes[link.b.node].interfaces[link.b.interface]
            if ia.prefix != ib.prefix:
                raise ValueError(
                    f"link {link} endpoints in different subnets: "
                    f"{ia.prefix} vs {ib.prefix}"
                )
