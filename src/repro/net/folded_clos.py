"""Synthesized multi-DC folded-Clos networks.

``build_folded_clos(...)`` produces a parameterized folded Clos: each
datacenter is a set of pods (leaf ↔ spine full bipartite), spines fold
upward into per-plane super-spine groups, and the super-spines of the
same plane are meshed across datacenters.  Like the FatTree and DCN
synthesizers, it emits *vendor config text* (both dialects) and pushes
it through the real parsers, runs eBGP with a unique ASN per switch,
and allocates /31 link subnets from the shared
:class:`~repro.net.addressing.AddressPlan`.

The family exists to give the ground-truth oracle a topology shape the
FatTree/DCN pair does not cover: three tiers of ECMP fanout *plus*
inter-DC paths whose lengths differ from intra-DC ones, with leaf
prefixes and management loopbacks that must stay unique across
datacenters.

Wiring, per datacenter:

* every pod is a full bipartite leaf ↔ spine graph;
* spine ``j`` of every pod belongs to *plane* ``j`` and connects to all
  ``fanout`` super-spines of that plane (so there are
  ``spines × fanout`` super-spines per DC);
* super-spine ``s`` of plane ``j`` peers with super-spine ``s`` of the
  same plane in every other DC (a per-plane full mesh across DCs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config.loader import Snapshot, make_snapshot, parse_device
from .addressing import AddressPlan
from .ip import Prefix, format_ip
from .topology import Topology

LINK_SPACE = Prefix.parse("100.64.0.0/10")
LOOPBACK_SPACE = Prefix.parse("172.16.0.0/16")
ASN_BASE = 5000
DEFAULT_MAX_PATHS = 64


@dataclass(frozen=True)
class FoldedClosSpec:
    """Parameters of a synthesized multi-DC folded Clos."""

    dcs: int = 2                   # number of datacenters
    pods: int = 2                  # pods per DC
    leaves: int = 2                # leaf switches per pod
    spines: int = 2                # spine switches per pod (= planes)
    fanout: int = 1                # super-spines per plane
    prefixes_per_leaf: int = 1     # host /24s announced by each leaf
    max_paths: int = DEFAULT_MAX_PATHS
    juniper_fraction: float = 0.0  # fraction of switches on the 2nd dialect

    def __post_init__(self) -> None:
        for name in ("dcs", "pods", "leaves", "spines", "fanout"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.dcs * self.pods > 255:
            raise ValueError("dcs x pods must fit the 10/8 prefix plan")
        if self.leaves * self.prefixes_per_leaf > 256:
            raise ValueError("too many host prefixes per pod for 10/8 plan")
        if self.num_devices > LOOPBACK_SPACE.num_addresses:
            raise ValueError("device count exceeds the loopback /16 plan")

    # -- derived sizes (the structural invariants the tests pin down) -----

    @property
    def super_spines_per_dc(self) -> int:
        return self.spines * self.fanout

    @property
    def devices_per_dc(self) -> int:
        return (
            self.pods * (self.leaves + self.spines)
            + self.super_spines_per_dc
        )

    @property
    def num_devices(self) -> int:
        return self.dcs * self.devices_per_dc

    @property
    def links_per_dc(self) -> int:
        pod_links = self.pods * self.leaves * self.spines
        up_links = self.pods * self.spines * self.fanout
        return pod_links + up_links

    @property
    def inter_dc_links(self) -> int:
        mesh_pairs = self.dcs * (self.dcs - 1) // 2
        return mesh_pairs * self.super_spines_per_dc

    @property
    def num_links(self) -> int:
        return self.dcs * self.links_per_dc + self.inter_dc_links

    @property
    def num_prefixes(self) -> int:
        return self.dcs * self.pods * self.leaves * self.prefixes_per_leaf


@dataclass
class _Switch:
    name: str
    asn: int
    role: str                      # "leaf" | "spine" | "superspine"
    dc: int
    pod: Optional[int]
    plane: Optional[int]
    interfaces: List[Tuple[str, int, int]]  # (name, address, prefix-length)
    neighbors: List[Tuple[str, int, int]]   # (iface, peer-addr, peer-asn)
    networks: List[Prefix]


def leaf_prefix(spec: FoldedClosSpec, dc: int, pod: int, leaf: int,
                index: int = 0) -> Prefix:
    """Host prefix ``index`` of a leaf: 10.<dc*pods+pod>.<leaf*n+index>.0/24.

    The second octet folds the DC in, so prefixes stay unique across
    datacenters by construction.
    """
    second = dc * spec.pods + pod
    third = leaf * spec.prefixes_per_leaf + index
    return Prefix((10 << 24) | (second << 16) | (third << 8), 24)


def _build_switches(spec: FoldedClosSpec) -> List[_Switch]:
    plan = AddressPlan(LINK_SPACE)
    switches: Dict[str, _Switch] = {}
    asn = ASN_BASE
    loopback_index = 0

    def new_switch(
        name: str, role: str, dc: int,
        pod: Optional[int], plane: Optional[int],
    ) -> _Switch:
        nonlocal asn, loopback_index
        switch = _Switch(
            name=name,
            asn=asn,
            role=role,
            dc=dc,
            pod=pod,
            plane=plane,
            interfaces=[],
            neighbors=[],
            networks=[Prefix(LOOPBACK_SPACE.network + loopback_index, 32)],
        )
        asn += 1
        loopback_index += 1
        switches[name] = switch
        return switch

    for dc in range(spec.dcs):
        for pod in range(spec.pods):
            for i in range(spec.leaves):
                leaf = new_switch(f"dc{dc}-leaf-{pod}-{i}", "leaf", dc, pod, None)
                for p in range(spec.prefixes_per_leaf):
                    leaf.networks.append(leaf_prefix(spec, dc, pod, i, p))
            for j in range(spec.spines):
                new_switch(f"dc{dc}-spine-{pod}-{j}", "spine", dc, pod, j)
        for j in range(spec.spines):
            for s in range(spec.fanout):
                new_switch(
                    f"dc{dc}-ss-{j}-{s}", "superspine", dc, None, j
                )

    def connect(a: _Switch, b: _Switch) -> None:
        addr_a, addr_b, _prefix = plan.next_p2p()
        iface_a = f"eth{len(a.interfaces)}"
        iface_b = f"eth{len(b.interfaces)}"
        a.interfaces.append((iface_a, addr_a, 31))
        b.interfaces.append((iface_b, addr_b, 31))
        a.neighbors.append((iface_a, addr_b, b.asn))
        b.neighbors.append((iface_b, addr_a, a.asn))

    for dc in range(spec.dcs):
        # Pod wiring: full bipartite leaf <-> spine.
        for pod in range(spec.pods):
            for i in range(spec.leaves):
                for j in range(spec.spines):
                    connect(
                        switches[f"dc{dc}-leaf-{pod}-{i}"],
                        switches[f"dc{dc}-spine-{pod}-{j}"],
                    )
        # Fold: spine j of every pod to all super-spines of plane j.
        for pod in range(spec.pods):
            for j in range(spec.spines):
                for s in range(spec.fanout):
                    connect(
                        switches[f"dc{dc}-spine-{pod}-{j}"],
                        switches[f"dc{dc}-ss-{j}-{s}"],
                    )
    # Inter-DC: per-plane mesh between same-index super-spines.
    for j in range(spec.spines):
        for s in range(spec.fanout):
            for dc_a in range(spec.dcs):
                for dc_b in range(dc_a + 1, spec.dcs):
                    connect(
                        switches[f"dc{dc_a}-ss-{j}-{s}"],
                        switches[f"dc{dc_b}-ss-{j}-{s}"],
                    )
    return list(switches.values())


def _render_cisco(switch: _Switch, spec: FoldedClosSpec) -> str:
    lines = [f"hostname {switch.name}", "!"]
    for iface, addr, length in switch.interfaces:
        mask = format_ip(Prefix(addr, length).mask)
        lines += [
            f"interface {iface}",
            f" ip address {format_ip(addr)} {mask}",
            "!",
        ]
    lines.append(f"router bgp {switch.asn}")
    lines.append(f" bgp router-id {format_ip((192 << 24) | switch.asn)}")
    lines.append(f" maximum-paths {spec.max_paths}")
    for _iface, peer_addr, peer_asn in switch.neighbors:
        lines.append(f" neighbor {format_ip(peer_addr)} remote-as {peer_asn}")
    for prefix in switch.networks:
        lines.append(
            f" network {format_ip(prefix.network)} mask {format_ip(prefix.mask)}"
        )
    lines.append("!")
    return "\n".join(lines) + "\n"


def _render_juniper(switch: _Switch, spec: FoldedClosSpec) -> str:
    out = [
        "system {",
        f"    host-name {switch.name};",
        "}",
        "interfaces {",
    ]
    for iface, addr, length in switch.interfaces:
        out += [
            f"    {iface} {{",
            "        unit 0 {",
            "            family {",
            "                inet {",
            f"                    address {format_ip(addr)}/{length};",
            "                }",
            "            }",
            "        }",
            "    }",
        ]
    out.append("}")
    out += [
        "routing-options {",
        f"    router-id {format_ip((192 << 24) | switch.asn)};",
        f"    autonomous-system {switch.asn};",
        "}",
        "protocols {",
        "    bgp {",
        f"        multipath {spec.max_paths};",
        "        group fabric {",
    ]
    for _iface, peer_addr, peer_asn in switch.neighbors:
        out += [
            f"            neighbor {format_ip(peer_addr)} {{",
            f"                peer-as {peer_asn};",
            "            }",
        ]
    out.append("        }")
    for prefix in switch.networks:
        out.append(f"        network {prefix};")
    out += ["    }", "}"]
    return "\n".join(out) + "\n"


def render_configs(spec: FoldedClosSpec) -> Dict[str, Tuple[str, str]]:
    """Render hostname -> (dialect, config-text) for the folded Clos."""
    switches = _build_switches(spec)
    texts: Dict[str, Tuple[str, str]] = {}
    for i, switch in enumerate(switches):
        use_juniper = (
            spec.juniper_fraction > 0
            and (i % max(1, round(1 / spec.juniper_fraction))) == 0
        )
        if use_juniper:
            texts[switch.name] = ("juniperish", _render_juniper(switch, spec))
        else:
            texts[switch.name] = ("ciscoish", _render_cisco(switch, spec))
    return texts


def build_folded_clos(
    dcs: int = 2,
    pods: int = 2,
    leaves: int = 2,
    spines: int = 2,
    fanout: int = 1,
    prefixes_per_leaf: int = 1,
    max_paths: int = DEFAULT_MAX_PATHS,
    juniper_fraction: float = 0.0,
) -> Snapshot:
    """Synthesize a multi-DC folded Clos and return its parsed snapshot."""
    spec = FoldedClosSpec(
        dcs=dcs,
        pods=pods,
        leaves=leaves,
        spines=spines,
        fanout=fanout,
        prefixes_per_leaf=prefixes_per_leaf,
        max_paths=max_paths,
        juniper_fraction=juniper_fraction,
    )
    texts = render_configs(spec)
    configs = {
        hostname: parse_device(text, dialect)
        for hostname, (dialect, text) in texts.items()
    }
    snapshot = make_snapshot(configs, name=f"folded-clos-d{dcs}")
    _annotate(snapshot.topology)
    snapshot.metadata["kind"] = "folded-clos"
    snapshot.metadata["dcs"] = str(dcs)
    snapshot.metadata["pods"] = str(pods)
    return snapshot


def _annotate(topology: Topology) -> None:
    """Attach role/dc/pod/layer metadata parsed back from switch names.

    The DC index rides in the node's ``cluster`` field (the partitioner's
    generic grouping hint, used the same way by the DCN synthesizer).
    """
    for node in topology.nodes():
        dc_text, role, *rest = node.name.split("-")
        node.cluster = int(dc_text[2:])
        if role == "leaf":
            node.role, node.layer = "leaf", 0
            node.pod = int(rest[0])
        elif role == "spine":
            node.role, node.layer = "spine", 1
            node.pod = int(rest[0])
        else:
            node.role, node.layer = "superspine", 2
