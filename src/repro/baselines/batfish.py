"""The Batfish baseline: monolithic verification on one logical server.

This wraps the same switch models and DPV substrate S2 uses, but runs
everything inside one process with one memory budget and one BDD engine —
the configuration the paper compares against.  Optional prefix sharding
reproduces the "Batfish + prefix sharding" series of Figure 4 and the
FatTree50/60 FIB generation of Figure 10.

Resource semantics match the S2 workers: candidate routes and BDD nodes
are charged against a single logical server's capacity; exceeding it
raises :class:`~repro.dist.resources.SimulatedOOM` — the baseline's OOMs
in Figures 4, 5, and 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..bdd.headerspace import HeaderEncoding
from ..config.loader import Snapshot
from ..dataplane.queries import PropertyChecker, Query, ReachabilityResult
from ..dataplane.verifier import DataPlaneVerifier
from ..dist.resources import (
    DEFAULT_WORKER_CAPACITY,
    CostModel,
    WorkerResources,
)
from ..dist.sharding import PrefixShard, make_shards
from ..net.ip import Prefix
from ..routing.engine import BgpResult, SimulationEngine


@dataclass
class BatfishStats:
    bgp_rounds: int = 0
    shards_run: int = 0
    cp_modeled_time: float = 0.0
    dp_predicate_modeled_time: float = 0.0
    dp_forward_modeled_time: float = 0.0
    cp_seconds: float = 0.0
    dp_seconds: float = 0.0

    @property
    def modeled_total(self) -> float:
        return (
            self.cp_modeled_time
            + self.dp_predicate_modeled_time
            + self.dp_forward_modeled_time
        )


class BatfishVerifier:
    """Single-logical-server simulation + verification baseline."""

    def __init__(
        self,
        snapshot: Snapshot,
        num_shards: int = 0,
        capacity: int = DEFAULT_WORKER_CAPACITY,
        cost_model: Optional[CostModel] = None,
        encoding: Optional[HeaderEncoding] = None,
        node_limit: int = 1 << 24,
        max_rounds: int = 200,
        max_hops: int = 24,
        enforce_memory: bool = True,
        seed: int = 7,
    ) -> None:
        self.snapshot = snapshot
        self.num_shards = num_shards
        self.encoding = encoding or HeaderEncoding()
        self.node_limit = node_limit
        self.max_hops = max_hops
        self.resources = WorkerResources(
            name="batfish",
            capacity=capacity if enforce_memory else (1 << 62),
            model=cost_model or CostModel(),
        )
        self.resources.node_count = len(snapshot.configs)
        self.engine = SimulationEngine(snapshot, max_rounds=max_rounds)
        self.stats = BatfishStats()
        self.seed = seed
        self._routes: Optional[BgpResult] = None
        self._dpv: Optional[DataPlaneVerifier] = None
        self._fib_entries = 0

    # -- control plane -----------------------------------------------------

    def run_control_plane(self) -> BgpResult:
        """Simulate OSPF + BGP on the single server, with memory checks
        after every round (via a stats-diff hook into the engine)."""
        if self._routes is not None:
            return self._routes
        started = time.perf_counter()
        shards: Optional[List[PrefixShard]] = None
        if self.num_shards and self.num_shards > 1:
            shards = make_shards(self.snapshot, self.num_shards, seed=self.seed)
        self.engine.run_ospf()
        merged: BgpResult = {name: {} for name in self.snapshot.configs}
        for shard in shards or [None]:
            prefixes = frozenset(shard.prefixes) if shard is not None else None
            result = self._run_shard(prefixes)
            for hostname, routes in result.items():
                merged[hostname].update(routes)
            if shard is not None:
                self.resources.charge_shard_overhead()
                self.stats.cp_modeled_time += (
                    self.resources.model.shard_overhead
                )
            self.stats.shards_run += 1
        self.stats.cp_seconds = time.perf_counter() - started
        self._routes = merged
        return merged

    def _run_shard(self, prefixes: Optional[FrozenSet[Prefix]]) -> BgpResult:
        """One shard's fixed point with per-round resource accounting."""
        engine = self.engine
        for node in engine.nodes.values():
            node.begin_shard(prefixes)
        for round_token in range(engine.max_rounds):
            changed = False
            updates = 0
            for node in engine.nodes.values():
                changed |= node.pull_round(engine._bgp_resolver, round_token)
                updates += node.route_count()
            candidates = sum(
                node.route_count() for node in engine.nodes.values()
            )
            self.resources.update_memory(candidates, bdd_nodes=0)
            self.stats.cp_modeled_time += self.resources.charge_route_round(
                updates
            )
            self.stats.bgp_rounds += 1
            if not changed:
                break
        result: BgpResult = {}
        for hostname, node in engine.nodes.items():
            result[hostname] = node.finish_shard()
            node.begin_shard(frozenset())
        return result

    # -- data plane --------------------------------------------------------------

    def build_data_plane(self) -> DataPlaneVerifier:
        if self._dpv is not None:
            return self._dpv
        routes = self.run_control_plane()
        started = time.perf_counter()
        dpv = DataPlaneVerifier.from_simulation(
            self.engine,
            routes,
            encoding=self.encoding,
            node_limit=self.node_limit,
            max_hops=self.max_hops,
        )
        ops_before = dpv.engine.ops
        dpv.compile_predicates()
        # The DP phase holds compiled FIBs and the BDD table; the RIB
        # candidates were flushed when the control plane finished.
        self._fib_entries = sum(len(fib) for fib in dpv.fibs.values())
        self.resources.update_memory(
            0, dpv.engine.node_count, fib_entries=self._fib_entries
        )
        self.stats.dp_predicate_modeled_time += self.resources.charge_bdd_ops(
            dpv.engine.ops - ops_before
        )
        self.stats.dp_seconds += time.perf_counter() - started
        self._dpv = dpv
        return dpv

    def checker(self) -> PropertyChecker:
        dpv = self.build_data_plane()
        return PropertyChecker(
            dpv.engine,
            dpv.encoding,
            self._timed_forward,
            install_waypoints=dpv.install_waypoints,
        )

    def _timed_forward(self, sources, header_bdd, trace=False):
        dpv = self.build_data_plane()
        started = time.perf_counter()
        ops_before = dpv.engine.ops
        finals = dpv.forward(sources, header_bdd, trace)
        self.resources.update_memory(
            0, dpv.engine.node_count, fib_entries=self._fib_entries
        )
        self.stats.dp_forward_modeled_time += self.resources.charge_bdd_ops(
            dpv.engine.ops - ops_before
        )
        self.stats.dp_seconds += time.perf_counter() - started
        return finals

    # -- convenience --------------------------------------------------------------

    def prefix_holders(self) -> List[str]:
        return [
            hostname
            for hostname, config in sorted(self.snapshot.configs.items())
            if config.bgp is not None and config.bgp.networks
        ]

    def all_pair_reachability(self) -> ReachabilityResult:
        holders = self.prefix_holders()
        query = Query(sources=tuple(holders), destinations=tuple(holders))
        return self.checker().check_reachability(query)

    def total_route_count(self) -> int:
        routes = self.run_control_plane()
        return sum(
            len(ecmp)
            for node_routes in routes.values()
            for ecmp in node_routes.values()
        )
