"""The Bonsai baseline: per-destination control-plane compression (§5.4).

Bonsai (Beckett et al., SIGCOMM 2018) compresses a network so that route
computation on the abstraction agrees with the concrete network for a
fixed destination.  For a synthesized FatTree and one destination prefix,
the quotient has exactly six nodes (the paper's footnote 3):

1. the destination edge switch,
2. an aggregation switch in the destination pod,
3. another edge switch in the destination pod,
4. one core switch,
5. an aggregation switch in a different pod,
6. an edge switch in that different pod.

To check all-pair reachability, the verifier compresses per destination
prefix and simulates each compressed instance (in parallel across the
logical server's cores).  This reproduces the Figure 5 profile: memory
stays flat (every instance is 6 nodes) but total compute grows with the
destination count × the per-destination compression cost (which scans the
whole topology), so Bonsai outscales Batfish yet times out on hyper-scale
FatTrees — it is compute-bound, not memory-bound.

Like the paper's setup, the compression step here is FatTree-specific
(a wildcard destination defeats it, which is why the paper runs Bonsai
per-prefix in the first place).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config.loader import Snapshot, make_snapshot, parse_device
from ..dist.resources import (
    DEFAULT_WORKER_CAPACITY,
    CostModel,
    WorkerResources,
)
from ..net.ip import Prefix, format_ip
from ..obs.tracer import stopwatch
from ..routing.engine import SimulationEngine


#: Modeled cost multiplier of computing one destination's abstraction.
#: Bonsai's compression interprets the full configuration of every device
#: (BDD-based abstract interpretation), far costlier per topology element
#: than one route-exchange step; this constant puts its per-destination
#: cost on the same scale as the other verifiers' modeled units.
COMPRESSION_COST_FACTOR = 300.0


class BonsaiTimeout(RuntimeError):
    """The modeled verification time exceeded the budget (§5.4)."""


class CompressionError(RuntimeError):
    """The topology does not admit the 6-node FatTree quotient."""


@dataclass
class BonsaiStats:
    destinations_checked: int = 0
    compression_modeled_time: float = 0.0
    simulation_modeled_time: float = 0.0
    measured_seconds: float = 0.0

    @property
    def modeled_total(self) -> float:
        return self.compression_modeled_time + self.simulation_modeled_time


@dataclass(frozen=True)
class QuotientClasses:
    """The six abstraction classes for one destination."""

    dest_edge: str
    same_pod_agg: str
    same_pod_edge: str
    core: str
    other_pod_agg: str
    other_pod_edge: str

    def members(self) -> Tuple[str, ...]:
        return (
            self.dest_edge,
            self.same_pod_agg,
            self.same_pod_edge,
            self.core,
            self.other_pod_agg,
            self.other_pod_edge,
        )


class BonsaiVerifier:
    """Per-destination compression + simulation over a FatTree snapshot."""

    def __init__(
        self,
        snapshot: Snapshot,
        capacity: int = DEFAULT_WORKER_CAPACITY,
        cost_model: Optional[CostModel] = None,
        time_budget: Optional[float] = None,
    ) -> None:
        if snapshot.metadata.get("kind") != "fattree":
            raise CompressionError(
                "the 6-node quotient requires a synthesized FatTree"
            )
        self.snapshot = snapshot
        self.resources = WorkerResources(
            name="bonsai",
            capacity=capacity,
            model=cost_model or CostModel(),
        )
        self.time_budget = time_budget
        self.stats = BonsaiStats()
        self._topology_size = len(snapshot.configs) + sum(
            1 for _ in snapshot.topology.links()
        )

    # -- compression --------------------------------------------------------

    def destinations(self) -> List[Tuple[str, Prefix]]:
        """(edge switch, announced prefix) pairs, one per destination."""
        result = []
        for hostname, config in sorted(self.snapshot.configs.items()):
            if config.bgp is None:
                continue
            for prefix in config.bgp.networks:
                result.append((hostname, prefix))
        return result

    def compress(self, dest_edge: str) -> QuotientClasses:
        """Select the six representatives for ``dest_edge``.

        This walks the real topology metadata — the modeled compression
        *cost* charged per destination is proportional to the concrete
        topology size, which is what makes Bonsai compute-bound at scale.
        """
        topology = self.snapshot.topology
        dest = topology.node(dest_edge)
        if dest.role != "edge" or dest.pod is None:
            raise CompressionError(f"{dest_edge} is not an edge switch")
        same_pod_agg = same_pod_edge = core = None
        other_pod_agg = other_pod_edge = None
        for node in sorted(topology.nodes(), key=lambda n: n.name):
            if node.role == "agg" and node.pod == dest.pod:
                same_pod_agg = same_pod_agg or node.name
            elif node.role == "edge" and node.pod == dest.pod:
                if node.name != dest_edge:
                    same_pod_edge = same_pod_edge or node.name
            elif node.role == "agg" and node.pod != dest.pod:
                other_pod_agg = other_pod_agg or node.name
            elif node.role == "edge" and node.pod != dest.pod:
                other_pod_edge = other_pod_edge or node.name
        if same_pod_agg is not None:
            core = next(
                (
                    n
                    for n in sorted(topology.neighbors(same_pod_agg))
                    if topology.node(n).role == "core"
                ),
                None,
            )
            # The quotient's other-pod agg must attach to the same core.
            if core is not None:
                other_pod_agg = next(
                    (
                        n
                        for n in sorted(topology.neighbors(core))
                        if topology.node(n).pod != dest.pod
                    ),
                    other_pod_agg,
                )
                if other_pod_agg is not None:
                    other_pod_edge = next(
                        (
                            n
                            for n in sorted(topology.neighbors(other_pod_agg))
                            if topology.node(n).role == "edge"
                        ),
                        other_pod_edge,
                    )
        classes = QuotientClasses(
            dest_edge=dest_edge,
            same_pod_agg=same_pod_agg or "",
            same_pod_edge=same_pod_edge or "",
            core=core or "",
            other_pod_agg=other_pod_agg or "",
            other_pod_edge=other_pod_edge or "",
        )
        if not all(classes.members()):
            raise CompressionError(
                f"could not form the 6-node quotient for {dest_edge} "
                f"(k must be >= 4)"
            )
        return classes

    def build_quotient(self, classes: QuotientClasses, prefix: Prefix) -> Snapshot:
        """A 6-node snapshot: the representatives re-wired as a minimal
        FatTree slice, with only the destination prefix announced."""
        nodes = classes.members()
        asn = {name: 65000 + i for i, name in enumerate(nodes)}
        links = [
            (classes.dest_edge, classes.same_pod_agg),
            (classes.same_pod_edge, classes.same_pod_agg),
            (classes.same_pod_agg, classes.core),
            (classes.core, classes.other_pod_agg),
            (classes.other_pod_agg, classes.other_pod_edge),
        ]
        iface_count = {name: 0 for name in nodes}
        sessions: Dict[str, List[Tuple[int, int, int]]] = {
            name: [] for name in nodes
        }
        base = Prefix.parse("100.127.0.0/16").network
        for index, (a, b) in enumerate(links):
            addr_a = base + 2 * index
            addr_b = addr_a + 1
            sessions[a].append((addr_a, addr_b, asn[b]))
            sessions[b].append((addr_b, addr_a, asn[a]))
        texts = {}
        for name in nodes:
            lines = [f"hostname {name}", "!"]
            for i, (local, _peer, _pasn) in enumerate(sessions[name]):
                mask = format_ip(Prefix(local, 31).mask)
                lines += [
                    f"interface eth{i}",
                    f" ip address {format_ip(local)} {mask}",
                    "!",
                ]
            lines.append(f"router bgp {asn[name]}")
            lines.append(" maximum-paths 64")
            for local, peer, peer_asn in sessions[name]:
                lines.append(
                    f" neighbor {format_ip(peer)} remote-as {peer_asn}"
                )
            if name == classes.dest_edge:
                lines.append(
                    f" network {format_ip(prefix.network)} "
                    f"mask {format_ip(prefix.mask)}"
                )
            lines.append("!")
            texts[name] = "\n".join(lines) + "\n"
        configs = {
            name: parse_device(text, "ciscoish")
            for name, text in texts.items()
        }
        return make_snapshot(configs, name=f"bonsai-{classes.dest_edge}")

    # -- verification ----------------------------------------------------------

    def check_destination(self, dest_edge: str, prefix: Prefix) -> bool:
        """Compress, simulate, and check that every abstract node can
        reach the destination prefix.  Returns True when reachable."""
        clock = stopwatch()
        classes = self.compress(dest_edge)
        # Model: the abstraction pass interprets the concrete topology once.
        compression_cost = (
            self._topology_size
            * COMPRESSION_COST_FACTOR
            / self.resources.model.cores_per_worker
        )
        self.stats.compression_modeled_time += compression_cost
        quotient = self.build_quotient(classes, prefix)
        engine = SimulationEngine(quotient)
        routes = engine.run()
        simulation_cost = (
            engine.stats.work_units
            * self.resources.model.route_update_cost
            / self.resources.model.cores_per_worker
        )
        self.stats.simulation_modeled_time += simulation_cost
        self.resources.update_memory(
            candidate_routes=engine.stats.peak_candidate_routes,
            bdd_nodes=0,
        )
        self.resources.modeled_time += compression_cost + simulation_cost
        self.stats.destinations_checked += 1
        self.stats.measured_seconds += clock.seconds
        if (
            self.time_budget is not None
            and self.stats.modeled_total > self.time_budget
        ):
            raise BonsaiTimeout(
                f"modeled time {self.stats.modeled_total:.0f} exceeded "
                f"budget {self.time_budget:.0f} after "
                f"{self.stats.destinations_checked} destinations"
            )
        # Reachable iff every non-destination abstract node selected a
        # route for the prefix.
        for name in classes.members():
            if name == dest_edge:
                continue
            if prefix not in routes.get(name, {}):
                return False
        return True

    def check_all_destinations(self) -> Dict[Tuple[str, Prefix], bool]:
        """All-pair reachability, Bonsai style: one quotient per prefix."""
        results = {}
        for dest_edge, prefix in self.destinations():
            results[(dest_edge, prefix)] = self.check_destination(
                dest_edge, prefix
            )
        return results
