"""Baselines the paper compares S2 against: Batfish and Bonsai."""

from .batfish import BatfishStats, BatfishVerifier  # noqa: F401
from .bonsai import (  # noqa: F401
    BonsaiStats,
    BonsaiTimeout,
    BonsaiVerifier,
    CompressionError,
    QuotientClasses,
)
