"""Seeded random network generator for differential fuzzing.

The generator draws a :class:`NetworkSpec` — a JSON-serializable
description of a random network: a connected random graph (tree plus
chords) of routers speaking mixed eBGP/iBGP, with random announcements,
route-maps (local-pref, MED, communities, AS-path prepend, prefix-list
deny filters), Null0 static routes with redistribution, aggregation with
``summary-only``, conditional advertisement, optional OSPF underlay, and
dual-stack (IPv6) prefixes.  The spec is *rendered to vendor config
text* (Cisco-like and Juniper-like, per node) and pushed through the
real parsers, so every fuzz iteration exercises lexer → parser → model →
engines end to end.

Two properties the rest of the subsystem relies on:

* **determinism** — ``generate_spec(seed)`` is a pure function of the
  seed (and profile), and rendering is a pure function of the spec, so a
  corpus entry can store just the seed;
* **serializability** — specs round-trip through ``to_dict``/
  ``from_dict``, which is what lets the shrinker mutate them and the
  corpus store shrunken counterexamples explicitly.

Policies are *safe by construction*: import local-pref is applied
uniformly to every session of a node (never per-neighbor), so the
generator cannot build BGP "disagree" gadgets whose multiple fixed
points would show up as false divergences between engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..config.loader import Snapshot, snapshot_from_texts
from ..net.addressing import AddressPlan
from ..net.ip import Prefix, format_ip

LINK_SPACE = Prefix.parse("100.64.0.0/16")
# Router ASNs are *public* on purpose: ``remove-private-as`` policies must
# only ever strip the decoy private ASNs injected by prepend policies —
# stripping a real path ASN would disable eBGP loop detection and build
# networks that legitimately never converge.
ASN_BASE = 3001
PRIVATE_ASN = 64512            # used by prepend policies to hit the
#                                remove-private-AS machinery

DIALECTS = ("ciscoish", "juniperish")


# -- specs ------------------------------------------------------------------


@dataclass
class NodeSpec:
    """One router of a generated network (all fields JSON-friendly)."""

    index: int
    asn: int
    dialect: str = "ciscoish"
    max_paths: int = 8
    networks: List[str] = field(default_factory=list)       # v4 announcements
    v6_networks: List[str] = field(default_factory=list)    # v6 announcements
    static_discards: List[str] = field(default_factory=list)  # Null0 statics
    redistribute_static: bool = False
    aggregate: Optional[Dict] = None    # {"prefix": str, "summary_only": bool}
    conditional: Optional[Dict] = None  # {"prefix","watch","when_present"}
    ospf: bool = False
    local_pref: Optional[int] = None    # uniform import local-pref
    import_deny: Optional[str] = None   # prefix denied on import (uniform)
    export_med: Optional[int] = None
    export_prepend: int = 0             # own-ASN prepend count on export
    export_private_prepend: bool = False  # prepend a private ASN instead
    export_community: Optional[str] = None
    remove_private_as: bool = False

    @property
    def name(self) -> str:
        return f"r{self.index}"

    @property
    def has_import_policy(self) -> bool:
        return self.local_pref is not None or self.import_deny is not None

    @property
    def has_export_policy(self) -> bool:
        return (
            self.export_med is not None
            or self.export_prepend > 0
            or self.export_private_prepend
            or self.export_community is not None
        )

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "asn": self.asn,
            "dialect": self.dialect,
            "max_paths": self.max_paths,
            "networks": list(self.networks),
            "v6_networks": list(self.v6_networks),
            "static_discards": list(self.static_discards),
            "redistribute_static": self.redistribute_static,
            "aggregate": self.aggregate,
            "conditional": self.conditional,
            "ospf": self.ospf,
            "local_pref": self.local_pref,
            "import_deny": self.import_deny,
            "export_med": self.export_med,
            "export_prepend": self.export_prepend,
            "export_private_prepend": self.export_private_prepend,
            "export_community": self.export_community,
            "remove_private_as": self.remove_private_as,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "NodeSpec":
        return cls(**data)


@dataclass
class NetworkSpec:
    """A whole generated network: nodes plus undirected links."""

    nodes: List[NodeSpec]
    links: List[Tuple[int, int]]
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.links = [tuple(link) for link in self.links]

    @property
    def size(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> NodeSpec:
        for node in self.nodes:
            if node.index == index:
                return node
        raise KeyError(index)

    def feature_count(self) -> int:
        """How many optional features the spec carries (shrink metric)."""
        count = len(self.links)
        for node in self.nodes:
            count += len(node.networks) + len(node.v6_networks)
            count += len(node.static_discards)
            count += sum(
                1
                for flag in (
                    node.aggregate,
                    node.conditional,
                    node.local_pref,
                    node.import_deny,
                    node.export_med,
                    node.export_community,
                )
                if flag is not None
            )
            count += node.export_prepend
            count += int(node.redistribute_static) + int(node.ospf)
            count += int(node.export_private_prepend)
            count += int(node.remove_private_as)
        return count

    def is_connected(self) -> bool:
        if not self.nodes:
            return False
        indices = {node.index for node in self.nodes}
        adjacency: Dict[int, List[int]] = {i: [] for i in indices}
        for a, b in self.links:
            if a in indices and b in indices:
                adjacency[a].append(b)
                adjacency[b].append(a)
        start = next(iter(indices))
        seen = {start}
        stack = [start]
        while stack:
            for peer in adjacency[stack.pop()]:
                if peer not in seen:
                    seen.add(peer)
                    stack.append(peer)
        return seen == indices

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "nodes": [node.to_dict() for node in self.nodes],
            "links": [list(link) for link in self.links],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "NetworkSpec":
        return cls(
            nodes=[NodeSpec.from_dict(n) for n in data["nodes"]],
            links=[tuple(link) for link in data["links"]],
            seed=data.get("seed"),
        )


# -- generation -------------------------------------------------------------


@dataclass(frozen=True)
class GeneratorProfile:
    """Probability knobs of the generator.

    The default profile leans on every feature; ``smoke()`` trims the
    sizes for the CI fuzz job; ``plain()`` produces policy-free networks
    (useful when bisecting whether a divergence needs policies at all).
    """

    min_nodes: int = 3
    max_nodes: int = 12
    extra_links: float = 0.5       # chords per node, on average
    p_ibgp: float = 0.2            # node shares its tree parent's ASN
    p_announce: float = 0.75
    max_prefixes_per_node: int = 2
    p_v6: float = 0.25
    p_static: float = 0.3
    p_redistribute_static: float = 0.5   # of the nodes with statics
    p_aggregate: float = 0.3             # of the announcing nodes
    p_summary_only: float = 0.5
    p_conditional: float = 0.15
    p_ospf: float = 0.2            # whole-network OSPF underlay
    p_local_pref: float = 0.25
    p_import_deny: float = 0.2
    p_export_med: float = 0.3
    p_export_prepend: float = 0.2
    p_private_prepend: float = 0.3       # of the prepending nodes
    p_remove_private: float = 0.3
    p_export_community: float = 0.3
    p_juniper: float = 0.3

    @classmethod
    def smoke(cls) -> "GeneratorProfile":
        return cls(min_nodes=3, max_nodes=6)

    @classmethod
    def plain(cls) -> "GeneratorProfile":
        return cls(
            p_static=0.0,
            p_redistribute_static=0.0,
            p_aggregate=0.0,
            p_conditional=0.0,
            p_ospf=0.0,
            p_local_pref=0.0,
            p_import_deny=0.0,
            p_export_med=0.0,
            p_export_prepend=0.0,
            p_remove_private=0.0,
            p_export_community=0.0,
            p_v6=0.0,
        )


def generate_spec(
    seed: int, profile: Optional[GeneratorProfile] = None
) -> NetworkSpec:
    """Draw one random :class:`NetworkSpec` — a pure function of the seed."""
    p = profile or GeneratorProfile()
    rng = random.Random(seed)
    n = rng.randint(p.min_nodes, p.max_nodes)

    # Random tree (guarantees connectivity), then chords to densify.
    links = set()
    parents = [0] * n
    for i in range(1, n):
        parents[i] = rng.randrange(i)
        links.add((parents[i], i))
    for _ in range(int(n * p.extra_links)):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            links.add((min(a, b), max(a, b)))

    # ASNs: unique by default; some nodes join their tree parent's AS,
    # creating ONE iBGP island contiguous in the tree.  A single island
    # keeps the fixed point unique: with two islands, an eBGP session
    # between them can tie an iBGP-learned candidate against the peer's
    # re-export (equal AS-path length), and the eBGP-over-iBGP tiebreak
    # plus split horizon then flip both ends forever — each prefers the
    # other's offer, choosing it silences their own export, and the
    # withdrawal resurrects the iBGP choice (period-2 oscillation under
    # synchronous rounds; the monolithic sweep just picks one of the two
    # legitimate fixed points by node order).  With one island the
    # external offer cannot depend on the chooser — AS-path loop
    # detection rejects any island-transiting feedback — so ties resolve
    # the same way in every engine.
    asns = [ASN_BASE + i for i in range(n)]
    island_asn: Optional[int] = None
    for i in range(1, n):
        if rng.random() < p.p_ibgp:
            parent_asn = asns[parents[i]]
            if island_asn is None or parent_asn == island_asn:
                asns[i] = parent_asn
                island_asn = parent_asn

    ospf_everywhere = rng.random() < p.p_ospf

    nodes: List[NodeSpec] = []
    for i in range(n):
        node = NodeSpec(index=i, asn=asns[i], ospf=ospf_everywhere)
        node.max_paths = rng.choice([1, 2, 8, 16])
        if rng.random() < p.p_juniper:
            node.dialect = "juniperish"
        if rng.random() < p.p_announce:
            for k in range(rng.randint(1, p.max_prefixes_per_node)):
                node.networks.append(f"10.{i}.{k}.0/24")
        if rng.random() < p.p_v6:
            node.v6_networks.append(f"2001:db8:{i:x}::/64")
        if rng.random() < p.p_static:
            node.static_discards.append(f"192.168.{i}.0/24")
            if rng.random() < p.p_redistribute_static:
                node.redistribute_static = True
        if node.networks and rng.random() < p.p_aggregate:
            node.aggregate = {
                "prefix": f"10.{i}.0.0/16",
                "summary_only": rng.random() < p.p_summary_only,
            }
        if rng.random() < p.p_local_pref:
            node.local_pref = rng.choice([90, 110, 150, 200])
        if rng.random() < p.p_export_med:
            node.export_med = rng.randint(1, 50)
        if rng.random() < p.p_export_prepend:
            node.export_prepend = rng.randint(1, 2)
            if rng.random() < p.p_private_prepend:
                node.export_private_prepend = True
        if rng.random() < p.p_remove_private:
            node.remove_private_as = True
        if rng.random() < p.p_export_community:
            node.export_community = f"65000:{rng.randint(1, 99)}"
        nodes.append(node)

    # Uniformize ranking policies inside each iBGP island.  Local-pref
    # (and MED) survive iBGP export, so a policy applied by one island
    # member leaks to its iBGP peers and builds a preference asymmetry:
    # a "disagree" gadget with several legitimate converged states (the
    # paper's §7 caveat).  Divergence between engines on such a network
    # is correct behavior, so the generator must not emit one: every
    # member of a multi-node island shares the ranking-relevant policies
    # of its lowest-index member.  Single-node islands (the common case)
    # keep their independent draws.
    by_asn: Dict[int, List[NodeSpec]] = {}
    for node in nodes:
        by_asn.setdefault(node.asn, []).append(node)
    for island in by_asn.values():
        if len(island) < 2:
            continue
        leader = island[0]
        for member in island[1:]:
            member.local_pref = leader.local_pref
            member.export_med = leader.export_med
            member.export_prepend = leader.export_prepend
            member.export_private_prepend = leader.export_private_prepend
            member.export_community = leader.export_community
            member.remove_private_as = leader.remove_private_as

    # MED is the one attribute that does NOT survive iBGP propagation
    # (cleared on re-advertisement), so an eBGP route with a MED and its
    # MED-0 iBGP copy rank differently — MED sits above the
    # eBGP-over-iBGP tiebreak.  Two island members hearing the same
    # MED-bearing route then oscillate (RFC 3345): each prefers the
    # other's iBGP copy, goes no-transit silent, and resurrects the
    # peer's eBGP choice.  Keep MED away from iBGP islands: no member
    # of a multi-node island, and none of its eBGP neighbors, sets
    # export_med.  (MED is non-transitive across eBGP hops, so only
    # direct neighbors matter.)
    in_island = {
        node.index
        for island in by_asn.values()
        if len(island) > 1
        for node in island
    }
    med_free = set(in_island)
    for a, b in links:
        if a in in_island:
            med_free.add(b)
        if b in in_island:
            med_free.add(a)
    for node in nodes:
        if node.index in med_free:
            node.export_med = None

    # Private-ASN decoys must not cancel the +1 AS-hop of re-export.
    # Every hop of a BGP preference cycle adds one ASN except a hop
    # whose exporter strips a private ASN (net 0, or negative when the
    # path carries several).  A "disagree" gadget — two nodes each
    # preferring the other's offer, flipping forever via split horizon —
    # needs the length deltas around the cycle to sum to zero or less,
    # i.e. at least two strip-neutral hops or one double-strip.  Two
    # structural limits make that sum strictly positive in every cycle:
    # decoys only enter via originations at degree-1 nodes (a transit
    # node's export policy would tag every route it forwards), and only
    # one node in the whole network strips private ASNs.
    degree: Dict[int, int] = {node.index: 0 for node in nodes}
    for a, b in links:
        degree[a] += 1
        degree[b] += 1
    stripper_seen = False
    for node in nodes:
        if node.export_private_prepend and degree[node.index] != 1:
            node.export_private_prepend = False
        if node.remove_private_as:
            if stripper_seen:
                node.remove_private_as = False
            stripper_seen = True

    # Guarantee at least one announcement so the run is not vacuous.
    if not any(node.networks for node in nodes):
        nodes[rng.randrange(n)].networks.append("10.200.0.0/24")

    announced = [
        prefix for node in nodes for prefix in node.networks
    ]
    for node in nodes:
        # Conditional advertisement is a ciscoish-only dialect feature.
        if node.dialect == "ciscoish" and rng.random() < p.p_conditional:
            watch = rng.choice(announced)
            gated = f"172.16.{node.index}.0/24"
            node.networks.append(gated)
            node.conditional = {
                "prefix": gated,
                "watch": watch,
                "when_present": rng.random() < 0.5,
            }
        if node.import_deny is None and rng.random() < p.p_import_deny:
            node.import_deny = rng.choice(announced)

    return NetworkSpec(nodes=nodes, links=sorted(links), seed=seed)


# -- rendering --------------------------------------------------------------


@dataclass
class _Session:
    iface: str
    local_addr: int
    peer_addr: int
    peer_asn: int


def _sessions(spec: NetworkSpec) -> Dict[int, List[_Session]]:
    """Allocate /31 link subnets and derive per-node BGP sessions."""
    plan = AddressPlan(LINK_SPACE)
    sessions: Dict[int, List[_Session]] = {node.index: [] for node in spec.nodes}
    asn_of = {node.index: node.asn for node in spec.nodes}
    for a, b in spec.links:
        if a not in sessions or b not in sessions:
            continue  # dangling link in a shrunken spec
        low, high, _prefix = plan.next_p2p()
        sessions[a].append(
            _Session(f"e{len(sessions[a])}", low, high, asn_of[b])
        )
        sessions[b].append(
            _Session(f"e{len(sessions[b])}", high, low, asn_of[a])
        )
    return sessions


def _render_cisco(node: NodeSpec, sessions: List[_Session]) -> str:
    lines = [f"hostname {node.name}"]
    for session in sessions:
        mask = format_ip(Prefix(session.local_addr, 31).mask)
        lines += [
            f"interface {session.iface}",
            f" ip address {format_ip(session.local_addr)} {mask}",
        ]
    for prefix_text in node.static_discards:
        prefix = Prefix.parse(prefix_text)
        lines.append(
            f"ip route {format_ip(prefix.network)} {format_ip(prefix.mask)} "
            f"Null0"
        )
    if node.import_deny is not None:
        lines += [
            f"ip prefix-list PL-DENY seq 5 permit {node.import_deny}",
        ]
    if node.export_community is not None:
        # Defined for symmetry with the Juniper rendering (unused here).
        lines.append(
            f"ip community-list standard CL-TAG permit "
            f"{node.export_community}"
        )
    if node.has_import_policy:
        if node.import_deny is not None:
            lines += [
                "route-map IMPORT deny 5",
                " match ip address prefix-list PL-DENY",
            ]
        lines.append("route-map IMPORT permit 10")
        if node.local_pref is not None:
            lines.append(f" set local-preference {node.local_pref}")
    if node.has_export_policy:
        lines.append("route-map EXPORT permit 10")
        if node.export_med is not None:
            lines.append(f" set metric {node.export_med}")
        if node.export_prepend:
            prepend_asn = (
                PRIVATE_ASN if node.export_private_prepend else node.asn
            )
            asns = " ".join([str(prepend_asn)] * node.export_prepend)
            lines.append(f" set as-path prepend {asns}")
        if node.export_community is not None:
            lines.append(
                f" set community {node.export_community} additive"
            )
    if node.ospf and sessions:
        lines.append("router ospf 1")
        lines.append(
            f" network {format_ip(LINK_SPACE.network)} 0.0.255.255 area 0"
        )
    lines.append(f"router bgp {node.asn}")
    lines.append(
        f" bgp router-id {format_ip((192 << 24) | (node.index + 1))}"
    )
    lines.append(f" maximum-paths {node.max_paths}")
    for session in sessions:
        peer = format_ip(session.peer_addr)
        lines.append(f" neighbor {peer} remote-as {session.peer_asn}")
        if node.has_import_policy:
            lines.append(f" neighbor {peer} route-map IMPORT in")
        if node.has_export_policy:
            lines.append(f" neighbor {peer} route-map EXPORT out")
        if node.remove_private_as:
            lines.append(f" neighbor {peer} remove-private-as")
    for prefix_text in node.networks:
        prefix = Prefix.parse(prefix_text)
        lines.append(
            f" network {format_ip(prefix.network)} "
            f"mask {format_ip(prefix.mask)}"
        )
    for prefix_text in node.v6_networks:
        lines.append(f" network {prefix_text}")
    if node.aggregate is not None:
        prefix = Prefix.parse(node.aggregate["prefix"])
        suffix = " summary-only" if node.aggregate["summary_only"] else ""
        lines.append(
            f" aggregate-address {format_ip(prefix.network)} "
            f"{format_ip(prefix.mask)}{suffix}"
        )
    if node.redistribute_static:
        lines.append(" redistribute static")
    if node.conditional is not None:
        kind = "exist" if node.conditional["when_present"] else "non-exist"
        lines.append(
            f" advertise {node.conditional['prefix']} {kind} "
            f"{node.conditional['watch']}"
        )
    return "\n".join(lines) + "\n"


def _render_juniper(node: NodeSpec, sessions: List[_Session]) -> str:
    out = ["system {", f"    host-name {node.name};", "}"]
    out.append("interfaces {")
    for session in sessions:
        out += [
            f"    {session.iface} {{",
            "        unit 0 {",
            "            family {",
            "                inet {",
            f"                    address "
            f"{format_ip(session.local_addr)}/31;",
            "                }",
            "            }",
            "        }",
            "    }",
        ]
    out.append("}")
    out += [
        "routing-options {",
        f"    router-id {format_ip((192 << 24) | (node.index + 1))};",
        f"    autonomous-system {node.asn};",
    ]
    if node.static_discards:
        out.append("    static {")
        for prefix_text in node.static_discards:
            out.append(f"        route {prefix_text} discard;")
        out.append("    }")
    out.append("}")

    policy_lines: List[str] = []
    if node.import_deny is not None:
        policy_lines += [
            "    prefix-list PL-DENY {",
            f"        {node.import_deny};",
            "    }",
        ]
    if node.export_community is not None:
        policy_lines.append(
            f"    community CL-TAG members [ {node.export_community} ];"
        )
    if node.has_import_policy:
        policy_lines.append("    policy-statement IMPORT {")
        if node.import_deny is not None:
            policy_lines += [
                "        term drop {",
                "            from {",
                "                prefix-list PL-DENY;",
                "            }",
                "            then {",
                "                reject;",
                "            }",
                "        }",
            ]
        policy_lines.append("        term adjust {")
        policy_lines.append("            then {")
        if node.local_pref is not None:
            policy_lines.append(
                f"                local-preference {node.local_pref};"
            )
        policy_lines.append("                accept;")
        policy_lines += ["            }", "        }"]
        policy_lines.append("    }")
    if node.has_export_policy:
        policy_lines.append("    policy-statement EXPORT {")
        policy_lines.append("        term adjust {")
        policy_lines.append("            then {")
        if node.export_med is not None:
            policy_lines.append(f"                metric {node.export_med};")
        if node.export_prepend:
            prepend_asn = (
                PRIVATE_ASN if node.export_private_prepend else node.asn
            )
            asns = " ".join([str(prepend_asn)] * node.export_prepend)
            policy_lines.append(f"                as-path-prepend {asns};")
        if node.export_community is not None:
            policy_lines.append("                community add CL-TAG;")
        policy_lines.append("                accept;")
        policy_lines += ["            }", "        }"]
        policy_lines.append("    }")
    if policy_lines:
        out.append("policy-options {")
        out += policy_lines
        out.append("}")

    out.append("protocols {")
    if node.ospf and sessions:
        out.append("    ospf {")
        out.append("        area 0 {")
        for session in sessions:
            out.append(f"            interface {session.iface};")
        out += ["        }", "    }"]
    out.append("    bgp {")
    out.append(f"        multipath {node.max_paths};")
    out.append("        group fuzz {")
    for session in sessions:
        out += [
            f"            neighbor {format_ip(session.peer_addr)} {{",
            f"                peer-as {session.peer_asn};",
        ]
        if node.has_import_policy:
            out.append("                import IMPORT;")
        if node.has_export_policy:
            out.append("                export EXPORT;")
        if node.remove_private_as:
            out.append("                remove-private;")
        out.append("            }")
    out.append("        }")
    for prefix_text in node.networks + node.v6_networks:
        out.append(f"        network {prefix_text};")
    if node.aggregate is not None:
        suffix = (
            " summary-only" if node.aggregate["summary_only"] else ""
        )
        out.append("        aggregate {")
        out.append(
            f"            route {node.aggregate['prefix']}{suffix};"
        )
        out.append("        }")
    if node.redistribute_static:
        out.append("        redistribute static;")
    out += ["    }", "}"]
    return "\n".join(out) + "\n"


def render_texts(spec: NetworkSpec) -> Dict[str, Tuple[str, str]]:
    """Render hostname -> (dialect, config-text) for the whole network."""
    sessions = _sessions(spec)
    texts: Dict[str, Tuple[str, str]] = {}
    for node in spec.nodes:
        node_sessions = sessions[node.index]
        if node.dialect == "juniperish":
            texts[node.name] = (
                "juniperish",
                _render_juniper(node, node_sessions),
            )
        else:
            texts[node.name] = (
                "ciscoish",
                _render_cisco(node, node_sessions),
            )
    return texts


def build_snapshot(spec: NetworkSpec) -> Snapshot:
    """Render and parse the spec into a fresh snapshot.

    Every caller gets an independent snapshot: engines mutate per-node
    state, so differential runs must never share parsed configs.
    """
    suffix = f"-s{spec.seed}" if spec.seed is not None else ""
    return snapshot_from_texts(
        render_texts(spec), name=f"fuzz{suffix}"
    )
