"""The differential oracle: one network, every engine, identical answers.

S2's headline claim (§5, Fig. 4–6) is that the distributed verifier is
*bit-identical* to monolithic simulation.  The oracle operationalizes
that claim as an executable check: run one generated network through

* the monolithic :class:`~repro.routing.engine.SimulationEngine`
  (the baseline truth),
* the monolithic engine *with prefix sharding*,
* the distributed pipeline on the in-process runtimes (sequential and
  threaded), sharded and unsharded,
* optionally the process-backed runtime (real worker processes),
* optionally a run under an injected, recoverable fault plan, and
* optionally the socket runtime (workers behind TCP servers) under a
  sampled *network* fault plan — partitions, torn frames, reorders,
  slow links — exercising the hardened transport end to end,

then diff the normalized RIBs field by field, and (optionally) diff the
all-pair data-plane verdicts of the monolithic Batfish-style baseline
against the distributed checker.  Any mismatch is a :class:`Divergence`.

Route comparison goes through a :class:`RouteProjection` — an explicit
list of compared attributes — so tests can prove the oracle is not
vacuous: a mutant projection that skips ``med`` must *fail* to catch a
MED-only divergence that the full projection catches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dist.controller import S2Controller, S2Options
from ..dist.faults import (
    FaultPlan,
    sample_host_loss_plan,
    sample_network_plan,
    sample_plan,
)
from ..dist.sharding import make_shards
from ..routing.engine import BgpResult, SimulationEngine
from ..routing.route import BgpRoute
from .generators import NetworkSpec, build_snapshot

#: Every attribute of :class:`~repro.routing.route.BgpRoute` that the
#: BGP decision process or the FIB builder can observe.  ``prefix`` is
#: the table key and therefore not listed.
DEFAULT_FIELDS: Tuple[str, ...] = (
    "next_hop",
    "from_node",
    "as_path",
    "local_pref",
    "med",
    "origin",
    "communities",
    "weight",
    "ebgp",
    "originator_id",
    "igp_cost",
    "aggregate",
    "suppressed",
)


def normalize_ribs(result: BgpResult):
    """Canonical object-level form for RIB equality across engines.

    ECMP sets are order-insensitive; everything else must match exactly.
    This is the comparison the equivalence *tests* use (the oracle uses
    the field-projected form below, which produces readable diffs).
    """
    return {
        host: {
            prefix: tuple(
                sorted(routes, key=lambda r: (r.from_node, r.next_hop))
            )
            for prefix, routes in table.items()
        }
        for host, table in result.items()
    }


@dataclass(frozen=True)
class RouteProjection:
    """The set of route attributes the oracle compares."""

    fields: Tuple[str, ...] = DEFAULT_FIELDS

    def view(self, route: BgpRoute) -> Tuple:
        """A canonical, totally-ordered tuple of the projected fields."""
        values = []
        for name in self.fields:
            value = getattr(route, name)
            if isinstance(value, frozenset):
                value = tuple(sorted(value))
            elif hasattr(value, "value") and not isinstance(value, int):
                value = value.value
            elif isinstance(value, bool):
                value = int(value)
            values.append(value)
        return tuple(values)

    def normalize(self, result: BgpResult) -> Dict[str, Dict[str, Tuple]]:
        """host -> prefix-string -> sorted tuple of route views."""
        normalized: Dict[str, Dict[str, Tuple]] = {}
        for host, table in result.items():
            normalized[host] = {
                str(prefix): tuple(sorted(self.view(r) for r in routes))
                for prefix, routes in table.items()
                if routes
            }
        return normalized


@dataclass(frozen=True)
class Divergence:
    """One observed difference between a variant and the baseline."""

    variant: str
    kind: str                 # "rib" | "dataplane" | "error"
    host: str = ""
    prefix: str = ""
    expected: str = ""
    got: str = ""

    def describe(self) -> str:
        if self.kind == "error":
            return f"[{self.variant}] run failed: {self.got}"
        where = f"{self.host} {self.prefix}".strip()
        return (
            f"[{self.variant}] {self.kind} mismatch at {where}: "
            f"expected {self.expected or '<absent>'}, "
            f"got {self.got or '<absent>'}"
        )


@dataclass
class OracleReport:
    """The outcome of one differential check."""

    spec: NetworkSpec
    variants_run: List[str] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)
    baseline_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.divergences and self.baseline_error is None

    def describe(self, limit: int = 10) -> str:
        if self.baseline_error is not None:
            return f"baseline failed: {self.baseline_error}"
        if not self.divergences:
            return f"ok ({', '.join(self.variants_run)})"
        lines = [d.describe() for d in self.divergences[:limit]]
        extra = len(self.divergences) - limit
        if extra > 0:
            lines.append(f"... and {extra} more")
        return "\n".join(lines)


@dataclass
class CheckPlan:
    """Which engine/runtime/sharding/fault combinations to compare."""

    workers: int = 3
    shards: int = 3
    scheme: str = "random"
    seed: int = 7                    # partition/shard seed
    include_threaded: bool = True
    include_process: bool = False    # real worker processes (slow)
    include_faults: bool = False     # recoverable injected faults
    include_host_loss: bool = False  # one permanent worker loss mid-run
    include_socket: bool = False     # TCP workers + network faults (slow)
    fault_seed: int = 0
    check_dataplane: bool = False    # all-pair verdict comparison (slow)
    include_groundtruth: bool = False  # concrete packet-walk adjudication
    groundtruth_witnesses: int = 2   # packets sampled per verdict
    projection: RouteProjection = field(default_factory=RouteProjection)
    max_divergences: int = 25

    @classmethod
    def quick(cls) -> "CheckPlan":
        """The cheap plan the property tests use (in-process only)."""
        return cls(include_threaded=False)


class DifferentialOracle:
    """Runs one spec through the engine matrix and diffs the results."""

    def __init__(self, plan: Optional[CheckPlan] = None) -> None:
        self.plan = plan or CheckPlan()

    # -- variant runners --------------------------------------------------

    def _run_monolithic(
        self, spec: NetworkSpec, sharded: bool
    ) -> BgpResult:
        snapshot = build_snapshot(spec)
        engine = SimulationEngine(snapshot)
        if not sharded:
            return engine.run()
        shards = make_shards(snapshot, self.plan.shards, seed=self.plan.seed)
        return engine.run([s.prefixes for s in shards])

    def _run_distributed(
        self,
        spec: NetworkSpec,
        runtime: str,
        num_shards: int,
        fault_plan: Optional[FaultPlan] = None,
    ) -> BgpResult:
        snapshot = build_snapshot(spec)
        options = S2Options(
            num_workers=min(self.plan.workers, max(1, spec.size)),
            num_shards=num_shards,
            partition_scheme=self.plan.scheme,
            runtime=runtime,
            seed=self.plan.seed,
            fault_plan=fault_plan,
        )
        with S2Controller(snapshot, options) as controller:
            controller.run_control_plane()
            return controller.collected_ribs()

    def _variants(self) -> List[Tuple[str, Dict]]:
        plan = self.plan
        variants: List[Tuple[str, Dict]] = [
            ("mono-sharded", {"kind": "mono", "sharded": True}),
            ("dist-seq", {"kind": "dist", "runtime": "sequential",
                          "num_shards": 0}),
            ("dist-seq-sharded", {"kind": "dist", "runtime": "sequential",
                                  "num_shards": plan.shards}),
        ]
        if plan.include_threaded:
            variants.append(
                ("dist-threaded-sharded",
                 {"kind": "dist", "runtime": "threaded",
                  "num_shards": plan.shards}),
            )
        if plan.include_faults:
            variants.append(
                ("dist-faulty",
                 {"kind": "dist", "runtime": "sequential",
                  "num_shards": plan.shards,
                  "faults": True}),
            )
        if plan.include_host_loss:
            # One worker dies permanently mid-run: its shards migrate to
            # the survivors and the degraded run must still match the
            # fault-free baseline bit for bit.
            variants.append(
                ("dist-host-loss",
                 {"kind": "dist", "runtime": "sequential",
                  "num_shards": plan.shards,
                  "host_loss": True}),
            )
        if plan.include_process:
            variants.append(
                ("dist-process",
                 {"kind": "dist", "runtime": "process",
                  "num_shards": plan.shards}),
            )
        if plan.include_socket:
            # TCP workers under a sampled network-fault plan (partition /
            # reorder / slow_link / torn_frame): the chaos variant of the
            # paper's bit-identical claim.
            variants.append(
                ("dist-socket",
                 {"kind": "dist", "runtime": "socket",
                  "num_shards": plan.shards,
                  "network_faults": True}),
            )
        return variants

    # -- diffing ----------------------------------------------------------

    def _diff(
        self,
        variant: str,
        baseline: Dict[str, Dict[str, Tuple]],
        other: Dict[str, Dict[str, Tuple]],
    ) -> List[Divergence]:
        divergences: List[Divergence] = []
        for host in sorted(set(baseline) | set(other)):
            base_table = baseline.get(host, {})
            other_table = other.get(host, {})
            for prefix in sorted(set(base_table) | set(other_table)):
                expected = base_table.get(prefix)
                got = other_table.get(prefix)
                if expected == got:
                    continue
                divergences.append(
                    Divergence(
                        variant=variant,
                        kind="rib",
                        host=host,
                        prefix=prefix,
                        expected=_render_views(expected, self.plan),
                        got=_render_views(got, self.plan),
                    )
                )
                if len(divergences) >= self.plan.max_divergences:
                    return divergences
        return divergences

    def _check_dataplane(self, spec: NetworkSpec) -> List[Divergence]:
        """All-pair reachability: monolithic baseline vs distributed.

        The distributed check runs once per BDD kernel (flat and dict):
        each kernel must agree with the baseline, and — the kernel
        differential — the two kernels must agree with each other on
        every pair, operationalizing the bit-identical claim across the
        engine rewrite, not just across the runtimes.
        """
        from ..baselines.batfish import BatfishVerifier
        from ..dataplane.queries import Query

        mono = BatfishVerifier(build_snapshot(spec), seed=self.plan.seed)
        expected = set(mono.all_pair_reachability().pairs())
        got_by_kernel: Dict[str, set] = {}
        for kernel in ("flat", "dict"):
            snapshot = build_snapshot(spec)
            options = S2Options(
                num_workers=min(self.plan.workers, max(1, spec.size)),
                num_shards=self.plan.shards,
                partition_scheme=self.plan.scheme,
                seed=self.plan.seed,
                bdd_kernel=kernel,
            )
            with S2Controller(snapshot, options) as controller:
                checker = controller.checker()
                holders = controller.prefix_holders()
                query = Query(
                    sources=tuple(holders), destinations=tuple(holders)
                )
                got_by_kernel[kernel] = set(
                    checker.check_reachability(query).pairs()
                )
        divergences: List[Divergence] = []
        for kernel, got in sorted(got_by_kernel.items()):
            for pair in sorted(expected ^ got):
                divergences.append(
                    Divergence(
                        variant=f"dataplane-{kernel}",
                        kind="dataplane",
                        host=pair[0],
                        prefix=pair[1],
                        expected=(
                            "reachable" if pair in expected
                            else "unreachable"
                        ),
                        got="reachable" if pair in got else "unreachable",
                    )
                )
                if len(divergences) >= self.plan.max_divergences:
                    return divergences
        for pair in sorted(got_by_kernel["flat"] ^ got_by_kernel["dict"]):
            divergences.append(
                Divergence(
                    variant="kernel-diff",
                    kind="dataplane",
                    host=pair[0],
                    prefix=pair[1],
                    expected=(
                        "reachable" if pair in got_by_kernel["dict"]
                        else "unreachable"
                    ),
                    got=(
                        "reachable" if pair in got_by_kernel["flat"]
                        else "unreachable"
                    ),
                )
            )
            if len(divergences) >= self.plan.max_divergences:
                break
        return divergences

    def _check_groundtruth(self, spec: NetworkSpec) -> List[Divergence]:
        """Third adjudicator: concrete packet walks over the monolithic
        FIBs must agree with the symbolic verdicts (no BDDs involved in
        the walking — see :mod:`repro.groundtruth`)."""
        from ..dataplane.verifier import DataPlaneVerifier
        from ..groundtruth import audit_verifier

        snapshot = build_snapshot(spec)
        engine = SimulationEngine(snapshot)
        routes = engine.run()
        dpv = DataPlaneVerifier.from_simulation(engine, routes)
        report = audit_verifier(
            dpv,
            seed=self.plan.seed,
            witnesses=self.plan.groundtruth_witnesses,
            near_misses=self.plan.groundtruth_witnesses,
        )
        divergences = []
        for mismatch in report.mismatches[: self.plan.max_divergences]:
            divergences.append(
                Divergence(
                    variant="groundtruth",
                    kind="groundtruth",
                    host=mismatch.source,
                    prefix=mismatch.packet,
                    expected=mismatch.expected,
                    got=f"{mismatch.got}; {mismatch.trace}",
                )
            )
        return divergences

    # -- entry point ------------------------------------------------------

    def check(self, spec: NetworkSpec) -> OracleReport:
        report = OracleReport(spec=spec)
        projection = self.plan.projection
        try:
            baseline = projection.normalize(
                self._run_monolithic(spec, sharded=False)
            )
        except Exception as exc:  # noqa: BLE001 — any failure is a finding
            report.baseline_error = f"{type(exc).__name__}: {exc}"
            return report
        report.variants_run.append("mono")
        for name, params in self._variants():
            try:
                if params["kind"] == "mono":
                    result = self._run_monolithic(spec, sharded=True)
                else:
                    fault_plan = None
                    if params.get("faults"):
                        fault_plan = sample_plan(
                            self.plan.fault_seed,
                            min(self.plan.workers, max(1, spec.size)),
                        )
                    elif params.get("host_loss"):
                        fault_plan = sample_host_loss_plan(
                            self.plan.fault_seed,
                            min(self.plan.workers, max(1, spec.size)),
                        )
                    elif params.get("network_faults"):
                        fault_plan = sample_network_plan(
                            self.plan.fault_seed,
                            min(self.plan.workers, max(1, spec.size)),
                        )
                    result = self._run_distributed(
                        spec,
                        runtime=params["runtime"],
                        num_shards=params["num_shards"],
                        fault_plan=fault_plan,
                    )
            except Exception as exc:  # noqa: BLE001
                report.divergences.append(
                    Divergence(
                        variant=name,
                        kind="error",
                        got=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            report.variants_run.append(name)
            report.divergences.extend(
                self._diff(name, baseline, projection.normalize(result))
            )
        if self.plan.check_dataplane and not report.divergences:
            try:
                report.divergences.extend(self._check_dataplane(spec))
                report.variants_run.append("dataplane")
            except Exception as exc:  # noqa: BLE001
                report.divergences.append(
                    Divergence(
                        variant="dataplane",
                        kind="error",
                        got=f"{type(exc).__name__}: {exc}",
                    )
                )
        if self.plan.include_groundtruth and not report.divergences:
            try:
                report.divergences.extend(self._check_groundtruth(spec))
                report.variants_run.append("groundtruth")
            except Exception as exc:  # noqa: BLE001
                report.divergences.append(
                    Divergence(
                        variant="groundtruth",
                        kind="error",
                        got=f"{type(exc).__name__}: {exc}",
                    )
                )
        return report


def adjudicate_groundtruth(
    spec: NetworkSpec,
    plan: Optional[CheckPlan] = None,
    witnesses: int = 2,
) -> Dict:
    """Adjudicate a known-divergent case with the concrete packet walker.

    The expect-divergent corpus gadgets are networks where two runtimes
    converge to *different* RIB fixed points (BGP disagree/oscillation
    gadgets), so "who is right?" cannot be settled by diffing RIBs.  The
    ground-truth oracle settles a weaker but decidable question instead:
    for each runtime's FIBs, do concrete packet walks reproduce that
    runtime's own symbolic verdicts?  A runtime whose data plane is
    self-consistent under the walk is a legitimate fixed point; one that
    is not has a genuine bug.

    Returns a JSON-serializable verdict recorded in the case's corpus
    ``metadata``:

    * ``sides_with`` — ``"both"`` when each runtime's data plane is
      internally confirmed (the divergence is purely a control-plane
      tie-break), ``"monolithic"``/``"divergent"`` when only one side
      survives the walk, ``"neither"`` when both fail.
    * ``reachable_pairs`` — how the two fixed points differ end to end.
    """
    from ..dataplane.verifier import verifier_from_ribs
    from ..groundtruth import audit_verifier

    plan = plan or CheckPlan.quick()
    oracle = DifferentialOracle(plan)
    projection = plan.projection
    baseline_ribs = oracle._run_monolithic(spec, sharded=False)
    baseline_norm = projection.normalize(baseline_ribs)

    divergent_name: Optional[str] = None
    divergent_ribs: Optional[BgpResult] = None
    divergent_error: Optional[str] = None
    for name, params in oracle._variants():
        try:
            if params["kind"] == "mono":
                result = oracle._run_monolithic(spec, sharded=True)
            else:
                result = oracle._run_distributed(
                    spec,
                    runtime=params["runtime"],
                    num_shards=params["num_shards"],
                )
        except Exception as exc:  # noqa: BLE001 — oscillation gadgets
            # A variant that never converges *is* the divergence; it
            # produced no FIBs, so the walk cannot side with it.
            divergent_name = name
            divergent_error = f"{type(exc).__name__}: {exc}"
            break
        if oracle._diff(name, baseline_norm, projection.normalize(result)):
            divergent_name, divergent_ribs = name, result
            break

    def _audit(ribs: BgpResult) -> Tuple[Dict, set]:
        dpv = verifier_from_ribs(build_snapshot(spec), ribs)
        report = audit_verifier(
            dpv, seed=plan.seed, witnesses=witnesses, near_misses=witnesses
        )
        summary = {
            "ok": report.ok,
            "packets_walked": report.packets_walked,
            "mismatches": len(report.mismatches),
        }
        if report.mismatches:
            summary["first_mismatch"] = report.mismatches[0].describe()
        return summary, set(dpv.all_pair_reachability().pairs())

    verdict: Dict = {
        "adjudicator": "groundtruth-walk",
        "divergent_variant": divergent_name,
    }
    mono_summary, mono_pairs = _audit(baseline_ribs)
    verdict["monolithic"] = mono_summary
    if divergent_ribs is None:
        if divergent_error is not None:
            verdict["divergent"] = {"ok": False, "error": divergent_error}
        verdict["sides_with"] = (
            "monolithic" if mono_summary["ok"] else "neither"
        )
        return verdict
    div_summary, div_pairs = _audit(divergent_ribs)
    verdict["divergent"] = div_summary
    verdict["reachable_pairs"] = {
        "monolithic": len(mono_pairs),
        "divergent": len(div_pairs),
        "only_monolithic": sorted(
            f"{s}->{d}" for s, d in mono_pairs - div_pairs
        )[:10],
        "only_divergent": sorted(
            f"{s}->{d}" for s, d in div_pairs - mono_pairs
        )[:10],
    }
    if mono_summary["ok"] and div_summary["ok"]:
        verdict["sides_with"] = "both"
    elif mono_summary["ok"]:
        verdict["sides_with"] = "monolithic"
    elif div_summary["ok"]:
        verdict["sides_with"] = "divergent"
    else:
        verdict["sides_with"] = "neither"
    return verdict


def _render_views(views: Optional[Tuple], plan: CheckPlan) -> str:
    if views is None:
        return ""
    rendered = []
    for view in views:
        pairs = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(plan.projection.fields, view)
        )
        rendered.append(f"({pairs})")
    return " | ".join(rendered)
