"""Differential fuzzing: random networks, cross-runtime oracle, shrinking.

The subsystem has four parts:

* :mod:`repro.fuzz.generators` — a seeded random network generator that
  emits real vendor config text (both dialects), so the parsers are
  fuzzed together with the engines;
* :mod:`repro.fuzz.oracle` — the differential oracle running one
  generated network through the monolithic engine and the distributed
  runtimes (sharded and not, optionally under fault injection) and
  diffing the normalized results;
* :mod:`repro.fuzz.shrink` — a spec-level minimizer for divergent cases;
* :mod:`repro.fuzz.corpus` — the on-disk replayable regression corpus.
"""

from .corpus import CorpusCase, load_corpus, save_case
from .generators import (
    GeneratorProfile,
    NetworkSpec,
    NodeSpec,
    build_snapshot,
    generate_spec,
    render_texts,
)
from .oracle import (
    CheckPlan,
    DifferentialOracle,
    Divergence,
    OracleReport,
    RouteProjection,
)
from .shrink import ShrinkResult, shrink_spec

__all__ = [
    "CheckPlan",
    "CorpusCase",
    "DifferentialOracle",
    "Divergence",
    "GeneratorProfile",
    "NetworkSpec",
    "NodeSpec",
    "OracleReport",
    "RouteProjection",
    "ShrinkResult",
    "build_snapshot",
    "generate_spec",
    "load_corpus",
    "render_texts",
    "save_case",
    "shrink_spec",
]
