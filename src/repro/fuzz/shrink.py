"""Spec-level minimization of divergent fuzz cases.

When the oracle finds a divergence, the raw spec is rarely the story:
a 12-node network with nine active features usually diverges for one
reason.  :func:`shrink_spec` greedily removes structure — nodes, links,
then individual policy features — re-running a caller-supplied predicate
(usually "the oracle still diverges") after each candidate, and keeps
any mutation that preserves the failure.  The loop restarts after every
accepted mutation and terminates when a full pass accepts nothing, so it
converges to a 1-minimal spec: removing any single remaining element
makes the divergence disappear.

The predicate sees a *deep copy*; shrinking never mutates the input.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional

from .generators import NetworkSpec, NodeSpec

Predicate = Callable[[NetworkSpec], bool]


@dataclass
class ShrinkResult:
    """The minimized spec plus how the search went."""

    spec: NetworkSpec
    evaluations: int = 0
    accepted: int = 0

    @property
    def minimal(self) -> NetworkSpec:
        return self.spec


def _without_node(spec: NetworkSpec, index: int) -> NetworkSpec:
    nodes = [copy.deepcopy(n) for n in spec.nodes if n.index != index]
    links = [
        link for link in spec.links if index not in link
    ]
    return NetworkSpec(nodes=nodes, links=links, seed=spec.seed)


def _without_link(spec: NetworkSpec, position: int) -> NetworkSpec:
    links = [l for i, l in enumerate(spec.links) if i != position]
    return NetworkSpec(
        nodes=[copy.deepcopy(n) for n in spec.nodes],
        links=links,
        seed=spec.seed,
    )


def _feature_mutations(node: NodeSpec) -> Iterator[Callable[[NodeSpec], None]]:
    """Single-feature removals for one node, coarsest first."""
    if node.aggregate is not None:
        yield lambda n: setattr(n, "aggregate", None)
    if node.conditional is not None:
        # The gated prefix only exists for the conditional; drop both.
        def drop_conditional(n: NodeSpec) -> None:
            gated = n.conditional["prefix"]
            n.conditional = None
            if gated in n.networks:
                n.networks.remove(gated)
        yield drop_conditional
    if node.local_pref is not None:
        yield lambda n: setattr(n, "local_pref", None)
    if node.import_deny is not None:
        yield lambda n: setattr(n, "import_deny", None)
    if node.export_med is not None:
        yield lambda n: setattr(n, "export_med", None)
    if node.export_prepend:
        def drop_prepend(n: NodeSpec) -> None:
            n.export_prepend = 0
            n.export_private_prepend = False
        yield drop_prepend
    if node.export_community is not None:
        yield lambda n: setattr(n, "export_community", None)
    if node.remove_private_as:
        yield lambda n: setattr(n, "remove_private_as", False)
    if node.redistribute_static:
        yield lambda n: setattr(n, "redistribute_static", False)
    if node.static_discards:
        yield lambda n: setattr(n, "static_discards", [])
    if node.ospf:
        yield lambda n: setattr(n, "ospf", False)
    if node.v6_networks:
        yield lambda n: setattr(n, "v6_networks", [])
    for prefix in list(node.networks):
        if node.conditional is not None and (
            prefix == node.conditional["prefix"]
        ):
            continue
        yield lambda n, p=prefix: n.networks.remove(p)
    if node.max_paths != 1:
        yield lambda n: setattr(n, "max_paths", 1)
    if node.dialect != "ciscoish" and node.conditional is None:
        yield lambda n: setattr(n, "dialect", "ciscoish")


def _candidates(spec: NetworkSpec) -> Iterator[NetworkSpec]:
    """All one-step-smaller specs, most aggressive first."""
    for node in spec.nodes:
        if len(spec.nodes) > 1:
            yield _without_node(spec, node.index)
    for position in range(len(spec.links)):
        yield _without_link(spec, position)
    for i, node in enumerate(spec.nodes):
        for mutate in _feature_mutations(node):
            candidate = NetworkSpec(
                nodes=[copy.deepcopy(n) for n in spec.nodes],
                links=list(spec.links),
                seed=spec.seed,
            )
            mutate(candidate.nodes[i])
            yield candidate


def shrink_spec(
    spec: NetworkSpec,
    predicate: Predicate,
    max_evaluations: int = 2000,
) -> ShrinkResult:
    """Greedily minimize ``spec`` while ``predicate`` keeps holding.

    ``predicate(candidate)`` must return True when the candidate still
    exhibits the behavior being minimized (divergence, crash, ...).  The
    input spec itself must satisfy the predicate; otherwise it is
    returned unshrunken.
    """
    result = ShrinkResult(spec=copy.deepcopy(spec))
    improved = True
    while improved and result.evaluations < max_evaluations:
        improved = False
        for candidate in _candidates(result.spec):
            if result.evaluations >= max_evaluations:
                break
            result.evaluations += 1
            try:
                still_failing = predicate(copy.deepcopy(candidate))
            except Exception:  # noqa: BLE001
                # A predicate crash means the candidate changed the
                # failure mode; keep minimizing the original one.
                still_failing = False
            if still_failing:
                result.spec = candidate
                result.accepted += 1
                improved = True
                break
    return result
