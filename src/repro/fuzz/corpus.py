"""The on-disk replayable regression corpus.

Every interesting network the fuzzer encounters — a shrunken divergence,
a near-miss that stressed one subsystem, a configuration that once
crashed a parser — is stored as one JSON file so it replays forever as a
regression test (``tests/test_corpus_replay.py``) and as seed input for
future fuzzing sessions.

A case stores either a generator ``seed`` (with optional profile
overrides) or an explicit ``spec`` (for shrunken counterexamples whose
shape no seed reproduces).  ``expect`` records the verdict the oracle
must reach on replay: ``"equivalent"`` for fixed/never-broken cases.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .generators import GeneratorProfile, NetworkSpec, generate_spec

#: tests/corpus relative to the repository root — the default location.
DEFAULT_CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))),
    "tests",
    "corpus",
)


@dataclass
class CorpusCase:
    """One stored fuzz case."""

    name: str
    description: str = ""
    seed: Optional[int] = None
    profile: Dict = field(default_factory=dict)   # GeneratorProfile overrides
    spec: Optional[NetworkSpec] = None            # explicit shrunken spec
    expect: str = "equivalent"
    metadata: Dict = field(default_factory=dict)  # e.g. ground-truth verdicts
    path: Optional[str] = None                    # where it was loaded from

    def resolve_spec(self) -> NetworkSpec:
        """Materialize the network this case describes."""
        if self.spec is not None:
            return self.spec
        if self.seed is None:
            raise ValueError(f"corpus case {self.name!r} has neither "
                             "a spec nor a seed")
        profile = GeneratorProfile(**self.profile) if self.profile else None
        return generate_spec(self.seed, profile)

    def to_dict(self) -> Dict:
        data: Dict = {
            "name": self.name,
            "description": self.description,
            "expect": self.expect,
        }
        if self.seed is not None:
            data["seed"] = self.seed
        if self.profile:
            data["profile"] = dict(self.profile)
        if self.spec is not None:
            data["spec"] = self.spec.to_dict()
        if self.metadata:
            data["metadata"] = dict(self.metadata)
        return data

    @classmethod
    def from_dict(cls, data: Dict, path: Optional[str] = None) -> "CorpusCase":
        spec = None
        if data.get("spec") is not None:
            spec = NetworkSpec.from_dict(data["spec"])
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            seed=data.get("seed"),
            profile=data.get("profile", {}),
            spec=spec,
            expect=data.get("expect", "equivalent"),
            metadata=data.get("metadata", {}),
            path=path,
        )


def save_case(case: CorpusCase, directory: Optional[str] = None) -> str:
    """Write one case as ``<directory>/<name>.json``; returns the path."""
    directory = directory or DEFAULT_CORPUS_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{case.name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(directory: Optional[str] = None) -> List[CorpusCase]:
    """Load every ``*.json`` case in the corpus directory, sorted by name."""
    directory = directory or DEFAULT_CORPUS_DIR
    if not os.path.isdir(directory):
        return []
    cases = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json"):
            continue
        path = os.path.join(directory, entry)
        with open(path, "r", encoding="utf-8") as handle:
            cases.append(CorpusCase.from_dict(json.load(handle), path=path))
    return cases
