"""Command-line interface: ``python -m repro <command> ...``.

Commands:

``verify``     run S2 on a snapshot directory (or a synthesized topology)
               and report reachability plus resource usage; ``--trace-out``
               / ``--metrics-out`` record a Perfetto timeline and metrics;
``report``     per-phase time breakdown from a recorded trace;
``partition``  show how a snapshot would be split across workers;
``shards``     show the prefix shards (DPDG components and packing);
``synthesize`` write a FatTree or DCN snapshot to a directory;
``trace``      print the forwarding paths of one source→destination pair;
``fuzz``       differentially fuzz the engines with random networks;
``worker``     run a standalone TCP worker listener for ``--runtime
               socket`` with ``--worker-hosts`` (multi-host deployments);
``serve``      run a resident verifier session: converged state stays
               live in the worker fleet, config/link deltas recompute
               incrementally (epoch-fenced), queries answer from the
               last committed epoch over a line-JSON TCP API;
``top``        live console over a serving session: per-worker telemetry
               frames, epoch/queue state, and the event journal tail.

``verify``, ``worker``, and ``serve`` accept ``--metrics-listen
HOST:PORT`` to expose an OpenMetrics (Prometheus-scrapeable) HTTP
endpoint while they run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config.loader import Snapshot, load_snapshot_dir, write_snapshot_dir
from .core.s2 import S2Verifier
from .dataplane.queries import Query
from .dist.controller import S2Options
from .dist.partition import SCHEMES, estimate_loads, partition
from .dist.sharding import build_dpdg, make_shards
from .harness.reporting import format_table
from .net.ip import Prefix


def _load(args) -> Snapshot:
    if args.snapshot == "fattree":
        from .net.fattree import build_fattree

        return build_fattree(args.k)
    if args.snapshot == "dcn":
        from .net.dcn import build_dcn

        return build_dcn(scale=args.scale)
    if args.snapshot == "folded-clos":
        from .net.folded_clos import build_folded_clos

        return build_folded_clos(
            dcs=args.dcs,
            pods=args.pods,
            leaves=args.leaves,
            spines=args.spines,
            fanout=args.fanout,
        )
    return load_snapshot_dir(args.snapshot)


def _add_snapshot_args(parser) -> None:
    parser.add_argument(
        "snapshot",
        help="snapshot directory, or 'fattree' / 'dcn' / 'folded-clos' "
        "to synthesize",
    )
    parser.add_argument("--k", type=int, default=4, help="FatTree pods")
    parser.add_argument("--scale", type=int, default=1, help="DCN scale")
    parser.add_argument("--dcs", type=int, default=2,
                        help="folded-Clos datacenters")
    parser.add_argument("--pods", type=int, default=2,
                        help="folded-Clos pods per DC")
    parser.add_argument("--leaves", type=int, default=2,
                        help="folded-Clos leaves per pod")
    parser.add_argument("--spines", type=int, default=2,
                        help="folded-Clos spines per pod")
    parser.add_argument("--fanout", type=int, default=1,
                        help="folded-Clos super-spines per plane")


def cmd_verify(args) -> int:
    snapshot = _load(args)
    fault_plan = None
    if args.inject_fault:
        from .dist.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_args(
                args.inject_fault, seed=args.fault_seed
            )
        except ValueError as exc:
            print(f"bad --inject-fault spec: {exc}", file=sys.stderr)
            return 2
    from .dist.faults import RetryPolicy

    policy_overrides = {}
    if args.rpc_timeout is not None:
        policy_overrides["call_timeout"] = args.rpc_timeout
    if args.rpc_retries is not None:
        policy_overrides["max_call_retries"] = args.rpc_retries
    worker_hosts = None
    if args.worker_hosts:
        worker_hosts = [
            spec for spec in args.worker_hosts.split(",") if spec.strip()
        ]
        if args.runtime != "socket":
            print(
                "--worker-hosts requires --runtime socket", file=sys.stderr
            )
            return 2
    options = S2Options(
        num_workers=args.workers,
        num_shards=args.shards,
        partition_scheme=args.scheme,
        enforce_memory=not args.no_memory_limit,
        runtime=args.runtime,
        worker_hosts=worker_hosts,
        store_dir=args.store_dir,
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(**policy_overrides),
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        bdd_kernel=args.bdd_kernel,
    )
    if args.resume:
        if not args.store_dir:
            print("--resume requires --store-dir", file=sys.stderr)
            return 2
        try:
            verifier = S2Verifier.resume(snapshot, options)
        except ValueError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
    else:
        verifier = S2Verifier(snapshot, options)
    metrics_server = None
    if args.metrics_listen:
        from .dist.transport import parse_hostport
        from .obs.openmetrics import MetricsHTTPServer

        try:
            mhost, mport = parse_hostport(args.metrics_listen)
        except ValueError as exc:
            print(f"bad --metrics-listen spec: {exc}", file=sys.stderr)
            return 2
        metrics_server = MetricsHTTPServer(
            verifier.controller.metrics_snapshot,
            host=mhost,
            port=mport,
        )
        print(
            f"metrics on http://{metrics_server.address}/metrics",
            flush=True,
        )
    with verifier:
        query = None
        if args.src and args.dst:
            prefix = Prefix.parse(args.prefix) if args.prefix else None
            query = Query.single_pair(args.src, args.dst, prefix)
        result = verifier.verify(query=query, check_loops=args.check_loops)
        print(result.summary())
        if result.cp_stats is not None and (
            result.cp_stats.worker_failures
            or result.cp_stats.shards_skipped
            or fault_plan is not None
        ):
            cp = result.cp_stats
            print(
                f"fault tolerance: {cp.worker_failures} worker failures, "
                f"{cp.shard_replays} shard replays, "
                f"{cp.shards_skipped} shards skipped on resume, "
                f"{cp.forced_rounds} rounds forced by dropped batches"
                + (" [sequential fallback]" if cp.sequential_fallback else "")
            )
        if result.loop_violations:
            print(f"loops found: {len(result.loop_violations)}")
            for violation in result.loop_violations[:5]:
                print(f"  at {violation.node}: {violation.example}")
        if args.verbose and result.report is not None:
            rows = [
                [
                    w.name,
                    w.node_count,
                    f"{w.peak_bytes / (1 << 20):.2f}MB",
                    round(w.modeled_time),
                    f"{w.rpc_bytes_sent / 1e3:.0f}KB",
                ]
                for w in result.report.workers
            ]
            print()
            print(
                format_table(
                    ["worker", "nodes", "peak-mem", "modeled-time", "rpc"],
                    rows,
                )
            )
        exit_code = 0 if result.ok else 1
        if args.ground_truth and result.ok:
            from .dataplane.verifier import verifier_from_ribs
            from .groundtruth import audit_verifier

            dpv = verifier_from_ribs(snapshot, verifier.collected_ribs())
            gt = audit_verifier(dpv, seed=args.fault_seed)
            print(gt.summary())
            for mismatch in gt.mismatches[:10]:
                print(f"  {mismatch.describe()}")
            if args.ground_truth_report:
                import json

                with open(args.ground_truth_report, "w") as handle:
                    json.dump(gt.to_dict(), handle, indent=2)
                print(f"ground-truth report written to "
                      f"{args.ground_truth_report}")
            if not gt.ok:
                exit_code = 1
    if metrics_server is not None:
        metrics_server.close()
    # Trace shards are merged (and the metrics file written) by
    # controller.close(), i.e. when the `with` block above exits.
    if args.trace_out:
        print(f"trace written to {args.trace_out} "
              f"(load in https://ui.perfetto.dev or chrome://tracing)")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return exit_code


def cmd_partition(args) -> int:
    snapshot = _load(args)
    loads = estimate_loads(snapshot)
    result = partition(
        snapshot, args.workers, scheme=args.scheme
    )
    rows = []
    for worker_id, members in enumerate(result.segments()):
        load = sum(loads.get(n, 1) for n in members)
        preview = ", ".join(members[:6]) + (" ..." if len(members) > 6 else "")
        rows.append([worker_id, len(members), load, preview])
    print(
        format_table(
            ["worker", "nodes", "est-load", "members"],
            rows,
            title=f"{args.scheme} partition of {snapshot.name} "
            f"(edge cut {result.edge_cut(snapshot.topology)}, "
            f"imbalance {result.imbalance(loads):.2f})",
        )
    )
    return 0


def cmd_shards(args) -> int:
    snapshot = _load(args)
    dpdg = build_dpdg(snapshot)
    components = dpdg.weakly_connected_components()
    print(
        f"{len(dpdg.prefixes)} prefixes, {len(dpdg.edges)} dependencies, "
        f"{len(components)} independent components "
        f"(largest: {len(components[0]) if components else 0})"
    )
    shards = make_shards(snapshot, args.shards)
    rows = []
    for shard in shards:
        sample = ", ".join(str(p) for p in sorted(shard.prefixes)[:4])
        if len(shard) > 4:
            sample += " ..."
        rows.append([shard.index, len(shard), sample])
    print(format_table(["shard", "prefixes", "sample"], rows))
    return 0


def cmd_synthesize(args) -> int:
    if args.kind == "fattree":
        from .net.fattree import FatTreeSpec, render_configs

        texts = render_configs(
            FatTreeSpec(k=args.k, juniper_fraction=args.juniper_fraction)
        )
    else:
        from .net.dcn import default_spec, render_configs

        texts = render_configs(default_spec(args.scale))
    write_snapshot_dir(args.out, texts)
    print(f"wrote {len(texts)} device configs to {args.out}/configs/")
    return 0


def cmd_trace(args) -> int:
    snapshot = _load(args)
    options = S2Options(
        num_workers=args.workers, partition_scheme=args.scheme
    )
    from .dataplane.forwarding import FinalState
    from .dist.controller import S2Controller

    with S2Controller(snapshot, options) as controller:
        controller.run_control_plane()
        controller.build_data_plane()
        dpo = controller.dpo
        header = (
            options.encoding.prefix_bdd(dpo.engine, Prefix.parse(args.prefix))
            if args.prefix
            else 1
        )
        finals = dpo.forward([args.src], header, trace=True)
        shown = 0
        for final in sorted(finals, key=lambda f: (f.state.value, f.path or ())):
            if args.dst and final.node != args.dst:
                continue
            path = " -> ".join(final.path or (final.node,))
            print(f"[{final.state.value:9s}] {path}")
            shown += 1
        if not shown:
            print("no matching forwarding paths")
            return 1
    return 0


def cmd_report(args) -> int:
    from .obs.report import render_report

    if args.trace is None and not args.journal:
        print("report needs a trace file and/or --journal", file=sys.stderr)
        return 2
    if args.trace is not None:
        try:
            print(
                render_report(
                    args.trace,
                    by_process=args.by_process,
                    top=args.top,
                    category=args.category,
                )
            )
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.trace}: {exc}", file=sys.stderr)
            return 2
    if args.journal:
        from .obs.journal import read_journal
        from .obs.report import render_journal

        try:
            events = read_journal(args.journal)
        except OSError as exc:
            print(
                f"cannot read journal {args.journal}: {exc}", file=sys.stderr
            )
            return 2
        if args.trace is not None:
            print()
        print(render_journal(events, top=args.top))
    return 0


def cmd_fuzz(args) -> int:
    import time

    from .fuzz.corpus import CorpusCase, save_case
    from .fuzz.generators import GeneratorProfile, generate_spec
    from .fuzz.oracle import CheckPlan, DifferentialOracle
    from .fuzz.shrink import shrink_spec

    def _every(value, default):
        return default if value is None else value

    if args.smoke:
        # The pinned CI configuration: small networks, every runtime and
        # fault injection sampled, finishes well inside a minute.
        iterations = args.iterations if args.iterations is not None else 60
        profile = GeneratorProfile.smoke()
        process_every = _every(args.process_every, 20)
        faults_every = _every(args.faults_every, 10)
        host_loss_every = _every(args.host_loss_every, 12)
        dataplane_every = _every(args.dataplane_every, 15)
        socket_every = _every(args.socket_every, 30)
        groundtruth_every = _every(args.groundtruth_every, 5)
    else:
        iterations = args.iterations if args.iterations is not None else 100
        profile = {
            "default": GeneratorProfile(),
            "smoke": GeneratorProfile.smoke(),
            "plain": GeneratorProfile.plain(),
        }[args.profile]
        process_every = _every(args.process_every, 25)
        faults_every = _every(args.faults_every, 0)
        host_loss_every = _every(args.host_loss_every, 0)
        dataplane_every = _every(args.dataplane_every, 0)
        socket_every = _every(args.socket_every, 0)
        groundtruth_every = _every(args.groundtruth_every, 0)

    started = time.perf_counter()
    failures = 0
    total_nodes = 0
    total_features = 0
    for i in range(iterations):
        seed = args.seed + i
        spec = generate_spec(seed, profile)
        total_nodes += spec.size
        total_features += spec.feature_count()
        plan = CheckPlan(
            include_threaded=not args.no_threaded,
            include_process=bool(process_every) and i % process_every == 0,
            include_faults=bool(faults_every) and i % faults_every == 0,
            include_host_loss=bool(host_loss_every)
            and i % host_loss_every == 0,
            include_socket=bool(socket_every) and i % socket_every == 0,
            check_dataplane=bool(dataplane_every)
            and i % dataplane_every == 0,
            include_groundtruth=bool(groundtruth_every)
            and i % groundtruth_every == 0,
            fault_seed=seed,
        )
        report = DifferentialOracle(plan).check(spec)
        if report.ok:
            if args.verbose:
                print(f"seed {seed}: ok ({spec.size} nodes, "
                      f"{spec.feature_count()} features)")
            continue
        failures += 1
        print(f"seed {seed}: DIVERGENCE")
        print(report.describe())
        if report.baseline_error is not None:
            continue  # nothing to minimize against a broken baseline
        final_spec = spec
        if args.shrink:
            oracle = DifferentialOracle(CheckPlan.quick())

            def still_diverges(candidate) -> bool:
                inner = oracle.check(candidate)
                return inner.baseline_error is None and not inner.ok

            if still_diverges(spec):
                shrunk = shrink_spec(spec, still_diverges)
                final_spec = shrunk.spec
                print(
                    f"  shrunk {spec.size} nodes/"
                    f"{spec.feature_count()} features -> "
                    f"{final_spec.size} nodes/"
                    f"{final_spec.feature_count()} features "
                    f"({shrunk.evaluations} evaluations)"
                )
        if args.corpus_dir:
            case = CorpusCase(
                name=f"fuzz-divergence-seed{seed}",
                description=(
                    "Auto-saved by `repro fuzz`: "
                    + report.divergences[0].describe()
                ),
                spec=final_spec,
                expect="divergent",
            )
            path = save_case(case, args.corpus_dir)
            print(f"  saved to {path}")
        if args.fail_fast:
            break
    elapsed = time.perf_counter() - started
    ran = i + 1 if iterations else 0
    print(
        f"{ran - failures}/{ran} equivalent in {elapsed:.1f}s "
        f"(avg {total_nodes / max(1, ran):.1f} nodes, "
        f"{total_features / max(1, ran):.1f} features per network)"
    )
    return 1 if failures else 0


def cmd_worker(args) -> int:
    from .dist.socket_runtime import serve_worker

    try:
        serve_worker(args.listen, metrics_listen=args.metrics_listen)
    except ValueError as exc:
        print(f"bad --listen spec: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    print("worker: drained and shut down cleanly", flush=True)
    return 0


def cmd_serve(args) -> int:
    import signal

    from .dist.transport import parse_hostport
    from .serve.api import SessionServer
    from .serve.session import VerifierSession

    snapshot = _load(args)
    fault_plan = None
    if args.inject_fault:
        from .dist.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_args(
                args.inject_fault, seed=args.fault_seed
            )
        except ValueError as exc:
            print(f"bad --inject-fault spec: {exc}", file=sys.stderr)
            return 2
    try:
        host, port = parse_hostport(args.listen)
    except ValueError as exc:
        print(f"bad --listen spec: {exc}", file=sys.stderr)
        return 2
    options = S2Options(
        num_workers=args.workers,
        num_shards=args.shards,
        partition_scheme=args.scheme,
        runtime=args.runtime,
        store_dir=args.store_dir,
        fault_plan=fault_plan,
    )
    session = VerifierSession(
        snapshot,
        options,
        queue_limit=args.queue_limit,
        ground_truth_every=args.ground_truth_check,
    )
    server = SessionServer(session, host=host, port=port)
    metrics_server = None
    if args.metrics_listen:
        from .obs.openmetrics import MetricsHTTPServer

        try:
            mhost, mport = parse_hostport(args.metrics_listen)
        except ValueError as exc:
            print(f"bad --metrics-listen spec: {exc}", file=sys.stderr)
            session.close()
            return 2
        metrics_server = MetricsHTTPServer(
            session.metrics_snapshot,
            host=mhost,
            port=mport,
            journal=session.journal,
            status_fn=session.statusz,
        )
        print(
            f"metrics on http://{metrics_server.address}/metrics",
            flush=True,
        )

    def _shutdown(_signum, _frame) -> None:
        server.stop()

    try:
        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    except ValueError:
        pass  # not the main thread (tests drive serve_forever directly)
    health = session.health()
    boot = "warm boot" if health["warm_boot"] else "cold start"
    print(
        f"serving {snapshot.name} on {server.host}:{server.port} "
        f"(epoch {health['epoch']}, {health['endpoints']} endpoints, "
        f"{boot})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if metrics_server is not None:
            metrics_server.close()
        session.close()
    print("serve: drained and shut down cleanly", flush=True)
    return 0


def cmd_top(args) -> int:
    from .dist.transport import parse_hostport
    from .obs.top import run_top

    try:
        host, port = parse_hostport(args.address)
    except ValueError as exc:
        print(f"bad address: {exc}", file=sys.stderr)
        return 2
    ansi = False if args.no_ansi else None
    iterations = 1 if args.once else args.iterations
    return run_top(
        host,
        port,
        interval=args.interval,
        iterations=iterations,
        events_limit=args.events,
        ansi=ansi,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S2: distributed network configuration verification",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="verify a snapshot with S2")
    _add_snapshot_args(verify)
    verify.add_argument("--workers", type=int, default=4)
    verify.add_argument("--shards", type=int, default=0)
    verify.add_argument("--scheme", choices=SCHEMES, default="metis")
    verify.add_argument("--src", help="single-pair source node")
    verify.add_argument("--dst", help="single-pair destination node")
    verify.add_argument("--prefix", help="header-space prefix for the query")
    verify.add_argument("--check-loops", action="store_true")
    verify.add_argument("--no-memory-limit", action="store_true")
    verify.add_argument(
        "--bdd-kernel",
        choices=["flat", "dict"],
        default="flat",
        help="BDD kernel: 'flat' (array node table + direct-mapped op "
        "cache, default) or 'dict' (the reference hash-consing engine)",
    )
    verify.add_argument(
        "--runtime",
        choices=["sequential", "threaded", "process", "socket"],
        default="sequential",
    )
    verify.add_argument(
        "--worker-hosts",
        metavar="HOST:PORT,...",
        help="socket runtime: comma-separated listeners (started with "
        "`repro worker --listen`) to dial instead of forking local "
        "workers",
    )
    verify.add_argument(
        "--rpc-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-call deadline for worker RPCs (default 120)",
    )
    verify.add_argument(
        "--rpc-retries",
        type=int,
        default=None,
        metavar="N",
        help="transport retries per RPC before the worker is declared "
        "dead (default 3)",
    )
    verify.add_argument(
        "--store-dir",
        help="persistent spool directory (enables checkpoint/resume)",
    )
    verify.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed run from --store-dir's manifest",
    )
    verify.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="inject a fault, e.g. 'crash:worker=1,round=3' or "
        "'host_loss:worker=2,heal_after=100' (repeatable; kinds: crash, "
        "delay, error, drop, duplicate, respawn_fail, host_loss — a "
        "permanently dead host whose shards migrate to the survivors — "
        "and, socket runtime only, partition, reorder, slow_link, "
        "torn_frame)",
    )
    verify.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for probabilistic fault specs",
    )
    verify.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a merged Chrome trace-event file (Perfetto-loadable); "
        "per-participant JSONL shards land next to it in PATH.shards/",
    )
    verify.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's metrics snapshot (counters/gauges/"
        "histograms plus per-worker telemetry) as JSON",
    )
    verify.add_argument(
        "--metrics-listen",
        metavar="HOST:PORT",
        help="expose a live OpenMetrics HTTP endpoint (/metrics) while "
        "the run is in flight (port 0 picks an ephemeral port)",
    )
    verify.add_argument(
        "--ground-truth",
        action="store_true",
        help="after verifying, walk sampled concrete packets through "
        "the computed FIBs (no BDDs involved) and assert they agree "
        "with the symbolic verdicts",
    )
    verify.add_argument(
        "--ground-truth-report",
        metavar="PATH",
        help="write the ground-truth audit (counts + any mismatch "
        "hop-traces) as JSON",
    )
    verify.add_argument("-v", "--verbose", action="store_true")
    verify.set_defaults(func=cmd_verify)

    part = sub.add_parser("partition", help="preview a worker partition")
    _add_snapshot_args(part)
    part.add_argument("--workers", type=int, default=4)
    part.add_argument("--scheme", choices=SCHEMES, default="metis")
    part.set_defaults(func=cmd_partition)

    shards = sub.add_parser("shards", help="preview the prefix shards")
    _add_snapshot_args(shards)
    shards.add_argument("--shards", type=int, default=20)
    shards.set_defaults(func=cmd_shards)

    synth = sub.add_parser("synthesize", help="write a synthetic snapshot")
    synth.add_argument("kind", choices=["fattree", "dcn"])
    synth.add_argument("out", help="output directory")
    synth.add_argument("--k", type=int, default=4)
    synth.add_argument("--scale", type=int, default=1)
    synth.add_argument("--juniper-fraction", type=float, default=0.0)
    synth.set_defaults(func=cmd_synthesize)

    report = sub.add_parser(
        "report",
        help="per-phase time breakdown from a recorded trace",
        description="Aggregate the spans of a trace (the merged Chrome "
        "trace-event file, one JSONL shard, or a whole shard directory) "
        "into a per-phase table: count, total time, mean, and share of "
        "the traced wall clock.",
    )
    report.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="trace file (--trace-out output), shard file, or shard dir",
    )
    report.add_argument(
        "--journal",
        metavar="PATH",
        help="render a serve session's event journal (the journal.jsonl "
        "in its store directory, or a CI artifact) as a table",
    )
    report.add_argument(
        "--by-process",
        action="store_true",
        help="split each phase per participant (controller/workerN)",
    )
    report.add_argument("--top", type=int, default=None, metavar="N",
                        help="show only the N largest phases")
    report.add_argument("--category", metavar="CAT",
                        help="only spans of this category (cpo, dpo, rpc, "
                        "check, run)")
    report.set_defaults(func=cmd_report)

    trace = sub.add_parser("trace", help="print forwarding paths")
    _add_snapshot_args(trace)
    trace.add_argument("--workers", type=int, default=4)
    trace.add_argument("--scheme", choices=SCHEMES, default="metis")
    trace.add_argument("--src", required=True)
    trace.add_argument("--dst")
    trace.add_argument("--prefix")
    trace.set_defaults(func=cmd_trace)

    fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the engines with random networks",
        description="Generate random vendor configurations and check "
        "that the monolithic engine, the sharded monolithic engine, and "
        "every distributed runtime compute identical RIBs (and, when "
        "sampled, identical data-plane verdicts and fault-tolerant "
        "results).  Exits 1 on any divergence.",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first generator seed (iteration i uses seed+i)")
    fuzz.add_argument("--iterations", type=int, default=None,
                      help="number of random networks (default 100; 60 "
                      "with --smoke)")
    fuzz.add_argument("--shrink", action="store_true",
                      help="minimize any divergent network before reporting")
    fuzz.add_argument("--corpus-dir", metavar="DIR",
                      help="save (shrunken) divergent cases as JSON here")
    fuzz.add_argument("--smoke", action="store_true",
                      help="pinned CI configuration: small networks, all "
                      "runtimes and fault injection sampled, < 1 minute")
    fuzz.add_argument("--profile",
                      choices=["default", "smoke", "plain"],
                      default="default",
                      help="generator profile (network size and feature "
                      "probabilities)")
    fuzz.add_argument("--process-every", type=int, default=None,
                      metavar="N",
                      help="include the process-backed runtime every Nth "
                      "iteration (0 = never; default 25, or 20 with "
                      "--smoke)")
    fuzz.add_argument("--faults-every", type=int, default=None, metavar="N",
                      help="include a fault-injected run every Nth "
                      "iteration (0 = never; default 0, or 10 with "
                      "--smoke)")
    fuzz.add_argument("--host-loss-every", type=int, default=None,
                      metavar="N",
                      help="include a run that permanently loses one "
                      "worker (shards migrate to the survivors) every "
                      "Nth iteration (0 = never; default 0, or 12 with "
                      "--smoke)")
    fuzz.add_argument("--dataplane-every", type=int, default=None,
                      metavar="N",
                      help="diff all-pair data-plane verdicts every Nth "
                      "iteration (0 = never; default 0, or 15 with "
                      "--smoke)")
    fuzz.add_argument("--socket-every", type=int, default=None,
                      metavar="N",
                      help="include the socket runtime (with a sampled "
                      "network-fault plan) every Nth iteration (0 = "
                      "never; default 0, or 30 with --smoke)")
    fuzz.add_argument("--groundtruth-every", type=int, default=None,
                      metavar="N",
                      help="adjudicate verdicts with concrete packet "
                      "walks over the computed FIBs every Nth iteration "
                      "(0 = never; default 0, or 5 with --smoke)")
    fuzz.add_argument("--no-threaded", action="store_true",
                      help="skip the threaded-runtime variant")
    fuzz.add_argument("--fail-fast", action="store_true",
                      help="stop at the first divergence")
    fuzz.add_argument("-v", "--verbose", action="store_true")
    fuzz.set_defaults(func=cmd_fuzz)

    worker = sub.add_parser(
        "worker",
        help="run a standalone TCP worker listener (socket runtime)",
        description="Serve one S2 worker over the framed RPC protocol. "
        "The controller (repro verify --runtime socket --worker-hosts "
        "...) configures it over the wire — identity, snapshot, and "
        "assignment all arrive via RPC, so one listener serves many "
        "runs.  Blocks until the controller stops it.",
    )
    worker.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (port 0 picks an ephemeral port, printed on "
        "startup; default 127.0.0.1:0)",
    )
    worker.add_argument(
        "--metrics-listen",
        metavar="HOST:PORT",
        help="expose this worker's own OpenMetrics HTTP endpoint "
        "(/metrics, /statusz) for direct scraping",
    )
    worker.set_defaults(func=cmd_worker)

    serve = sub.add_parser(
        "serve",
        help="run a resident verifier session (line-JSON TCP API)",
        description="Verify the snapshot once, then keep the converged "
        "state live in the worker fleet.  Clients send config/link "
        "deltas (recomputed incrementally under epoch fencing) and "
        "reachability queries (answered from the last committed epoch) "
        "as one JSON object per line.  SIGTERM/SIGINT shut down "
        "gracefully: in-flight work finishes, state is flushed, exit 0.",
    )
    _add_snapshot_args(serve)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--shards",
        type=int,
        default=8,
        help="prefix shards (sharding is what makes announce-only "
        "deltas incremental; default 8)",
    )
    serve.add_argument("--scheme", choices=SCHEMES, default="metis")
    serve.add_argument(
        "--runtime",
        choices=["sequential", "threaded", "process", "socket"],
        default="sequential",
    )
    serve.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address of the line-JSON API (port 0 picks an "
        "ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--store-dir",
        help="persistent spool directory; an existing committed epoch "
        "there is warm-booted (skipping the cold-start convergence) "
        "when its manifest, epoch tag, and options all check out",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        metavar="N",
        help="admission queue depth; further deltas are refused with "
        "'busy' (default 8)",
    )
    serve.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="chaos for the serve loop (same specs as verify)",
    )
    serve.add_argument("--fault-seed", type=int, default=0)
    serve.add_argument(
        "--ground-truth-check",
        type=int,
        default=0,
        metavar="N",
        help="after every Nth committed epoch, spot-check the verdicts "
        "with concrete packet walks over the committed FIBs (0 = off); "
        "results appear in health and the serve.groundtruth_mismatches "
        "gauge",
    )
    serve.add_argument(
        "--metrics-listen",
        metavar="HOST:PORT",
        help="expose an OpenMetrics HTTP endpoint for this session "
        "(/metrics, /eventsz, /statusz, /healthz; port 0 picks an "
        "ephemeral port)",
    )
    serve.set_defaults(func=cmd_serve)

    top = sub.add_parser(
        "top",
        help="live console over a serving session",
        description="Poll a `repro serve` session's statusz/eventsz ops "
        "and render per-worker telemetry (epoch, round, BDD nodes, "
        "memory, respawns), session health, and the event journal tail. "
        "On a TTY the screen refreshes in place; piped output prints "
        "one frame (or --iterations frames) and exits.",
    )
    top.add_argument(
        "address",
        metavar="HOST:PORT",
        help="the serve session's line-JSON API address",
    )
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS", help="refresh period (default 1)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="render N frames then exit (default: forever on "
                     "a TTY, once otherwise)")
    top.add_argument("--events", type=int, default=10, metavar="N",
                     help="journal-tail length (default 10)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")
    top.add_argument("--no-ansi", action="store_true",
                     help="plain frames, no screen clearing")
    top.set_defaults(func=cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
