"""Command-line interface: ``python -m repro <command> ...``.

Commands:

``verify``     run S2 on a snapshot directory (or a synthesized topology)
               and report reachability plus resource usage;
``partition``  show how a snapshot would be split across workers;
``shards``     show the prefix shards (DPDG components and packing);
``synthesize`` write a FatTree or DCN snapshot to a directory;
``trace``      print the forwarding paths of one source→destination pair.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config.loader import Snapshot, load_snapshot_dir, write_snapshot_dir
from .core.s2 import S2Verifier
from .dataplane.queries import Query
from .dist.controller import S2Options
from .dist.partition import SCHEMES, estimate_loads, partition
from .dist.sharding import build_dpdg, make_shards
from .harness.reporting import format_table
from .net.ip import Prefix


def _load(args) -> Snapshot:
    if args.snapshot == "fattree":
        from .net.fattree import build_fattree

        return build_fattree(args.k)
    if args.snapshot == "dcn":
        from .net.dcn import build_dcn

        return build_dcn(scale=args.scale)
    return load_snapshot_dir(args.snapshot)


def _add_snapshot_args(parser) -> None:
    parser.add_argument(
        "snapshot",
        help="snapshot directory, or 'fattree' / 'dcn' to synthesize",
    )
    parser.add_argument("--k", type=int, default=4, help="FatTree pods")
    parser.add_argument("--scale", type=int, default=1, help="DCN scale")


def cmd_verify(args) -> int:
    snapshot = _load(args)
    fault_plan = None
    if args.inject_fault:
        from .dist.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_args(
                args.inject_fault, seed=args.fault_seed
            )
        except ValueError as exc:
            print(f"bad --inject-fault spec: {exc}", file=sys.stderr)
            return 2
    options = S2Options(
        num_workers=args.workers,
        num_shards=args.shards,
        partition_scheme=args.scheme,
        enforce_memory=not args.no_memory_limit,
        runtime=args.runtime,
        store_dir=args.store_dir,
        fault_plan=fault_plan,
    )
    if args.resume:
        if not args.store_dir:
            print("--resume requires --store-dir", file=sys.stderr)
            return 2
        try:
            verifier = S2Verifier.resume(snapshot, options)
        except ValueError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
    else:
        verifier = S2Verifier(snapshot, options)
    with verifier:
        query = None
        if args.src and args.dst:
            prefix = Prefix.parse(args.prefix) if args.prefix else None
            query = Query.single_pair(args.src, args.dst, prefix)
        result = verifier.verify(query=query, check_loops=args.check_loops)
        print(result.summary())
        if result.cp_stats is not None and (
            result.cp_stats.worker_failures
            or result.cp_stats.shards_skipped
            or fault_plan is not None
        ):
            cp = result.cp_stats
            print(
                f"fault tolerance: {cp.worker_failures} worker failures, "
                f"{cp.shard_replays} shard replays, "
                f"{cp.shards_skipped} shards skipped on resume, "
                f"{cp.forced_rounds} rounds forced by dropped batches"
                + (" [sequential fallback]" if cp.sequential_fallback else "")
            )
        if result.loop_violations:
            print(f"loops found: {len(result.loop_violations)}")
            for violation in result.loop_violations[:5]:
                print(f"  at {violation.node}: {violation.example}")
        if args.verbose and result.report is not None:
            rows = [
                [
                    w.name,
                    w.node_count,
                    f"{w.peak_bytes / (1 << 20):.2f}MB",
                    round(w.modeled_time),
                    f"{w.rpc_bytes_sent / 1e3:.0f}KB",
                ]
                for w in result.report.workers
            ]
            print()
            print(
                format_table(
                    ["worker", "nodes", "peak-mem", "modeled-time", "rpc"],
                    rows,
                )
            )
        return 0 if result.ok else 1


def cmd_partition(args) -> int:
    snapshot = _load(args)
    loads = estimate_loads(snapshot)
    result = partition(
        snapshot, args.workers, scheme=args.scheme
    )
    rows = []
    for worker_id, members in enumerate(result.segments()):
        load = sum(loads.get(n, 1) for n in members)
        preview = ", ".join(members[:6]) + (" ..." if len(members) > 6 else "")
        rows.append([worker_id, len(members), load, preview])
    print(
        format_table(
            ["worker", "nodes", "est-load", "members"],
            rows,
            title=f"{args.scheme} partition of {snapshot.name} "
            f"(edge cut {result.edge_cut(snapshot.topology)}, "
            f"imbalance {result.imbalance(loads):.2f})",
        )
    )
    return 0


def cmd_shards(args) -> int:
    snapshot = _load(args)
    dpdg = build_dpdg(snapshot)
    components = dpdg.weakly_connected_components()
    print(
        f"{len(dpdg.prefixes)} prefixes, {len(dpdg.edges)} dependencies, "
        f"{len(components)} independent components "
        f"(largest: {len(components[0]) if components else 0})"
    )
    shards = make_shards(snapshot, args.shards)
    rows = []
    for shard in shards:
        sample = ", ".join(str(p) for p in sorted(shard.prefixes)[:4])
        if len(shard) > 4:
            sample += " ..."
        rows.append([shard.index, len(shard), sample])
    print(format_table(["shard", "prefixes", "sample"], rows))
    return 0


def cmd_synthesize(args) -> int:
    if args.kind == "fattree":
        from .net.fattree import FatTreeSpec, render_configs

        texts = render_configs(
            FatTreeSpec(k=args.k, juniper_fraction=args.juniper_fraction)
        )
    else:
        from .net.dcn import default_spec, render_configs

        texts = render_configs(default_spec(args.scale))
    write_snapshot_dir(args.out, texts)
    print(f"wrote {len(texts)} device configs to {args.out}/configs/")
    return 0


def cmd_trace(args) -> int:
    snapshot = _load(args)
    options = S2Options(
        num_workers=args.workers, partition_scheme=args.scheme
    )
    from .dataplane.forwarding import FinalState
    from .dist.controller import S2Controller

    with S2Controller(snapshot, options) as controller:
        controller.run_control_plane()
        controller.build_data_plane()
        dpo = controller.dpo
        header = (
            options.encoding.prefix_bdd(dpo.engine, Prefix.parse(args.prefix))
            if args.prefix
            else 1
        )
        finals = dpo.forward([args.src], header, trace=True)
        shown = 0
        for final in sorted(finals, key=lambda f: (f.state.value, f.path or ())):
            if args.dst and final.node != args.dst:
                continue
            path = " -> ".join(final.path or (final.node,))
            print(f"[{final.state.value:9s}] {path}")
            shown += 1
        if not shown:
            print("no matching forwarding paths")
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S2: distributed network configuration verification",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="verify a snapshot with S2")
    _add_snapshot_args(verify)
    verify.add_argument("--workers", type=int, default=4)
    verify.add_argument("--shards", type=int, default=0)
    verify.add_argument("--scheme", choices=SCHEMES, default="metis")
    verify.add_argument("--src", help="single-pair source node")
    verify.add_argument("--dst", help="single-pair destination node")
    verify.add_argument("--prefix", help="header-space prefix for the query")
    verify.add_argument("--check-loops", action="store_true")
    verify.add_argument("--no-memory-limit", action="store_true")
    verify.add_argument(
        "--runtime",
        choices=["sequential", "threaded", "process"],
        default="sequential",
    )
    verify.add_argument(
        "--store-dir",
        help="persistent spool directory (enables checkpoint/resume)",
    )
    verify.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed run from --store-dir's manifest",
    )
    verify.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="inject a fault, e.g. 'crash:worker=1,round=3' or "
        "'drop:worker=0,times=2' (repeatable; kinds: crash, delay, "
        "error, drop, duplicate, respawn_fail)",
    )
    verify.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for probabilistic fault specs",
    )
    verify.add_argument("-v", "--verbose", action="store_true")
    verify.set_defaults(func=cmd_verify)

    part = sub.add_parser("partition", help="preview a worker partition")
    _add_snapshot_args(part)
    part.add_argument("--workers", type=int, default=4)
    part.add_argument("--scheme", choices=SCHEMES, default="metis")
    part.set_defaults(func=cmd_partition)

    shards = sub.add_parser("shards", help="preview the prefix shards")
    _add_snapshot_args(shards)
    shards.add_argument("--shards", type=int, default=20)
    shards.set_defaults(func=cmd_shards)

    synth = sub.add_parser("synthesize", help="write a synthetic snapshot")
    synth.add_argument("kind", choices=["fattree", "dcn"])
    synth.add_argument("out", help="output directory")
    synth.add_argument("--k", type=int, default=4)
    synth.add_argument("--scale", type=int, default=1)
    synth.add_argument("--juniper-fraction", type=float, default=0.0)
    synth.set_defaults(func=cmd_synthesize)

    trace = sub.add_parser("trace", help="print forwarding paths")
    _add_snapshot_args(trace)
    trace.add_argument("--workers", type=int, default=4)
    trace.add_argument("--scheme", choices=SCHEMES, default="metis")
    trace.add_argument("--src", required=True)
    trace.add_argument("--dst")
    trace.add_argument("--prefix")
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
