"""Route value types shared by the control plane and the data plane.

Routes are immutable: the decision process and route maps never mutate a
route in place but derive new ones (route maps go through a mutable
:class:`~repro.config.policy.RouteBuilder` and re-freeze).  Immutability is
what makes it safe to hold the same route object in many RIBs across
workers and to hash routes for convergence detection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

from ..net.ip import Prefix, format_ip


class Protocol(enum.Enum):
    """Route provenance; the value doubles as the display name."""

    CONNECTED = "connected"
    STATIC = "static"
    OSPF = "ospf"
    BGP = "bgp"
    IBGP = "ibgp"
    AGGREGATE = "aggregate"

    @property
    def admin_distance(self) -> int:
        return _ADMIN_DISTANCE[self]


_ADMIN_DISTANCE = {
    Protocol.CONNECTED: 0,
    Protocol.STATIC: 1,
    Protocol.BGP: 20,
    Protocol.AGGREGATE: 20,
    Protocol.OSPF: 110,
    Protocol.IBGP: 200,
}


class Origin(enum.IntEnum):
    """BGP origin attribute; lower is preferred in the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class Route:
    """A generic (non-BGP) RIB entry."""

    prefix: Prefix
    protocol: Protocol
    next_hop: Optional[int] = None      # next-hop IP; None for connected
    next_hop_node: Optional[str] = None  # resolved adjacent device
    interface: Optional[str] = None     # static route out of an interface
    metric: int = 0
    admin_distance: int = 0
    tag: int = 0
    discard: bool = False               # Null0 static route

    def describe(self) -> str:
        nh = format_ip(self.next_hop) if self.next_hop is not None else "direct"
        return f"{self.prefix} [{self.protocol.value}] via {nh}"


@dataclass(frozen=True)
class BgpRoute:
    """A BGP path with the attributes the decision process compares.

    ``from_node`` records the advertising device; it is what the FIB builder
    resolves to an outgoing interface, and what convergence hashing uses to
    distinguish otherwise-equal ECMP paths.
    """

    prefix: Prefix
    next_hop: int
    from_node: str
    as_path: Tuple[int, ...] = ()
    local_pref: int = 100
    med: int = 0
    origin: Origin = Origin.IGP
    communities: FrozenSet[int] = frozenset()
    weight: int = 0
    ebgp: bool = True
    originator_id: int = 0              # router-id of the advertiser
    igp_cost: int = 0
    aggregate: bool = False
    suppressed: bool = False            # more-specific under summary-only

    @property
    def protocol(self) -> Protocol:
        if self.aggregate:
            return Protocol.AGGREGATE
        return Protocol.BGP if self.ebgp else Protocol.IBGP

    @property
    def as_path_length(self) -> int:
        return len(self.as_path)

    def with_prepend(self, asns: Tuple[int, ...]) -> "BgpRoute":
        return replace(self, as_path=asns + self.as_path)

    def has_as(self, asn: int) -> bool:
        return asn in self.as_path

    def describe(self) -> str:
        path = " ".join(str(a) for a in self.as_path) or "(empty)"
        return (
            f"{self.prefix} via {format_ip(self.next_hop)} "
            f"as-path [{path}] lp={self.local_pref} med={self.med}"
        )


def decision_key(route: BgpRoute):
    """Sort key implementing the BGP decision process (best sorts first).

    Order: higher weight, higher local-pref, shorter AS path, lower origin,
    lower MED, eBGP over iBGP, lower IGP cost, lower originator router-id,
    then lower advertiser name as the final deterministic tiebreak.
    """
    return (
        -route.weight,
        -route.local_pref,
        route.as_path_length,
        int(route.origin),
        route.med,
        0 if route.ebgp else 1,
        route.igp_cost,
        route.originator_id,
        route.from_node,
    )


def ecmp_key(route: BgpRoute):
    """Key prefix under which two routes are ECMP-equivalent.

    Everything in :func:`decision_key` except the final router-id/name
    tiebreaks: routes equal on this key may be installed together up to
    ``maximum-paths``.
    """
    return (
        -route.weight,
        -route.local_pref,
        route.as_path_length,
        int(route.origin),
        route.med,
        0 if route.ebgp else 1,
        route.igp_cost,
    )
