"""Control-plane substrate: routes, RIBs, protocol models, and the engine."""

from .engine import (  # noqa: F401
    BgpResult,
    ConvergenceError,
    SimulationEngine,
    SimulationStats,
    collect_network_prefixes,
)
from .node import BgpSession, RouterNode  # noqa: F401
from .ospf import OspfProcess  # noqa: F401
from .rib import BgpRib, MainRib  # noqa: F401
from .route import (  # noqa: F401
    BgpRoute,
    Origin,
    Protocol,
    Route,
    decision_key,
    ecmp_key,
)
