"""OSPF model.

The paper's networks are BGP-only, but S2's control-plane orchestrator
schedules IGPs before EGPs (§4.2), so the substrate supports OSPF.  To fit
the same pull-based round framework as BGP (and therefore distribute the
same way), OSPF is computed as a distance-vector fixed point over link
costs rather than a per-node SPF over a flooded LSDB.  For intra-area
routing with ECMP this converges to exactly the shortest-path routes SPF
would produce; it simply takes O(diameter) rounds, like the BGP exchange
it runs alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..config.ast import DeviceConfig
from ..net.ip import Prefix
from ..net.topology import Topology
from .route import Protocol, Route

Resolver = Callable[[str], object]

# prefix -> (cost, frozenset of next-hop addresses)
OspfVector = Dict[Prefix, Tuple[int, FrozenSet[int]]]


@dataclass
class OspfAdjacency:
    """One OSPF-enabled link endpoint."""

    iface: str
    local_addr: int
    peer_addr: int
    neighbor: str
    cost: int
    area: int


class OspfProcess:
    """Per-node OSPF state participating in the distributed fixed point."""

    def __init__(self, config: DeviceConfig, topology: Topology) -> None:
        self.config = config
        self.name = config.hostname
        self.enabled = config.ospf is not None
        self.adjacencies: List[OspfAdjacency] = []
        self.vector: OspfVector = {}
        # Peer addresses behind a *local passive* interface: no adjacency
        # forms there, so we must not answer their pulls either.
        self._refused_peers: set = set()
        if not self.enabled:
            return
        ospf = config.ospf
        # Local prefixes of OSPF-enabled interfaces at cost 0.
        for iface_name, iface_cfg in ospf.interfaces.items():
            iface = config.interfaces.get(iface_name)
            if iface is None or iface.prefix is None or iface.shutdown:
                continue
            self.vector[iface.prefix] = (0, frozenset())
        if self.name not in topology:
            return
        for link in topology.links_of(self.name):
            local = link.local(self.name)
            iface_cfg = ospf.interfaces.get(local.interface)
            remote = link.other(self.name)
            if iface_cfg is None or iface_cfg.passive:
                if iface_cfg is not None:
                    self._refused_peers.add(
                        topology.interface_address(remote)
                    )
                continue
            self.adjacencies.append(
                OspfAdjacency(
                    iface=local.interface,
                    local_addr=topology.interface_address(local),
                    peer_addr=topology.interface_address(remote),
                    neighbor=remote.node,
                    cost=iface_cfg.cost,
                    area=iface_cfg.area,
                )
            )
        self.adjacencies.sort(key=lambda a: a.peer_addr)

    def advertise_ospf(self, to_peer_addr: Optional[int] = None) -> OspfVector:
        """The distance vector this node exports toward ``to_peer_addr``.

        A passive local interface forms no adjacency, so pulls arriving
        from its far end get nothing.  ``None`` returns the full vector
        (used by diagnostics).
        """
        if to_peer_addr is not None and to_peer_addr in self._refused_peers:
            return {}
        return dict(self.vector)

    def pull_round(self, resolver: Resolver) -> bool:
        """Relax this node's vector against every neighbor's; True if changed."""
        if not self.enabled:
            return False
        changed = False
        # Recompute from scratch each round against current neighbor state,
        # so withdrawn paths disappear (count-to-infinity cannot occur in a
        # static topology snapshot).
        fresh: OspfVector = {
            prefix: entry
            for prefix, entry in self.vector.items()
            if entry[0] == 0
        }
        for adjacency in self.adjacencies:
            neighbor = resolver(adjacency.neighbor)
            if neighbor is None:
                continue
            their_vector = neighbor.advertise_ospf(adjacency.local_addr)
            for prefix, (cost, _hops) in their_vector.items():
                total = cost + adjacency.cost
                current = fresh.get(prefix)
                if current is None or total < current[0]:
                    fresh[prefix] = (total, frozenset([adjacency.peer_addr]))
                elif total == current[0] and current[0] != 0:
                    fresh[prefix] = (
                        total,
                        current[1] | frozenset([adjacency.peer_addr]),
                    )
        if fresh != self.vector:
            self.vector = fresh
            changed = True
        return changed

    def routes(self) -> List[Route]:
        """The converged OSPF routes (excluding connected-cost-0 entries)."""
        result: List[Route] = []
        for prefix, (cost, next_hops) in sorted(self.vector.items()):
            if cost == 0:
                continue
            for next_hop in sorted(next_hops):
                result.append(
                    Route(
                        prefix=prefix,
                        protocol=Protocol.OSPF,
                        next_hop=next_hop,
                        metric=cost,
                        admin_distance=Protocol.OSPF.admin_distance,
                    )
                )
        return result
