"""The per-switch routing model (the Batfish-node equivalent).

:class:`RouterNode` wraps one device's vendor-independent config and
implements the *pull*-based route exchange of the paper's Algorithm 1: each
round, a node asks every neighbor for its current advertisement and merges
the result into its RIB.  The node is **fully agnostic** of where the
neighbor lives — it only ever calls ``resolver(name).advertise(addr, shard)``.
The distributed framework substitutes a shadow proxy for remote neighbors
(§4.2); the monolithic engine passes the real objects.

The BGP pipeline implemented here:

export:  best route → next-hop/self, MED cleared, own-ASN prepend (eBGP)
         → remove-private-AS (per the vendor's VSB mode) → export route-map
         (which may AS_PATH-overwrite) → wire
import:  eBGP loop check → local-pref reset → import route-map → adj-RIB-in

plus ``network`` origination (optionally gated by conditional
advertisement), ``aggregate-address`` with contributor activation,
``summary-only`` suppression, and ECMP selection up to ``maximum-paths``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..config.ast import Aggregate, BgpNeighbor, DeviceConfig
from ..config.policy import PolicyEngine, apply_remove_private_as
from ..net.ip import Prefix
from ..net.topology import Topology
from .rib import BgpRib, MainRib
from .route import BgpRoute, Origin, Protocol, Route

ShardFilter = Optional[FrozenSet[Prefix]]
Resolver = Callable[[str], object]


@dataclass
class BgpSession:
    """One resolved BGP session (config neighbor + topology adjacency)."""

    local_addr: int
    peer_ip: int
    remote_as: int
    neighbor: str            # resolved neighbor hostname
    iface: str               # local interface carrying the session
    import_policy: Optional[str]
    export_policy: Optional[str]
    remove_private_as: bool
    ebgp: bool

    @property
    def rib_key(self) -> str:
        """Adj-RIB-in key; distinguishes parallel sessions to one peer."""
        return f"{self.neighbor}#{self.peer_ip}"


class RouterNode:
    """A single switch's control-plane model."""

    def __init__(
        self,
        config: DeviceConfig,
        topology: Topology,
    ) -> None:
        self.config = config
        self.name = config.hostname
        self.behavior = config.behavior
        self.policy = PolicyEngine(config)
        bgp = config.bgp
        self.asn = bgp.asn if bgp else 0
        max_paths = bgp.maximum_paths if bgp else 1
        self.rib = BgpRib(max_paths=max_paths)
        self.main_rib = MainRib()
        self.router_id = self._pick_router_id()
        self.sessions: List[BgpSession] = []
        self._sessions_by_peer: Dict[int, BgpSession] = {}
        self.local_prefixes: FrozenSet[Prefix] = frozenset()
        self._shard: ShardFilter = None
        self._export_cache: Dict[int, List[BgpRoute]] = {}
        self._cache_token = -1
        # Runtime-discovered prefix dependencies (§7): populated when a
        # conditional advertisement consults a watch prefix that is not
        # part of the current shard — the signal the CPO's shard
        # refinement acts on.
        self.observed_dependencies: set = set()
        self._resolve_sessions(topology)
        self._install_connected(topology)
        self._install_static()
        self._compute_local_prefixes()

    # -- construction helpers -------------------------------------------------

    def _pick_router_id(self) -> int:
        bgp = self.config.bgp
        if bgp is not None and bgp.router_id:
            return bgp.router_id
        addresses = [
            i.address
            for i in self.config.interfaces.values()
            if i.address is not None
        ]
        if addresses:
            return min(addresses)
        return zlib.crc32(self.name.encode()) & 0xFFFFFFFF

    def _resolve_sessions(self, topology: Topology) -> None:
        """Match configured neighbors against topology adjacencies."""
        bgp = self.config.bgp
        if bgp is None or self.name not in topology:
            return
        # peer address -> (neighbor hostname, local iface, local address)
        adjacency: Dict[int, Tuple[str, str, int]] = {}
        for link in topology.links_of(self.name):
            local = link.local(self.name)
            remote = link.other(self.name)
            remote_addr = topology.interface_address(remote)
            local_addr = topology.interface_address(local)
            adjacency[remote_addr] = (remote.node, local.interface, local_addr)
        for neighbor in bgp.neighbors:
            resolved = adjacency.get(neighbor.peer_ip)
            if resolved is None:
                continue  # session to an absent peer stays idle
            hostname, iface, local_addr = resolved
            session = BgpSession(
                local_addr=local_addr,
                peer_ip=neighbor.peer_ip,
                remote_as=neighbor.remote_as,
                neighbor=hostname,
                iface=iface,
                import_policy=neighbor.import_policy,
                export_policy=neighbor.export_policy,
                remove_private_as=neighbor.remove_private_as,
                ebgp=neighbor.remote_as != bgp.asn,
            )
            self.sessions.append(session)
            self._sessions_by_peer[neighbor.peer_ip] = session
        self.sessions.sort(key=lambda s: s.peer_ip)

    def _install_connected(self, topology: Topology) -> None:
        for iface in self.config.interfaces.values():
            if iface.shutdown or iface.prefix is None:
                continue
            self.main_rib.add(
                Route(
                    prefix=iface.prefix,
                    protocol=Protocol.CONNECTED,
                    admin_distance=Protocol.CONNECTED.admin_distance,
                )
            )

    def _install_static(self) -> None:
        for static in self.config.static_routes:
            self.main_rib.add(
                Route(
                    prefix=static.prefix,
                    protocol=Protocol.STATIC,
                    next_hop=static.next_hop,
                    interface=static.interface,
                    admin_distance=static.admin_distance,
                    tag=static.tag,
                    discard=static.discard,
                )
            )

    def _compute_local_prefixes(self) -> None:
        """Prefixes this node originates into BGP (networks + redistribution)."""
        bgp = self.config.bgp
        if bgp is None:
            self.local_prefixes = frozenset()
            return
        prefixes = set(bgp.networks)
        if "connected" in bgp.redistribute:
            for iface in self.config.interfaces.values():
                if iface.prefix is not None and not iface.shutdown:
                    prefixes.add(iface.prefix)
        if "static" in bgp.redistribute:
            for static in self.config.static_routes:
                prefixes.add(static.prefix)
        self.local_prefixes = frozenset(prefixes)

    # -- shard lifecycle -----------------------------------------------------

    def begin_shard(self, shard: ShardFilter) -> None:
        """Start computing a new prefix shard: clear per-shard BGP state."""
        self.rib.clear()
        self._shard = shard
        self._export_cache.clear()
        self._cache_token = -1
        self.observed_dependencies.clear()

    def finish_shard(self) -> Dict[Prefix, Tuple[BgpRoute, ...]]:
        """Return the selected routes of the finished shard (→ storage)."""
        return {
            prefix: routes
            for prefix, routes in self.rib.best_routes().items()
            if routes
        }

    def _in_shard(self, prefix: Prefix) -> bool:
        return self._shard is None or prefix in self._shard

    # -- origination -----------------------------------------------------------

    def _conditional_allows(self, prefix: Prefix) -> bool:
        """Check conditional-advertisement gates for an originated prefix."""
        bgp = self.config.bgp
        if bgp is None:
            return True
        for conditional in bgp.conditionals:
            if conditional.prefix != prefix:
                continue
            if not self._in_shard(conditional.watch_prefix):
                # The watch prefix is being computed in a *different*
                # shard: its presence/absence here is meaningless.  Record
                # the unforeseen dependency so the orchestrator can merge
                # the shards and recompute (§7).
                self.observed_dependencies.add(
                    (prefix, conditional.watch_prefix)
                )
            present = bool(self.rib.candidates_for(conditional.watch_prefix))
            if not present:
                # the watched prefix may be locally originated too
                present = conditional.watch_prefix in self.local_prefixes
            if conditional.when_present != present:
                return False
        return True

    def originated_routes(self) -> List[BgpRoute]:
        """Locally originated BGP routes, honoring shard and conditionals."""
        result = []
        for prefix in sorted(self.local_prefixes):
            if not self._in_shard(prefix):
                continue
            if not self._conditional_allows(prefix):
                continue
            result.append(
                BgpRoute(
                    prefix=prefix,
                    next_hop=0,
                    from_node=self.name,
                    as_path=(),
                    local_pref=self.behavior.default_local_pref,
                    origin=Origin.IGP,
                    originator_id=self.router_id,
                )
            )
        return result

    def active_aggregates(self) -> List[Tuple[Aggregate, BgpRoute]]:
        """Aggregates with at least one contributing route (§4.5)."""
        bgp = self.config.bgp
        if bgp is None:
            return []
        result = []
        for aggregate in bgp.aggregates:
            if not self._in_shard(aggregate.prefix):
                continue
            if not self._has_contributor(aggregate.prefix):
                continue
            route = BgpRoute(
                prefix=aggregate.prefix,
                next_hop=0,
                from_node=self.name,
                as_path=(),
                local_pref=self.behavior.default_local_pref,
                origin=Origin.IGP,
                originator_id=self.router_id,
                aggregate=True,
            )
            if aggregate.attribute_map is not None:
                transformed = self.policy.run(
                    aggregate.attribute_map, route, self.asn
                )
                if transformed is not None:
                    route = replace(transformed, aggregate=True)
            result.append((aggregate, route))
        return result

    def _has_contributor(self, aggregate_prefix: Prefix) -> bool:
        for prefix in self.local_prefixes:
            if prefix != aggregate_prefix and aggregate_prefix.contains(prefix):
                return True
        for prefix in self.rib.prefixes():
            if prefix != aggregate_prefix and aggregate_prefix.contains(prefix):
                if self.rib.best(prefix):
                    return True
        return False

    def _suppressed_prefixes(self) -> List[Prefix]:
        """Prefix space hidden by active ``summary-only`` aggregates."""
        return [
            aggregate.prefix
            for aggregate, _route in self.active_aggregates()
            if aggregate.summary_only
        ]

    # -- export ------------------------------------------------------------------

    def advertise(self, to_peer_addr: int, round_token: int = -1) -> List[BgpRoute]:
        """The routes this node currently exports on the session whose
        remote end is ``to_peer_addr``.  This is the method the shadow node
        relays over RPC; its result must stay plain picklable data."""
        session = self._sessions_by_peer.get(to_peer_addr)
        if session is None:
            return []
        if round_token >= 0:
            if round_token != self._cache_token:
                # new round: drop the previous round's snapshot
                self._export_cache.clear()
                self._cache_token = round_token
            cached = self._export_cache.get(to_peer_addr)
            if cached is not None:
                return cached
        exports = self._compute_exports(session)
        if round_token >= 0:
            self._export_cache[to_peer_addr] = exports
        return exports

    def _compute_exports(self, session: BgpSession) -> List[BgpRoute]:
        suppressed = self._suppressed_prefixes()

        def is_suppressed(prefix: Prefix) -> bool:
            return any(
                agg.contains(prefix) and agg != prefix for agg in suppressed
            )

        outgoing: List[BgpRoute] = []
        for route in self.originated_routes():
            if not is_suppressed(route.prefix):
                outgoing.append(route)
        for _aggregate, route in self.active_aggregates():
            outgoing.append(route)
        self.rib.refresh()
        seen = {route.prefix for route in outgoing}
        for prefix, best in self.rib.best_routes().items():
            if not best or prefix in seen or is_suppressed(prefix):
                continue
            chosen = best[0]
            if chosen.from_node == session.neighbor:
                continue  # split horizon: never echo a route to its sender
            if not chosen.ebgp and not session.ebgp:
                continue  # iBGP-learned routes are not sent to iBGP peers
            outgoing.append(chosen)

        exports: List[BgpRoute] = []
        for route in outgoing:
            wire = replace(
                route,
                next_hop=session.local_addr,
                from_node=self.name,
                originator_id=self.router_id,
                med=0,
                weight=0,
                aggregate=route.aggregate,
            )
            if session.ebgp:
                as_path = (self.asn,) + wire.as_path
                if session.remove_private_as:
                    as_path = (self.asn,) + apply_remove_private_as(
                        wire.as_path, self.behavior.remove_private_as_mode
                    )
                wire = replace(wire, as_path=as_path, ebgp=True)
            transformed = self.policy.run(
                session.export_policy, wire, self.asn
            )
            if transformed is not None:
                exports.append(transformed)
        return exports

    # -- import -------------------------------------------------------------------

    def pull_round(self, resolver: Resolver, round_token: int = -1) -> bool:
        """One Algorithm-1 round: pull every neighbor's advertisement.

        ``resolver`` maps a hostname to an object exposing ``advertise``:
        the real node (same worker / monolithic engine) or a shadow proxy
        (different worker).  Returns True when the RIB changed.
        """
        changed = False
        for session in self.sessions:
            neighbor = resolver(session.neighbor)
            if neighbor is None:
                continue
            received = neighbor.advertise(session.local_addr, round_token)
            accepted = self._process_imports(session, received)
            changed |= self.rib.replace_neighbor_routes(
                session.rib_key, accepted
            )
        if changed:
            self.rib.refresh()
        return changed

    def _process_imports(
        self, session: BgpSession, received: Iterable[BgpRoute]
    ) -> List[BgpRoute]:
        accepted: List[BgpRoute] = []
        for route in received:
            if not self._in_shard(route.prefix):
                continue
            if session.ebgp and self.asn in route.as_path:
                continue  # AS-path loop prevention
            incoming = replace(
                route,
                from_node=session.neighbor,
                ebgp=session.ebgp,
                local_pref=(
                    self.behavior.default_local_pref
                    if session.ebgp
                    else route.local_pref
                ),
            )
            transformed = self.policy.run(
                session.import_policy, incoming, self.asn
            )
            if transformed is None:
                continue
            accepted.append(transformed)
        return accepted

    # -- results ---------------------------------------------------------------

    def bgp_routes(self) -> Dict[Prefix, Tuple[BgpRoute, ...]]:
        """Selected (post-decision, ECMP) BGP routes of the current shard."""
        return {
            prefix: routes
            for prefix, routes in self.rib.best_routes().items()
            if routes
        }

    def route_count(self) -> int:
        """Candidate paths currently held (the memory-model unit)."""
        return len(self.rib)

    def interface_for_address(self, address: int) -> Optional[str]:
        for iface in self.config.interfaces.values():
            if iface.prefix is not None and iface.prefix.contains_ip(address):
                return iface.name
        return None
