"""Routing information bases.

Two structures: :class:`BgpRib` holds the per-prefix candidate paths and the
selected (multipath) best set; :class:`MainRib` merges all protocols by
administrative distance into what the FIB builder consumes.

Both are deliberately plain dict-based containers — the fixed-point engine
compares RIB fingerprints across rounds to detect convergence, so cheap
hashing matters more than clever indexing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..net.ip import Prefix
from .route import BgpRoute, Route, decision_key, ecmp_key


class BgpRib:
    """Per-prefix BGP path selection with ECMP.

    ``candidates`` maps prefix -> {advertiser-key -> route}: at most one
    path per (neighbor, prefix), mirroring adj-RIB-in collapsing.  ``best``
    caches the selected multipath set.
    """

    def __init__(self, max_paths: int = 1) -> None:
        self.max_paths = max(1, max_paths)
        self._candidates: Dict[Prefix, Dict[str, BgpRoute]] = {}
        self._best: Dict[Prefix, Tuple[BgpRoute, ...]] = {}
        self._dirty: set = set()

    def __len__(self) -> int:
        return sum(len(paths) for paths in self._candidates.values())

    def prefixes(self) -> Iterator[Prefix]:
        return iter(self._candidates)

    def candidates_for(self, prefix: Prefix) -> List[BgpRoute]:
        return list(self._candidates.get(prefix, {}).values())

    def put(self, route: BgpRoute, source: Optional[str] = None) -> bool:
        """Insert/replace the path under adj-RIB-in key ``source``
        (defaults to the advertiser's name); True if changed."""
        key = source or route.from_node
        paths = self._candidates.setdefault(route.prefix, {})
        previous = paths.get(key)
        if previous == route:
            return False
        paths[key] = route
        self._dirty.add(route.prefix)
        return True

    def withdraw(self, prefix: Prefix, source: str) -> bool:
        """Remove the path stored under ``source``; True if it existed."""
        paths = self._candidates.get(prefix)
        if not paths or source not in paths:
            return False
        del paths[source]
        if not paths:
            del self._candidates[prefix]
        self._dirty.add(prefix)
        return True

    def replace_neighbor_routes(
        self, source: str, routes: Iterable[BgpRoute]
    ) -> bool:
        """Atomically replace every path stored under the adj-RIB-in key
        ``source`` (one key per session).

        This is the pull-model update: each round a node re-reads the full
        export of a neighbor, so stale paths (withdrawn upstream) must
        disappear.  Returns True when anything changed.
        """
        changed = False
        incoming: Dict[Prefix, BgpRoute] = {}
        for route in routes:
            incoming[route.prefix] = route
        # Withdraw paths the neighbor no longer exports.
        stale = [
            prefix
            for prefix, paths in self._candidates.items()
            if source in paths and prefix not in incoming
        ]
        for prefix in stale:
            changed |= self.withdraw(prefix, source)
        for route in incoming.values():
            changed |= self.put(route, source)
        return changed

    def select(self, prefix: Prefix) -> Tuple[BgpRoute, ...]:
        """Run the decision process for one prefix; returns the ECMP set."""
        paths = self._candidates.get(prefix)
        if not paths:
            self._best.pop(prefix, None)
            return ()
        ranked = sorted(paths.values(), key=decision_key)
        best = ranked[0]
        chosen: List[BgpRoute] = []
        for route in ranked:
            if ecmp_key(route) != ecmp_key(best):
                break
            chosen.append(route)
            if len(chosen) >= self.max_paths:
                break
        result = tuple(chosen)
        self._best[prefix] = result
        return result

    def refresh(self) -> None:
        """Re-select every prefix whose candidates changed since last call."""
        for prefix in self._dirty:
            self.select(prefix)
        self._dirty.clear()

    def best(self, prefix: Prefix) -> Tuple[BgpRoute, ...]:
        if prefix in self._dirty:
            self._dirty.discard(prefix)
            return self.select(prefix)
        return self._best.get(prefix, ())

    def best_routes(self) -> Dict[Prefix, Tuple[BgpRoute, ...]]:
        self.refresh()
        return dict(self._best)

    def clear(self) -> None:
        self._candidates.clear()
        self._best.clear()
        self._dirty.clear()

    def fingerprint(self) -> int:
        """Order-independent hash of the selected routes, for convergence."""
        self.refresh()
        total = 0
        for prefix, routes in self._best.items():
            total ^= hash((prefix, routes))
        return total


class MainRib:
    """The merged RIB: best routes across protocols by admin distance."""

    def __init__(self) -> None:
        self._routes: Dict[Prefix, List[Route]] = {}
        self._bgp: Dict[Prefix, Tuple[BgpRoute, ...]] = {}

    def add(self, route: Route) -> None:
        existing = self._routes.setdefault(route.prefix, [])
        if route in existing:
            return
        if existing and existing[0].admin_distance < route.admin_distance:
            return
        if existing and existing[0].admin_distance > route.admin_distance:
            existing.clear()
        existing.append(route)

    def set_bgp(self, prefix: Prefix, routes: Tuple[BgpRoute, ...]) -> None:
        if routes:
            self._bgp[prefix] = routes
        else:
            self._bgp.pop(prefix, None)

    def routes_for(self, prefix: Prefix) -> List[Route]:
        return list(self._routes.get(prefix, []))

    def bgp_for(self, prefix: Prefix) -> Tuple[BgpRoute, ...]:
        return self._bgp.get(prefix, ())

    def prefixes(self) -> Iterator[Prefix]:
        seen = set(self._routes)
        for prefix in self._routes:
            yield prefix
        for prefix in self._bgp:
            if prefix not in seen:
                yield prefix

    def route_count(self) -> int:
        return sum(len(r) for r in self._routes.values()) + sum(
            len(r) for r in self._bgp.values()
        )

    def entries(self) -> Iterator[Tuple[Prefix, object]]:
        """Iterate (prefix, route) pairs across both tables.

        Non-BGP routes win ties with BGP at equal prefixes when their admin
        distance is lower; the FIB builder applies that rule, not the RIB.
        """
        for prefix, routes in self._routes.items():
            for route in routes:
                yield prefix, route
        for prefix, routes in self._bgp.items():
            for route in routes:
                yield prefix, route
