"""Monolithic fixed-point simulation engine.

This is the "single logical server" engine the Batfish baseline uses, and
also the per-worker execution core inside S2 (a worker is, in effect, this
engine restricted to its assigned nodes, with shadow proxies standing in
for everything else).

The engine realizes the paper's Algorithm 1 without the controller/worker
split: IGP protocols run to fixation first, then BGP runs to fixation,
optionally once per prefix shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..config.loader import Snapshot
from ..net.ip import Prefix
from .node import RouterNode
from .ospf import OspfProcess
from .route import BgpRoute, Protocol, Route


class ConvergenceError(RuntimeError):
    """Raised when the fixed point is not reached within the round budget.

    Carries enough context to debug the non-convergence: which shard was
    running, how many rounds were spent, and — in the distributed engine —
    which workers/nodes were still flapping in the final round
    (``still_changing``: worker id -> list of hostnames).
    """

    def __init__(
        self,
        message: str,
        shard_index: Optional[int] = None,
        rounds: Optional[int] = None,
        still_changing: Optional[Dict[int, List[str]]] = None,
    ) -> None:
        details = []
        if shard_index is not None:
            details.append(f"shard={shard_index}")
        if rounds is not None:
            details.append(f"rounds={rounds}")
        if still_changing:
            flapping = "; ".join(
                f"worker{worker_id}: {', '.join(nodes) or '<unknown>'}"
                for worker_id, nodes in sorted(still_changing.items())
            )
            details.append(f"still changing: {flapping}")
        if details:
            message = f"{message} ({'; '.join(details)})"
        super().__init__(message)
        self.shard_index = shard_index
        self.rounds = rounds
        self.still_changing = still_changing or {}


@dataclass
class SimulationStats:
    """Counters the benchmarks and the memory model consume."""

    bgp_rounds: int = 0
    ospf_rounds: int = 0
    shards_run: int = 0
    peak_candidate_routes: int = 0
    total_selected_routes: int = 0
    work_units: int = 0  # route updates processed; the time-model unit


# hostname -> prefix -> ECMP tuple of selected BGP routes
BgpResult = Dict[str, Dict[Prefix, Tuple[BgpRoute, ...]]]


class SimulationEngine:
    """Runs the fixed-point route computation for a set of nodes."""

    def __init__(
        self,
        snapshot: Snapshot,
        max_rounds: int = 200,
    ) -> None:
        self.snapshot = snapshot
        self.max_rounds = max_rounds
        self.nodes: Dict[str, RouterNode] = {}
        self.ospf: Dict[str, OspfProcess] = {}
        self.stats = SimulationStats()
        for hostname, config in sorted(snapshot.configs.items()):
            self.nodes[hostname] = RouterNode(config, snapshot.topology)
            self.ospf[hostname] = OspfProcess(config, snapshot.topology)

    # -- resolvers ----------------------------------------------------------

    def _bgp_resolver(self, name: str) -> Optional[RouterNode]:
        return self.nodes.get(name)

    def _ospf_resolver(self, name: str) -> Optional[OspfProcess]:
        return self.ospf.get(name)

    # -- IGP phase ------------------------------------------------------------

    def run_ospf(self) -> None:
        """Run the OSPF fixed point and install results into main RIBs."""
        if not any(process.enabled for process in self.ospf.values()):
            return
        for round_number in range(self.max_rounds):
            changed = False
            for process in self.ospf.values():
                changed |= process.pull_round(self._ospf_resolver)
            self.stats.ospf_rounds += 1
            if not changed:
                break
        else:
            raise ConvergenceError(
                f"OSPF did not converge within {self.max_rounds} rounds",
                rounds=self.max_rounds,
            )
        for hostname, process in self.ospf.items():
            node = self.nodes[hostname]
            for route in process.routes():
                node.main_rib.add(route)

    # -- BGP phase ---------------------------------------------------------------

    def run_bgp_shard(
        self, shard: Optional[FrozenSet[Prefix]] = None
    ) -> BgpResult:
        """Run BGP to fixation for one prefix shard (None = all prefixes)."""
        for node in self.nodes.values():
            node.begin_shard(shard)
        changed_nodes: List[str] = []
        for round_number in range(self.max_rounds):
            changed_nodes = []
            for hostname, node in self.nodes.items():
                if node.pull_round(self._bgp_resolver, round_number):
                    changed_nodes.append(hostname)
                self.stats.work_units += node.route_count()
            changed = bool(changed_nodes)
            candidate_total = sum(
                node.route_count() for node in self.nodes.values()
            )
            self.stats.peak_candidate_routes = max(
                self.stats.peak_candidate_routes, candidate_total
            )
            self.stats.bgp_rounds += 1
            if not changed:
                break
        else:
            raise ConvergenceError(
                f"BGP did not converge within {self.max_rounds} rounds",
                rounds=self.max_rounds,
                still_changing={0: changed_nodes},
            )
        self.stats.shards_run += 1
        result: BgpResult = {}
        for hostname, node in self.nodes.items():
            selected = node.finish_shard()
            result[hostname] = selected
            self.stats.total_selected_routes += sum(
                len(routes) for routes in selected.values()
            )
        return result

    def run(
        self, shards: Optional[Iterable[FrozenSet[Prefix]]] = None
    ) -> BgpResult:
        """Full control-plane simulation: IGPs, then BGP over all shards.

        With ``shards`` given, BGP runs once per shard and the per-shard
        results are merged — the monolithic analogue of prefix sharding
        (the "Batfish + prefix sharding" configuration of Figure 4).
        """
        self.run_ospf()
        if shards is None:
            return self.run_bgp_shard(None)
        merged: BgpResult = {name: {} for name in self.nodes}
        for shard in shards:
            shard_result = self.run_bgp_shard(frozenset(shard))
            for hostname, routes in shard_result.items():
                merged[hostname].update(routes)
        return merged

    # -- outputs --------------------------------------------------------------

    def main_routes(self) -> Dict[str, List[Route]]:
        """Connected/static/OSPF routes per node (not sharded)."""
        result = {}
        for hostname, node in self.nodes.items():
            routes: List[Route] = []
            for prefix in node.main_rib.prefixes():
                routes.extend(node.main_rib.routes_for(prefix))
            result[hostname] = routes
        return result

    def local_prefixes(self) -> Dict[str, FrozenSet[Prefix]]:
        return {
            hostname: node.local_prefixes
            for hostname, node in self.nodes.items()
        }


def collect_network_prefixes(snapshot: Snapshot) -> FrozenSet[Prefix]:
    """All BGP prefixes of a snapshot (originations, aggregates,
    conditionals, and redistribution sources), per §4.5's collection rule."""
    prefixes = set()
    for config in snapshot.configs.values():
        bgp = config.bgp
        if bgp is None:
            continue
        prefixes.update(bgp.networks)
        for aggregate in bgp.aggregates:
            prefixes.add(aggregate.prefix)
        for conditional in bgp.conditionals:
            prefixes.add(conditional.prefix)
        if "connected" in bgp.redistribute:
            for iface in config.interfaces.values():
                if iface.prefix is not None and not iface.shutdown:
                    prefixes.add(iface.prefix)
        if "static" in bgp.redistribute:
            for static in config.static_routes:
                prefixes.add(static.prefix)
        if "ospf" in bgp.redistribute and config.ospf is not None:
            for iface_name in config.ospf.interfaces:
                iface = config.interfaces.get(iface_name)
                if iface is not None and iface.prefix is not None:
                    prefixes.add(iface.prefix)
    return frozenset(prefixes)
