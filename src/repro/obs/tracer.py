"""Nested-span tracing for the distributed pipeline.

One :class:`Tracer` per *participant* (the controller and each worker)
records :class:`SpanRecord` entries lock-free: spans are appended to a
per-tracer list (safe under the GIL — each tracer is driven by one phase
thread at a time) and, when a ``sink`` path is configured, written
incrementally as JSON lines with a flush per span.  Incremental writes
are what make trace shards survive a killed worker process: everything
up to (at most) one torn final line is on disk, and the merge layer
(:mod:`repro.obs.merge`) tolerates the tear.

Timestamps are ``time.perf_counter()``, i.e. ``CLOCK_MONOTONIC`` on
Linux — a *system-wide* clock, so spans recorded by forked worker
processes are directly comparable with the controller's and the merged
timeline needs no cross-process clock reconciliation (timestamps are
normalized to the run's earliest span at export time).

The disabled path is a no-op guard: ``Tracer(enabled=False)`` (or the
shared :data:`NULL_TRACER`) hands out one preallocated :data:`NULL_SPAN`
whose ``__enter__``/``__exit__``/``set`` do nothing, so instrumentation
can stay compiled into the hot paths.

RPC stitching: the caller opens a span with ``flow="out"`` and a
``flow_id`` it ships in-band with the request; the callee's handler span
carries the same id with ``flow="in"``.  The Chrome export turns each
pair into flow-arrow events, drawing the caller→callee edge across
process tracks in Perfetto.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: JSONL shard schema version, written in each shard's meta line.
SCHEMA_VERSION = 1


@dataclass
class SpanRecord:
    """One finished span, as recorded and serialized."""

    name: str
    start: float                 # perf_counter seconds
    duration: float              # seconds
    process: str                 # participant label ("controller", "worker0")
    tid: int                     # track within the participant
    span_id: int
    parent_id: Optional[int] = None
    flow_id: Optional[int] = None    # RPC stitching id (caller == callee)
    flow: Optional[str] = None       # "out" (caller) | "in" (callee)
    category: str = "run"
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_line(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "ts": self.start,
            "dur": self.duration,
            "proc": self.process,
            "tid": self.tid,
            "id": self.span_id,
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.flow_id is not None:
            record["flow_id"] = self.flow_id
            record["flow"] = self.flow
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _NullSpan:
    """The disabled-tracing span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs) -> "_NullSpan":
        return self


#: Shared no-op span handed out by disabled tracers (no allocation).
NULL_SPAN = _NullSpan()


class Span:
    """A live span; close it via the context-manager protocol."""

    __slots__ = (
        "_tracer", "name", "category", "start", "attrs",
        "span_id", "parent_id", "flow_id", "flow",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        flow_id: Optional[int],
        flow: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.flow_id = flow_id
        self.flow = flow
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: Optional[int] = None
        self.start = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (merged into any given at open)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.start = self._tracer.clock()
        return self

    def __exit__(self, *_exc) -> bool:
        end = self._tracer.clock()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:          # tolerate out-of-order exits
            stack.remove(self)
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start=self.start,
                duration=end - self.start,
                process=self._tracer.process,
                tid=self._tracer._tid(),
                span_id=self.span_id,
                parent_id=self.parent_id,
                flow_id=self.flow_id,
                flow=self.flow,
                category=self.category,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Records nested spans for one participant of a run.

    ``sink`` (a file path) enables incremental JSONL shard output; without
    it spans are only kept in memory (``records``) for direct export.
    """

    def __init__(
        self,
        process: str = "main",
        enabled: bool = True,
        sink: Optional[str] = None,
        incarnation: int = 0,
        clock=time.perf_counter,
    ) -> None:
        self.process = process
        self.enabled = enabled
        self.incarnation = incarnation
        self.clock = clock
        self.records: List[SpanRecord] = []
        self._sink_path = sink
        self._sink = None
        self._local = threading.local()
        self._tids: Dict[int, int] = {}
        self._id_counter = 0
        if enabled and sink is not None:
            self._open_sink()

    # -- internals -------------------------------------------------------

    def _open_sink(self) -> None:
        directory = os.path.dirname(self._sink_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._sink = open(self._sink_path, "a", encoding="utf-8")
        self._write_line(
            {
                "type": "meta",
                "schema": SCHEMA_VERSION,
                "process": self.process,
                "incarnation": self.incarnation,
                "os_pid": os.getpid(),
            }
        )

    def _write_line(self, payload: Dict[str, Any]) -> None:
        self._sink.write(json.dumps(payload, default=str) + "\n")
        self._sink.flush()

    def _next_id(self) -> int:
        self._id_counter += 1
        return self._id_counter

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _record(self, record: SpanRecord) -> None:
        self.records.append(record)
        if self._sink is not None:
            self._write_line(record.as_line())

    # -- public API ------------------------------------------------------

    def span_stack(self) -> List[str]:
        """Names of the spans currently open on the calling thread,
        outermost first — the live "where is this worker" signal that
        telemetry frames carry (empty when tracing is disabled)."""
        if not self.enabled:
            return []
        return [span.name for span in self._stack()]

    def span(
        self,
        name: str,
        category: str = "run",
        flow_id: Optional[int] = None,
        flow: Optional[str] = None,
        **attrs,
    ):
        """Open a span; use as a context manager.  No-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, category, flow_id, flow, attrs)

    def instant(self, name: str, category: str = "event", **attrs) -> None:
        """Record a zero-duration marker (e.g. a fault injection)."""
        if not self.enabled:
            return
        now = self.clock()
        stack = self._stack()
        self._record(
            SpanRecord(
                name=name,
                start=now,
                duration=0.0,
                process=self.process,
                tid=self._tid(),
                span_id=self._next_id(),
                parent_id=stack[-1].span_id if stack else None,
                category=category,
                attrs=attrs,
            )
        )

    def export_jsonl(self, path: str) -> int:
        """Write every in-memory span to ``path``; returns the span count."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "type": "meta",
                        "schema": SCHEMA_VERSION,
                        "process": self.process,
                        "incarnation": self.incarnation,
                        "os_pid": os.getpid(),
                    }
                )
                + "\n"
            )
            for record in self.records:
                handle.write(json.dumps(record.as_line(), default=str) + "\n")
        return len(self.records)

    def finish(self) -> None:
        """Close the sink (idempotent); in-memory records are kept."""
        if self._sink is not None:
            try:
                self._sink.close()
            finally:
                self._sink = None


class _NullTracer(Tracer):
    """The shared disabled tracer; ``span`` short-circuits to NULL_SPAN."""

    def __init__(self) -> None:
        super().__init__(process="null", enabled=False)

    def span(self, name, category="run", flow_id=None, flow=None, **attrs):
        return NULL_SPAN

    def instant(self, name, category="event", **attrs) -> None:
        return None


#: Shared disabled tracer: the default for every instrumented component.
NULL_TRACER = _NullTracer()


class stopwatch:
    """Minimal elapsed-time context manager (the ``perf_counter`` idiom).

    Replaces the hand-rolled ``started = perf_counter(); ... ; elapsed =
    perf_counter() - started`` blocks::

        with stopwatch() as timer:
            do_work()
        row.wall_seconds = timer.seconds

    ``seconds`` reads live while the block is still open, so it can also
    feed incremental accumulators mid-flight.
    """

    __slots__ = ("_clock", "_start", "_stop")

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._start = clock()
        self._stop: Optional[float] = None

    def __enter__(self) -> "stopwatch":
        self._start = self._clock()
        self._stop = None
        return self

    def __exit__(self, *_exc) -> bool:
        self._stop = self._clock()
        return False

    @property
    def seconds(self) -> float:
        end = self._stop if self._stop is not None else self._clock()
        return end - self._start
