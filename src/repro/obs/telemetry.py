"""Streaming worker telemetry: frames, the worker-side source, and the
controller-side collector.

The post-mortem observability stack (trace shards + ``repro report``)
answers "what happened"; this module answers "what is happening".  Every
worker owns a :class:`TelemetrySource` that periodically emits a compact
**telemetry frame** — a flat JSON-safe dict carrying round progress, RIB
and BDD node counts, GC/op-cache rates, supervision health, and the
current span stack.  Frames travel over whatever channel the runtime
already has:

* remote runtimes (process pipe, socket RPC) piggyback the frame on the
  existing per-dispatch resource telemetry tuple — no extra round trips,
  no new connections;
* in-process runtimes (sequential, threaded) hand the frame straight to
  a sink callable at phase boundaries.

The controller folds frames into its shared ``MetricsRegistry`` as
``worker<N>.*`` gauges (rendered as labelled series by the OpenMetrics
exporter) and keeps the latest frame per worker for ``statusz``.  The
collector is churn-aware: each frame carries ``(incarnation, seq)`` so a
respawned worker's restart from seq 0 is accepted, stale or duplicated
frames are dropped, and skipped sequence numbers are counted as lost
(and journalled) rather than silently ignored.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .metrics import MetricsRegistry

#: Schema version stamped into every frame.
FRAME_VERSION = 1

#: Resource-mirror fields copied from ``WorkerResources`` into frames.
_RESOURCE_FIELDS = (
    "candidate_routes",
    "bdd_nodes",
    "fib_entries",
    "current_bytes",
    "peak_bytes",
    "retries",
    "respawns",
)

#: Engine counters worth streaming (a subset of ``BddEngine.counters``).
_ENGINE_FIELDS = (
    "node_count",
    "peak_node_count",
    "ops",
    "cache_hit_rate",
    "cache_entries",
    "gc_runs",
    "gc_reclaimed_nodes",
)


def validate_frame(frame: Any) -> Optional[str]:
    """Structural check on a frame; returns a problem string or None.

    The wire can tear (chaos faults corrupt payloads), so the collector
    refuses anything that does not look like a frame instead of folding
    garbage into the registry.
    """
    if not isinstance(frame, dict):
        return f"frame is {type(frame).__name__}, not dict"
    for key, kinds in (
        ("v", (int,)),
        ("worker", (int,)),
        ("incarnation", (int,)),
        ("seq", (int,)),
        ("ts", (int, float)),
        ("epoch", (int,)),
        ("stats", (dict,)),
    ):
        if key not in frame:
            return f"frame missing key {key!r}"
        if not isinstance(frame[key], kinds) or isinstance(
            frame[key], bool
        ):
            return f"frame key {key!r} has type {type(frame[key]).__name__}"
    if frame["v"] != FRAME_VERSION:
        return f"frame version {frame['v']} != {FRAME_VERSION}"
    if frame["seq"] < 1:
        return f"frame seq {frame['seq']} < 1"
    for name, value in frame["stats"].items():
        if not isinstance(name, str):
            return "frame stats key is not a string"
        if not isinstance(value, (int, float)):
            return f"frame stat {name!r} is not numeric"
    return None


class TelemetrySource:
    """Worker-side frame producer with interval gating.

    One source per worker incarnation stream.  ``maybe_frame()`` is
    called at phase boundaries / after dispatches and returns a frame
    only when at least ``interval`` seconds elapsed since the last one
    (``interval <= 0`` disables the source entirely; ``force=True``
    bypasses the gate for end-of-phase flushes).  Sequence numbers are
    per-incarnation and monotonic; a respawn calls :meth:`reincarnate`.
    """

    def __init__(
        self,
        worker: Any,
        interval: float = 0.25,
        incarnation: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.worker = worker
        self.interval = interval
        self.incarnation = incarnation
        self._clock = clock
        self._seq = 0
        self._last: Optional[float] = None  # None → first call always emits

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def reincarnate(self, incarnation: Optional[int] = None) -> None:
        """Start a fresh sequence stream after a respawn/reset."""
        self.incarnation = (
            incarnation if incarnation is not None else self.incarnation + 1
        )
        self._seq = 0
        self._last = None

    def maybe_frame(
        self, phase: Optional[str] = None, force: bool = False
    ) -> Optional[Dict[str, Any]]:
        if not self.enabled:
            return None
        now = self._clock()
        if (
            not force
            and self._last is not None
            and now - self._last < self.interval
        ):
            return None
        self._last = now
        return self.frame(phase)

    def frame(self, phase: Optional[str] = None) -> Dict[str, Any]:
        """Build one frame unconditionally (seq is consumed)."""
        worker = self.worker
        self._seq += 1
        stats: Dict[str, float] = {}
        resources = getattr(worker, "resources", None)
        if resources is not None:
            for field in _RESOURCE_FIELDS:
                stats[field] = int(getattr(resources, field, 0) or 0)
            stats["oom"] = int(bool(getattr(resources, "oom", False)))
        engine = getattr(worker, "engine", None)
        if engine is not None:
            counters = engine.counters()
            for field in _ENGINE_FIELDS:
                value = counters.get(field, 0)
                stats[f"engine.{field}"] = (
                    round(float(value), 6)
                    if isinstance(value, float)
                    else int(value)
                )
        stats["pending_packets"] = int(
            getattr(worker, "pending_packets", 0) or 0
        )
        stats["duplicate_batches"] = int(
            getattr(worker, "duplicate_batches", 0) or 0
        )
        tracer = getattr(worker, "tracer", None)
        spans: List[str] = (
            tracer.span_stack() if tracer is not None else []
        )
        return {
            "v": FRAME_VERSION,
            "worker": int(getattr(worker, "worker_id", -1)),
            "incarnation": self.incarnation,
            "seq": self._seq,
            "ts": time.time(),
            "epoch": int(getattr(worker, "epoch", -1)),
            "round": int(getattr(worker, "last_round", -1)),
            "phase": phase,
            "spans": spans,
            "stats": stats,
        }


class TelemetryCollector:
    """Controller-side fold-in point for frames from every runtime.

    ``ingest()`` is thread-safe (proxy relays run on caller threads; the
    threaded runtime emits from phase threads) and returns a disposition
    string — ``"ok"``, ``"stale"``, ``"gap"`` (accepted, but sequence
    numbers were skipped), or ``"invalid"`` — mostly for tests; callers
    may ignore it.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        journal: Optional[Any] = None,
    ) -> None:
        self.metrics = metrics
        self.journal = journal
        self._lock = threading.Lock()
        self._latest: Dict[int, Dict[str, Any]] = {}
        self.frames_total = 0
        self.frames_invalid = 0
        self.frames_stale = 0
        self.frames_lost = 0

    def ingest(self, frame: Any) -> str:
        problem = validate_frame(frame)
        if problem is not None:
            with self._lock:
                self.frames_invalid += 1
            self.metrics.counter("telemetry.frames_invalid").inc()
            return "invalid"
        worker = frame["worker"]
        disposition = "ok"
        lost = 0
        with self._lock:
            previous = self._latest.get(worker)
            if previous is not None:
                p_inc, p_seq = previous["incarnation"], previous["seq"]
                if frame["incarnation"] < p_inc or (
                    frame["incarnation"] == p_inc and frame["seq"] <= p_seq
                ):
                    self.frames_stale += 1
                    disposition = "stale"
                elif (
                    frame["incarnation"] == p_inc
                    and frame["seq"] > p_seq + 1
                ):
                    lost = frame["seq"] - p_seq - 1
                    self.frames_lost += lost
                    disposition = "gap"
            elif frame["seq"] > 1:
                # First frame we ever saw from this worker already has
                # seq > 1: everything before it was lost in transit.
                lost = frame["seq"] - 1
                self.frames_lost += lost
                disposition = "gap"
            if disposition != "stale":
                self._latest[worker] = frame
                self.frames_total += 1
        if disposition == "stale":
            self.metrics.counter("telemetry.frames_stale").inc()
            return disposition
        self.metrics.counter("telemetry.frames").inc()
        if lost:
            self.metrics.counter("telemetry.frames_lost").inc(lost)
            if self.journal is not None:
                self.journal.record(
                    "telemetry_gap",
                    worker=worker,
                    lost=lost,
                    seq=frame["seq"],
                    incarnation=frame["incarnation"],
                )
        self._fold(frame)
        return disposition

    def _fold(self, frame: Dict[str, Any]) -> None:
        worker = frame["worker"]
        gauges: Dict[str, float] = {
            f"worker{worker}.epoch": frame["epoch"],
            f"worker{worker}.round": frame["round"],
            f"worker{worker}.incarnation": frame["incarnation"],
            f"worker{worker}.telemetry_seq": frame["seq"],
        }
        for name, value in frame["stats"].items():
            gauges[f"worker{worker}.{name}"] = value
        self.metrics.set_gauges(gauges)

    # -- reading ------------------------------------------------------

    def latest(self) -> Dict[int, Dict[str, Any]]:
        """Latest accepted frame per worker (copies)."""
        with self._lock:
            return {w: dict(f) for w, f in self._latest.items()}

    def worker_summary(self) -> Dict[str, Dict[str, Any]]:
        """Compact per-worker health block for ``health``/``statusz``."""
        now = time.time()
        with self._lock:
            frames = {w: f for w, f in self._latest.items()}
        summary: Dict[str, Dict[str, Any]] = {}
        for worker, frame in sorted(frames.items()):
            summary[f"worker{worker}"] = {
                "epoch": frame["epoch"],
                "round": frame["round"],
                "incarnation": frame["incarnation"],
                "seq": frame["seq"],
                "phase": frame.get("phase"),
                "age_seconds": round(max(0.0, now - frame["ts"]), 3),
                "respawns": frame["stats"].get("respawns", 0),
                "oom": bool(frame["stats"].get("oom", 0)),
            }
        return summary

    def summary(self) -> Dict[str, Any]:
        """Counter block for metrics snapshots."""
        with self._lock:
            return {
                "frames": self.frames_total,
                "frames_invalid": self.frames_invalid,
                "frames_stale": self.frames_stale,
                "frames_lost": self.frames_lost,
                "workers": sorted(self._latest),
            }
