"""Per-phase breakdown tables from a recorded trace.

``repro report TRACE`` renders where a run's time went: spans are
aggregated by name (count, total, mean, share of the traced wall clock),
optionally split per participant.  The loader accepts any of the three
on-disk forms the obs layer produces — a merged Chrome trace-event file,
one JSONL shard, or a whole shard directory — so a report can be pulled
from a run that died before the merge happened.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .merge import read_shard, read_shards


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Normalized span dicts (name/proc/ts/dur seconds) from any format."""
    if os.path.isdir(path):
        return read_shards(path)
    with open(path, "r", encoding="utf-8") as handle:
        head = handle.read(4096).lstrip()
    if head.startswith("{") and '"traceEvents"' in head:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        pid_names: Dict[Any, str] = {}
        for event in document.get("traceEvents", []):
            if event.get("ph") == "M" and event.get("name") == "process_name":
                pid_names[event["pid"]] = event.get("args", {}).get(
                    "name", str(event["pid"])
                )
        spans = []
        for event in document.get("traceEvents", []):
            if event.get("ph") != "X":
                continue
            spans.append(
                {
                    "name": event.get("name", "?"),
                    "cat": event.get("cat", "run"),
                    "proc": pid_names.get(event.get("pid"), "?"),
                    "tid": event.get("tid", 0),
                    "ts": event.get("ts", 0.0) / 1e6,
                    "dur": event.get("dur", 0.0) / 1e6,
                    "attrs": event.get("args") or {},
                }
            )
        return spans
    _meta, records = read_shard(path)
    return records


def phase_breakdown(
    spans: List[Dict[str, Any]], by_process: bool = False
) -> List[List[Any]]:
    """Aggregate rows: [phase, count, total_s, mean_ms, share%]."""
    if not spans:
        return []
    wall = max(s["ts"] + s["dur"] for s in spans) - min(
        s["ts"] for s in spans
    )
    groups: Dict[Any, List[float]] = {}
    for span in spans:
        key = (
            (span.get("proc", "?"), span["name"])
            if by_process
            else span["name"]
        )
        groups.setdefault(key, []).append(span["dur"])
    rows: List[List[Any]] = []
    for key, durations in groups.items():
        total = sum(durations)
        label = f"{key[0]}:{key[1]}" if by_process else key
        rows.append(
            [
                label,
                len(durations),
                round(total, 4),
                round(1e3 * total / len(durations), 3),
                f"{100 * total / wall:.1f}%" if wall else "-",
            ]
        )
    rows.sort(key=lambda row: -row[2])
    return rows


REPORT_HEADERS = ["phase", "count", "total-s", "mean-ms", "share"]


def rpc_supervision(spans: List[Dict[str, Any]]) -> List[List[Any]]:
    """Per-worker RPC supervision rows: calls, retries, timeouts, drops.

    Aggregates the proxy-side ``rpc.*`` spans: the socket channel stamps
    each span with its transport attempts (``transport_retries``) and
    terminal failure type (``transport_failure``), so the table shows
    where the retry budget went worker by worker.
    """
    stats: Dict[Any, Dict[str, int]] = {}
    for span in spans:
        if not span["name"].startswith("rpc."):
            continue
        attrs = span.get("attrs") or {}
        if "worker" not in attrs:
            continue
        entry = stats.setdefault(
            attrs["worker"],
            {"calls": 0, "retries": 0, "timeouts": 0, "conn_lost": 0},
        )
        entry["calls"] += 1
        entry["retries"] += int(attrs.get("transport_retries", 0) or 0)
        failure = attrs.get("transport_failure")
        if failure == "RpcTimeoutError":
            entry["timeouts"] += 1
        elif failure == "ConnectionLostError":
            entry["conn_lost"] += 1
    return [
        [
            f"worker{worker}",
            entry["calls"],
            entry["retries"],
            entry["timeouts"],
            entry["conn_lost"],
        ]
        for worker, entry in sorted(stats.items(), key=lambda kv: str(kv[0]))
    ]


RPC_HEADERS = ["worker", "rpc-calls", "retries", "timeouts", "conn-lost"]


def render_report(
    path: str,
    by_process: bool = False,
    top: Optional[int] = None,
    category: Optional[str] = None,
) -> str:
    """The ``repro report`` table for a trace file/shard/directory."""
    from ..harness.reporting import format_table  # local: avoids a cycle

    spans = load_spans(path)
    if category:
        spans = [s for s in spans if s.get("cat", "run") == category]
    if not spans:
        return f"no spans found in {path}"
    rows = phase_breakdown(spans, by_process=by_process)
    if top:
        rows = rows[:top]
    wall = max(s["ts"] + s["dur"] for s in spans) - min(
        s["ts"] for s in spans
    )
    processes = sorted({s.get("proc", "?") for s in spans})
    title = (
        f"{len(spans)} spans over {wall:.3f}s across "
        f"{len(processes)} participants ({', '.join(processes)})"
    )
    report = format_table(REPORT_HEADERS, rows, title=title)
    rpc_rows = rpc_supervision(spans)
    if rpc_rows:
        report += "\n\n" + format_table(
            RPC_HEADERS, rpc_rows, title="rpc supervision (per worker)"
        )
    return report


JOURNAL_HEADERS = ["seq", "time", "kind", "details"]


def render_journal(events, top: Optional[int] = None) -> str:
    """The ``repro report --journal`` table for a serve session journal.

    Accepts :class:`~repro.obs.journal.JournalEvent` objects (from
    ``read_journal``) or plain event dicts (from an ``eventsz`` reply).
    """
    import time as _time

    from ..harness.reporting import format_table  # local: avoids a cycle

    if not events:
        return "journal is empty"
    records = [
        event.to_dict() if hasattr(event, "to_dict") else dict(event)
        for event in events
    ]
    if top:
        records = records[-top:]
    rows: List[List[Any]] = []
    for record in records:
        attrs = {
            key: value
            for key, value in (record.get("attrs") or {}).items()
            if value is not None
        }
        details = " ".join(
            f"{key}={value}" for key, value in sorted(attrs.items())
        )
        rows.append(
            [
                record.get("seq", "?"),
                _time.strftime(
                    "%H:%M:%S", _time.localtime(record.get("ts", 0))
                ),
                record.get("kind", "?"),
                details[:72],
            ]
        )
    kinds: Dict[str, int] = {}
    for record in records:
        kind = record.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    missing = 0
    previous = None
    for record in records:
        seq = record.get("seq")
        if isinstance(seq, int):
            if previous is not None and seq > previous + 1:
                missing += seq - previous - 1
            previous = seq
    summary = ", ".join(
        f"{count} {kind}" for kind, count in sorted(kinds.items())
    )
    title = f"{len(records)} events ({summary})"
    if missing:
        title += f" — {missing} missing seq (trimmed or torn)"
    report = format_table(JOURNAL_HEADERS, rows, title=title)
    capacity = capacity_summary(records)
    if capacity:
        report += "\n" + capacity
    return report


def capacity_summary(records) -> Optional[str]:
    """One degraded-capacity line from the loss/rebalance journal kinds.

    Replays ``worker_lost`` / ``worker_rejoined`` to the current lost
    set and totals the shard files moved by ``shard_reassigned``; None
    when the journal never saw a capacity change.
    """
    lost: set = set()
    losses = reassigned = rebalances = 0
    for record in records:
        if hasattr(record, "to_dict"):
            record = record.to_dict()
        kind = record.get("kind")
        attrs = record.get("attrs") or {}
        if kind == "worker_lost":
            losses += 1
            lost.add(attrs.get("worker"))
        elif kind == "worker_rejoined":
            rebalances += 1
            lost.discard(attrs.get("worker"))
        elif kind == "shard_reassigned":
            reassigned += int(attrs.get("shards", 0) or 0)
    if not (losses or rebalances):
        return None
    still = (
        ", ".join(f"worker{wid}" for wid in sorted(lost, key=str))
        if lost
        else "none"
    )
    return (
        f"degraded capacity: {losses} loss(es), "
        f"{reassigned} shard file(s) reassigned, "
        f"{rebalances} rebalance(s); currently lost: {still}"
    )
