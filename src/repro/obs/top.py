"""``repro top`` — a live console over a serving session.

Connects to a :class:`~repro.serve.api.SessionServer` line-JSON port,
polls ``statusz`` + ``eventsz``, and renders a compact dashboard: epoch,
admission-queue depth, per-worker round progress and health, rolling
p50/p99 query latency, and the last N journal events.

The renderer is a pure function (``render_top``) so tests can assert on
frames without a terminal; the loop uses plain ANSI clear-and-home
escapes when stdout is a TTY and falls back to printing one frame per
poll (or a single shot) when it is not — no curses dependency.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from typing import Any, Dict, List, Optional, TextIO

ANSI_CLEAR = "\x1b[2J\x1b[H"


class SessionClient:
    """Minimal line-JSON client for the serve API."""

    def __init__(
        self, host: str, port: int, timeout: float = 10.0
    ) -> None:
        self._conn = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._conn.makefile("r", encoding="utf-8")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._conn.close()
        except OSError:
            pass

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _fmt_bytes(n: float) -> str:
    value = float(n or 0)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (
                f"{int(value)}{unit}"
                if unit == "B"
                else f"{value:.1f}{unit}"
            )
        value /= 1024.0
    return f"{value:.1f}GiB"


def _fmt_ms(seconds: Any) -> str:
    try:
        return f"{float(seconds) * 1000:.1f}ms"
    except (TypeError, ValueError):
        return "-"


def render_top(
    status: Dict[str, Any],
    events: List[Dict[str, Any]],
    now: Optional[float] = None,
) -> str:
    """Render one dashboard frame from a ``statusz`` payload plus a
    journal tail (both straight off the wire)."""
    now = time.time() if now is None else now
    out: List[str] = []
    state = status.get("status", "?")
    epoch = status.get("epoch")
    out.append(
        f"repro top — {status.get('snapshot', '?')}  "
        f"[{state}]  epoch={epoch}  "
        f"queue={status.get('queue_depth', 0)}  "
        f"runtime={status.get('runtime', '?')}  "
        f"workers={status.get('workers', '?')}"
    )
    if status.get("degraded_reason"):
        out.append(f"  DEGRADED: {status['degraded_reason']}")
    capacity = status.get("capacity") or {}
    if capacity.get("lost_workers"):
        lost = capacity.get("lost") or {}
        total = (
            capacity.get("active_workers", 0)
            + capacity.get("lost_workers", 0)
        )
        out.append(
            f"  REDUCED CAPACITY: {capacity.get('active_workers', '?')}/"
            f"{total} workers "
            f"(ratio={capacity.get('capacity_ratio', 0.0):.2f})  lost: "
            + ", ".join(
                f"worker{wid}" for wid in sorted(lost, key=int)
            )
        )
    commit_age = status.get("last_commit_age_seconds")
    journal = status.get("journal") or {}
    out.append(
        f"last commit: "
        f"{'-' if commit_age is None else f'{commit_age:.1f}s ago'}  "
        f"journal seq={journal.get('last_seq', 0)} "
        f"(dropped={journal.get('dropped', 0)})"
    )
    latency = status.get("query_latency") or {}
    if latency.get("count"):
        out.append(
            f"query latency: p50={_fmt_ms(latency.get('p50'))} "
            f"p99={_fmt_ms(latency.get('p99'))} "
            f"n={latency.get('count')}"
            + (" (sampled)" if latency.get("sampled") else "")
        )
    else:
        out.append("query latency: no queries yet")

    frames = status.get("frames") or {}
    out.append("")
    header = (
        f"{'WORKER':<8} {'EPOCH':>5} {'ROUND':>5} {'INC':>3} {'SEQ':>5} "
        f"{'AGE':>6} {'PHASE':<16} {'BDD':>8} {'ROUTES':>8} "
        f"{'MEM':>9} {'RESPAWN':>7}"
    )
    out.append(header)
    out.append("-" * len(header))
    if not frames:
        out.append("  (no telemetry frames yet)")
    for key in sorted(frames, key=lambda k: int(k)):
        frame = frames[key]
        stats = frame.get("stats", {})
        age = max(0.0, now - float(frame.get("ts", now)))
        spans = frame.get("spans") or []
        phase = frame.get("phase") or (spans[-1] if spans else "-")
        flags = " OOM" if stats.get("oom") else ""
        out.append(
            f"worker{frame.get('worker', key):<2} "
            f"{frame.get('epoch', -1):>5} "
            f"{frame.get('round', -1):>5} "
            f"{frame.get('incarnation', 0):>3} "
            f"{frame.get('seq', 0):>5} "
            f"{age:>5.1f}s "
            f"{str(phase)[:16]:<16} "
            f"{int(stats.get('engine.node_count', stats.get('bdd_nodes', 0))):>8} "
            f"{int(stats.get('candidate_routes', 0)):>8} "
            f"{_fmt_bytes(stats.get('current_bytes', 0)):>9} "
            f"{int(stats.get('respawns', 0)):>7}{flags}"
        )

    out.append("")
    out.append(f"events (last {len(events)}):")
    if not events:
        out.append("  (journal empty)")
    for event in events:
        stamp = time.strftime(
            "%H:%M:%S", time.localtime(float(event.get("ts", 0)))
        )
        attrs = event.get("attrs") or {}
        detail = " ".join(
            f"{k}={attrs[k]}" for k in sorted(attrs)
        )
        out.append(
            f"  #{event.get('seq', '?'):>4} {stamp} "
            f"{event.get('kind', '?'):<22} {detail}"
        )
    return "\n".join(out) + "\n"


def fetch_frame(
    client: SessionClient, events_limit: int = 10
) -> "tuple[Dict[str, Any], List[Dict[str, Any]]]":
    """One poll: statusz + the journal tail."""
    status = client.request({"op": "statusz"})
    if not status.get("ok", False):
        raise ConnectionError(
            f"statusz refused: {status.get('error')}: {status.get('message')}"
        )
    tail = client.request({"op": "eventsz", "limit": events_limit})
    events = tail.get("events", []) if tail.get("ok", False) else []
    return status, events


def run_top(
    host: str,
    port: int,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    events_limit: int = 10,
    ansi: Optional[bool] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Poll-and-render loop.  Returns a process exit code.

    ``ansi=None`` auto-detects: a TTY gets clear-screen redraws and an
    endless loop; a non-TTY (pipe, CI) gets plain sequential frames and
    — unless ``iterations`` says otherwise — a single shot.
    """
    stream = out if out is not None else sys.stdout
    if ansi is None:
        ansi = bool(getattr(stream, "isatty", lambda: False)())
    if iterations is None and not ansi:
        iterations = 1  # non-interactive default: one frame, exit
    try:
        client = SessionClient(host, port)
    except OSError as exc:
        print(f"repro top: cannot connect to {host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    shown = 0
    try:
        while True:
            try:
                status, events = fetch_frame(client, events_limit)
            except (OSError, ConnectionError, json.JSONDecodeError) as exc:
                print(f"repro top: session went away: {exc}",
                      file=sys.stderr)
                return 1
            frame = render_top(status, events)
            if ansi:
                stream.write(ANSI_CLEAR + frame)
            else:
                stream.write(frame)
            stream.flush()
            shown += 1
            if iterations is not None and shown >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()
