"""Bounded structured event journal for resident sessions.

A :class:`VerifierSession` lives for days; its history — epoch commits,
delta classifications, worker respawns, stale-epoch rejections,
degradations, ground-truth spot checks — is what an operator pages
through when the fleet misbehaves.  :class:`EventJournal` keeps that
history as typed, timestamped records with a **monotonic sequence
number**, bounded in memory (oldest records drop, with the drop count
retained so readers can detect the gap) and optionally mirrored to a
JSONL sink so a crash post-mortem still has the full tail on disk.

Records are plain data: ``seq`` (1-based, never reused), ``ts`` (wall
clock), ``kind`` (one of :data:`EVENT_KINDS`), and a flat JSON-safe
``attrs`` dict.  Consumers replay with ``events(since=seq)`` — the
``eventsz`` API op and ``repro top`` poll exactly that way.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: The closed taxonomy of journal record kinds.  ``record()`` rejects
#: anything else so dashboards can rely on the set being stable.
EVENT_KINDS = frozenset(
    {
        "boot",  # session came up (warm or cold)
        "epoch_commit",  # a new CommittedView was published
        "delta_classified",  # admission classified a delta (full/dirty-shard)
        "worker_respawn",  # supervisor respawned a worker
        "stale_epoch_rejection",  # a fenced RPC from an old epoch was refused
        "degraded",  # session fell back to read-only
        "ground_truth",  # concrete-packet spot check result
        "drain",  # session started draining for shutdown
        "telemetry_gap",  # collector saw missing telemetry frames
        "load_shed",  # admission queue refused a delta
        "worker_lost",  # respawn budget exhausted; worker left the fleet
        "shard_reassigned",  # a lost worker's state migrated to a survivor
        "worker_rejoined",  # a blacklisted host healed and was rebalanced in
    }
)


@dataclass(frozen=True)
class JournalEvent:
    """One typed, timestamped record."""

    seq: int
    ts: float
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JournalEvent":
        return cls(
            seq=int(payload["seq"]),
            ts=float(payload["ts"]),
            kind=str(payload["kind"]),
            attrs=dict(payload.get("attrs", {})),
        )


class EventJournal:
    """Bounded in-memory ring of :class:`JournalEvent` records.

    Thread safe; ``record()`` is called from the mutator thread, the
    supervisor (inside RPC retries), and the telemetry collector, while
    API handlers read concurrently.  When more than ``capacity`` events
    accumulate the oldest are dropped — ``dropped`` counts them and
    ``first_seq`` names the oldest still retained, so a reader that asks
    for ``since=0`` can tell replay is partial.
    """

    def __init__(
        self,
        capacity: int = 512,
        sink_path: Optional[str] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = capacity
        self._events: List[JournalEvent] = []
        self._lock = threading.Lock()
        self._clock = clock
        self._seq = 0
        self._dropped = 0
        self._sink_path = sink_path
        self._sink = None
        if sink_path:
            directory = os.path.dirname(sink_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._sink = open(sink_path, "a", encoding="utf-8")

    # -- writing ------------------------------------------------------

    def record(self, kind: str, **attrs: Any) -> JournalEvent:
        """Append one record; returns it (with its assigned seq)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown journal event kind: {kind!r}")
        with self._lock:
            self._seq += 1
            event = JournalEvent(
                seq=self._seq, ts=self._clock(), kind=kind, attrs=attrs
            )
            self._events.append(event)
            if len(self._events) > self.capacity:
                overflow = len(self._events) - self.capacity
                del self._events[:overflow]
                self._dropped += overflow
            if self._sink is not None:
                try:
                    self._sink.write(
                        json.dumps(event.to_dict(), sort_keys=True) + "\n"
                    )
                    self._sink.flush()
                except OSError:
                    # Disk trouble must never take the session down; the
                    # in-memory ring stays authoritative.
                    self._sink = None
        return event

    # -- reading ------------------------------------------------------

    def events(
        self, since: int = 0, limit: Optional[int] = None
    ) -> List[JournalEvent]:
        """Records with ``seq > since``, oldest first, up to ``limit``
        (the **newest** matching records when limit truncates)."""
        with self._lock:
            matched = [e for e in self._events if e.seq > since]
        if limit is not None and limit >= 0 and len(matched) > limit:
            matched = matched[-limit:]
        return matched

    def tail(self, n: int) -> List[JournalEvent]:
        with self._lock:
            return self._events[-n:] if n > 0 else []

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    @property
    def first_seq(self) -> int:
        """Seq of the oldest retained record (0 when empty)."""
        with self._lock:
            return self._events[0].seq if self._events else 0

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def describe(self) -> Dict[str, Any]:
        """Compact stats block for health/status payloads."""
        with self._lock:
            return {
                "last_seq": self._seq,
                "first_seq": self._events[0].seq if self._events else 0,
                "retained": len(self._events),
                "dropped": self._dropped,
                "capacity": self.capacity,
                "sink": self._sink_path,
            }

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
                self._sink = None


def read_journal(path: str) -> List[JournalEvent]:
    """Load a JSONL journal sink back into records (skips torn tail
    lines, which happen when the process died mid-write)."""
    events: List[JournalEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(JournalEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                continue
    return events


def journal_gaps(events: List[JournalEvent]) -> List[int]:
    """Seq numbers missing from an ordered replay (for CI gap checks)."""
    gaps: List[int] = []
    previous: Optional[int] = None
    for event in events:
        if previous is not None and event.seq > previous + 1:
            gaps.extend(range(previous + 1, event.seq))
        previous = event.seq
    return gaps
