"""Counters, gauges, and histograms for one verification run.

A :class:`MetricsRegistry` is snapshot-able mid-run: instruments are
created on first use and hold plain Python numbers, so ``snapshot()`` is
a cheap dict copy that can be taken between CPO rounds without pausing
the pipeline.  Increments are guarded by one registry-wide lock — the
threaded runtime updates counters from phase threads — which costs a few
hundred nanoseconds per event at the per-batch/per-round granularity the
pipeline uses (never per BDD operation).
"""

from __future__ import annotations

import json
import os
import random
import threading
import zlib
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value; also tracks the maximum it ever held."""

    __slots__ = ("name", "value", "high_water", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.high_water:
                self.high_water = value


class Histogram:
    """A distribution of observations with bounded memory.

    Up to :data:`RESERVOIR_SIZE` observations are retained verbatim, so
    percentiles are *exact* for any run that records fewer events than
    the cap (batch verifications record thousands, not millions).  Past
    the cap — a resident ``repro serve`` session observing every query —
    the retained set becomes a uniform reservoir sample (Vitter's
    algorithm R, seeded deterministically from the instrument name), so
    percentiles degrade gracefully to an unbiased approximation while
    ``count``/``sum``/``mean``/``min``/``max`` stay exact.
    """

    RESERVOIR_SIZE = 8192

    __slots__ = (
        "name",
        "values",
        "_lock",
        "_cap",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_rng",
    )

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        reservoir_size: Optional[int] = None,
    ) -> None:
        self.name = name
        self.values: List[float] = []
        self._lock = lock
        self._cap = max(1, reservoir_size or self.RESERVOIR_SIZE)
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        # Deterministic per-name seed: identical runs sample identically.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        with self._lock:
            if self._count == 0:
                self._min = self._max = value
            else:
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
            self._count += 1
            self._sum += value
            if len(self.values) < self._cap:
                self.values.append(value)
            else:
                # Algorithm R: the n-th observation (1-based; _count was
                # just incremented, so _count == n here) must be kept
                # with probability cap/n.  randrange(_count) draws
                # uniformly from [0, n), so P(slot < cap) == cap/n —
                # drawing over [0, n-1) or using the pre-increment count
                # would oversample late arrivals.
                slot = self._rng.randrange(self._count)
                if slot < self._cap:
                    self.values[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def sampled(self) -> bool:
        """True once the reservoir overflowed and percentiles are
        approximate rather than exact."""
        return self._count > self._cap

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linear interpolation.

        Exact while ``count <= RESERVOIR_SIZE``; computed over a uniform
        sample (unbiased, approximate) once the reservoir overflows.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range [0, 100]")
        with self._lock:
            values = sorted(self.values)
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(values):
            return values[-1]
        return values[low] * (1 - frac) + values[low + 1] * frac

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count = self._count
            total = self._sum
            low, high = self._min, self._max
            sampled = count > self._cap
        if not count:
            return {"count": 0}
        result = {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": low,
            "max": high,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
        if sampled:
            result["sampled"] = True
        return result


class MetricsRegistry:
    """Get-or-create registry of named instruments for one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            with self._lock:
                found = self._counters.setdefault(
                    name, Counter(name, self._lock)
                )
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            with self._lock:
                found = self._gauges.setdefault(name, Gauge(name, self._lock))
        return found

    def set_gauges(self, values: Dict[str, float]) -> None:
        """Set several gauges at once (e.g. a health snapshot: serving
        epoch, admission queue depth, degraded flag)."""
        for name, value in values.items():
            self.gauge(name).set(value)

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            with self._lock:
                found = self._histograms.setdefault(
                    name, Histogram(name, self._lock)
                )
        return found

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of every instrument, safe to take mid-run."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "high_water": gauge.high_water}
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def write_json(
        self, path: str, extra: Optional[Dict[str, Any]] = None
    ) -> None:
        """Persist a snapshot (plus run-level ``extra`` sections)."""
        payload = self.snapshot()
        if extra:
            payload.update(extra)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
