"""Counters, gauges, and histograms for one verification run.

A :class:`MetricsRegistry` is snapshot-able mid-run: instruments are
created on first use and hold plain Python numbers, so ``snapshot()`` is
a cheap dict copy that can be taken between CPO rounds without pausing
the pipeline.  Increments are guarded by one registry-wide lock — the
threaded runtime updates counters from phase threads — which costs a few
hundred nanoseconds per event at the per-batch/per-round granularity the
pipeline uses (never per BDD operation).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value; also tracks the maximum it ever held."""

    __slots__ = ("name", "value", "high_water", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.high_water:
                self.high_water = value


class Histogram:
    """A distribution of observations with exact percentiles.

    Observations are retained (runs record thousands of events, not
    millions), so percentiles are computed by sorting on demand — exact,
    and plenty fast at this scale.
    """

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.values: List[float] = []
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linear interpolation."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range [0, 100]")
        with self._lock:
            values = sorted(self.values)
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(values):
            return values[-1]
        return values[low] * (1 - frac) + values[low + 1] * frac

    def summary(self) -> Dict[str, float]:
        with self._lock:
            values = list(self.values)
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "sum": sum(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments for one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            with self._lock:
                found = self._counters.setdefault(
                    name, Counter(name, self._lock)
                )
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            with self._lock:
                found = self._gauges.setdefault(name, Gauge(name, self._lock))
        return found

    def set_gauges(self, values: Dict[str, float]) -> None:
        """Set several gauges at once (e.g. a health snapshot: serving
        epoch, admission queue depth, degraded flag)."""
        for name, value in values.items():
            self.gauge(name).set(value)

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            with self._lock:
                found = self._histograms.setdefault(
                    name, Histogram(name, self._lock)
                )
        return found

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of every instrument, safe to take mid-run."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "high_water": gauge.high_water}
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def write_json(
        self, path: str, extra: Optional[Dict[str, Any]] = None
    ) -> None:
        """Persist a snapshot (plus run-level ``extra`` sections)."""
        payload = self.snapshot()
        if extra:
            payload.update(extra)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
