"""Merging per-participant trace shards into one Perfetto timeline.

Every participant (the controller, each worker — in-process or OS
process) writes its own JSONL shard into the run's trace directory; this
module folds them into a single Chrome trace-event JSON file loadable in
Perfetto or ``chrome://tracing``:

* one *process* track per participant (``pid`` 0 is the controller,
  workers follow in id order), with ``process_name`` metadata events so
  the UI labels the tracks;
* spans become ``"X"`` (complete) events with microsecond timestamps
  normalized to the run's earliest span;
* RPC caller/callee span pairs (matched by ``flow_id``) additionally
  emit ``"s"``/``"f"`` flow events, drawing the cross-process arrows;
* shards from killed-and-respawned workers merge onto the *same*
  process track (the participant label, not the OS pid, is the identity)
  with an ``incarnation`` argument distinguishing the lifetimes; a torn
  final line — the signature of a killed writer — is skipped, not fatal.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional, Tuple


def read_shard(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """One shard's (meta, span records); tolerant of a torn final line."""
    meta: Dict[str, Any] = {}
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed process
            if payload.get("type") == "meta":
                meta = payload
            elif payload.get("type") == "span":
                payload.setdefault("proc", meta.get("process", "unknown"))
                payload["incarnation"] = meta.get("incarnation", 0)
                records.append(payload)
    return meta, records


def read_shards(trace_dir: str) -> List[Dict[str, Any]]:
    """Every span record in ``trace_dir``, across all shards."""
    records: List[Dict[str, Any]] = []
    for path in sorted(glob.glob(os.path.join(trace_dir, "*.jsonl"))):
        _meta, shard_records = read_shard(path)
        records.extend(shard_records)
    return records


def _process_order(labels) -> List[str]:
    """Stable track order: controller first, then workers numerically."""

    def key(label: str):
        if label == "controller":
            return (0, 0, label)
        if label.startswith("worker"):
            suffix = label[len("worker"):]
            if suffix.isdigit():
                return (1, int(suffix), label)
        return (2, 0, label)

    return sorted(set(labels), key=key)


def chrome_events(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Chrome trace-event list for merged span records."""
    if not records:
        return []
    pids = {
        label: pid
        for pid, label in enumerate(_process_order(r["proc"] for r in records))
    }
    base = min(r["ts"] for r in records)
    events: List[Dict[str, Any]] = []
    for label, pid in sorted(pids.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for record in records:
        pid = pids[record["proc"]]
        tid = record.get("tid", 0)
        ts_us = (record["ts"] - base) * 1e6
        dur_us = record["dur"] * 1e6
        args = dict(record.get("attrs") or {})
        if record.get("incarnation"):
            args["incarnation"] = record["incarnation"]
        flow_id = record.get("flow_id")
        if flow_id is not None:
            args["rpc_id"] = flow_id
        events.append(
            {
                "name": record["name"],
                "cat": record.get("cat", "run"),
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": ts_us,
                "dur": dur_us,
                "args": args,
            }
        )
        if flow_id is not None:
            # Flow arrows: start inside the caller's span, finish bound
            # to the enclosing callee slice ("bp": "e").
            flow_event = {
                "name": "rpc",
                "cat": "rpc",
                "id": flow_id,
                "pid": pid,
                "tid": tid,
                "ts": ts_us,
            }
            if record.get("flow") == "out":
                flow_event["ph"] = "s"
                events.append(flow_event)
            elif record.get("flow") == "in":
                flow_event["ph"] = "f"
                flow_event["bp"] = "e"
                events.append(flow_event)
    return events


def merge_shards(
    trace_dir: str,
    out_path: str,
    run_metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge every shard in ``trace_dir`` into one Chrome trace file.

    Returns summary stats (span/event/process counts) for logging.
    """
    records = read_shards(trace_dir)
    events = chrome_events(records)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(run_metadata or {}),
    }
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, default=str)
        handle.write("\n")
    return {
        "spans": len(records),
        "events": len(events),
        "processes": len({r["proc"] for r in records}),
        "path": out_path,
    }


def validate_chrome_trace(path: str) -> List[str]:
    """Schema-check a Chrome trace-event file; returns problems (empty =
    valid).  Used by the CI trace job and the obs tests."""
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable trace file: {exc}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M", "s", "f", "t", "i"):
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                problems.append(f"event {index}: missing {field!r}")
        if phase == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {index}: X event without numeric ts")
            if not isinstance(event.get("dur"), (int, float)) or event.get(
                "dur", 0
            ) < 0:
                problems.append(f"event {index}: X event with bad dur")
        if phase in ("s", "f") and "id" not in event:
            # Unpaired flows are legal (a faulted RPC records only the
            # caller side), but every flow event needs an id to bind on.
            problems.append(f"event {index}: flow event without id")
    return problems
