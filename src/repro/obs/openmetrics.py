"""OpenMetrics/Prometheus text exposition for the metrics registry.

``render_openmetrics`` turns a ``MetricsRegistry.snapshot()`` into the
Prometheus text format (OpenMetrics-flavoured: typed families, counters
with a ``_total`` suffix, histograms as summaries with ``quantile``
labels, terminated by ``# EOF``).  Internal per-worker gauges named
``worker<N>.<stat>`` become one labelled family per stat —
``s2_worker_bdd_nodes{worker="3"}`` — so a fleet of any size scrapes
into a fixed set of series names.

``validate_openmetrics`` is the strict structural check used by tests
and the CI serve-chaos scrape; ``MetricsHTTPServer`` is the tiny
stdlib-only scrape endpoint behind ``--metrics-listen`` (paths:
``/metrics``, ``/eventsz``, ``/statusz``, ``/healthz``).
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

_WORKER_GAUGE = re.compile(r"^worker(\d+)\.(.+)$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_FAMILY_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$"
)
_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def sanitize_metric_name(name: str, namespace: str = "s2") -> str:
    """Map an internal dotted metric name onto a legal family name."""
    cleaned = _BAD_CHARS.sub("_", name)
    if not cleaned or not _FAMILY_NAME.match(cleaned):
        cleaned = "_" + cleaned
    return f"{namespace}_{cleaned}"


def _fmt(value: Any) -> str:
    """Prometheus float formatting (integers stay integral)."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "0"
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels(pairs: Dict[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(pairs.items())
    )
    return "{" + inner + "}"


def render_openmetrics(
    snapshot: Dict[str, Any], namespace: str = "s2"
) -> str:
    """Render a registry snapshot as Prometheus/OpenMetrics text."""
    # family name -> (type, [(label-dict, sample-suffix, value), ...])
    families: "Dict[str, Tuple[str, List[Tuple[Dict[str, str], str, Any]]]]"
    families = {}

    def family(name: str, kind: str):
        found = families.get(name)
        if found is not None and found[0] != kind:
            # The registry allows a counter and a gauge to share a name
            # (e.g. rpc.dedup_bytes_saved); a Prometheus family cannot,
            # so the later kind gets a disambiguating suffix.
            name = f"{name}_{kind}"
            found = families.get(name)
        if found is None:
            found = (kind, [])
            families[name] = found
        return found[1]

    for name, value in snapshot.get("counters", {}).items():
        fam = sanitize_metric_name(name, namespace)
        family(fam, "counter").append(({}, "_total", value))

    for name, payload in snapshot.get("gauges", {}).items():
        value = (
            payload.get("value", 0)
            if isinstance(payload, dict)
            else payload
        )
        match = _WORKER_GAUGE.match(name)
        if match:
            fam = sanitize_metric_name(
                "worker_" + match.group(2), namespace
            )
            labels = {"worker": match.group(1)}
        else:
            fam = sanitize_metric_name(name, namespace)
            labels = {}
        family(fam, "gauge").append((labels, "", value))

    for name, summary in snapshot.get("histograms", {}).items():
        fam = sanitize_metric_name(name, namespace)
        samples = family(fam, "summary")
        count = summary.get("count", 0)
        samples.append(({}, "_count", count))
        samples.append(({}, "_sum", summary.get("sum", 0.0)))
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if key in summary:
                samples.append(
                    ({"quantile": quantile}, "", summary[key])
                )

    lines: List[str] = []
    for fam in sorted(families):
        kind, samples = families[fam]
        lines.append(f"# TYPE {fam} {kind}")
        for labels, suffix, value in samples:
            lines.append(f"{fam}{suffix}{_labels(labels)} {_fmt(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_openmetrics(text: str) -> List[str]:
    """Structural problems in an exposition payload (empty = valid).

    Checks the properties a Prometheus scraper actually depends on:
    parseable sample lines, every family declared by a ``# TYPE`` before
    its samples, no duplicate declarations, counters suffixed
    ``_total``, a single terminating ``# EOF`` with nothing after it.
    """
    problems: List[str] = []
    if not text.endswith("\n"):
        problems.append("payload does not end with a newline")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    declared: Dict[str, str] = {}
    saw_eof = False
    for lineno, line in enumerate(lines, start=1):
        if saw_eof:
            problems.append(f"line {lineno}: content after # EOF")
            break
        if line == "# EOF":
            saw_eof = True
            continue
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) >= 4 and parts[1] == "TYPE":
                fam, kind = parts[2], parts[3]
                if not _FAMILY_NAME.match(fam):
                    problems.append(
                        f"line {lineno}: bad family name {fam!r}"
                    )
                if kind not in _TYPES:
                    problems.append(
                        f"line {lineno}: unknown type {kind!r}"
                    )
                if fam in declared:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {fam}"
                    )
                declared[fam] = kind
            elif len(parts) >= 2 and parts[1] in ("HELP", "UNIT"):
                continue
            else:
                problems.append(f"line {lineno}: malformed comment")
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {lineno}: non-numeric value {value!r}"
                )
        fam = name
        for suffix in ("_total", "_count", "_sum", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                fam = name[: -len(suffix)]
                break
        kind = declared.get(fam)
        if kind is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
            continue
        if kind == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {lineno}: counter sample {name!r} lacks _total"
            )
    if not saw_eof:
        problems.append("missing # EOF terminator")
    return problems


class MetricsHTTPServer:
    """Stdlib scrape endpoint for live metrics, events, and status.

    Serves ``/metrics`` (OpenMetrics text), ``/eventsz?since=N&limit=M``
    (JSON journal replay, when a journal is attached), ``/statusz``
    (JSON status payload, when a status callable is given) and
    ``/healthz`` (always ``{"ok": true}``) on a daemon thread.  Binds
    ``host:port`` — port 0 picks an ephemeral port, read back via
    ``self.port``.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Dict[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
        journal: Optional[Any] = None,
        status_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        namespace: str = "s2",
    ) -> None:
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *_args) -> None:  # silence stderr
                pass

            def _send(
                self, code: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                try:
                    parsed = urlparse(self.path)
                    route = parsed.path.rstrip("/") or "/"
                    if route == "/metrics":
                        text = render_openmetrics(
                            outer.snapshot_fn(), namespace=outer.namespace
                        )
                        self._send(
                            200,
                            text.encode("utf-8"),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif route == "/eventsz" and outer.journal is not None:
                        query = parse_qs(parsed.query)
                        since = int(query.get("since", ["0"])[0])
                        raw_limit = query.get("limit", [None])[0]
                        limit = (
                            int(raw_limit) if raw_limit is not None else None
                        )
                        payload = {
                            "journal": outer.journal.describe(),
                            "events": [
                                e.to_dict()
                                for e in outer.journal.events(
                                    since=since, limit=limit
                                )
                            ],
                        }
                        self._send(
                            200,
                            json.dumps(payload).encode("utf-8"),
                            "application/json",
                        )
                    elif route == "/statusz" and outer.status_fn is not None:
                        self._send(
                            200,
                            json.dumps(
                                outer.status_fn(), default=str
                            ).encode("utf-8"),
                            "application/json",
                        )
                    elif route == "/healthz":
                        self._send(
                            200, b'{"ok": true}', "application/json"
                        )
                    else:
                        self._send(404, b"not found\n", "text/plain")
                except (BrokenPipeError, ConnectionResetError):
                    pass
                except Exception as exc:  # never kill the serving thread
                    try:
                        self._send(
                            500,
                            f"error: {exc}\n".encode("utf-8"),
                            "text/plain",
                        )
                    except OSError:
                        pass

        self.snapshot_fn = snapshot_fn
        self.journal = journal
        self.status_fn = status_fn
        self.namespace = namespace
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)
