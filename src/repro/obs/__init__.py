"""Unified observability: tracing, metrics, and cross-runtime collection.

The measurement substrate under the paper's §5 phenomena: nested spans
with attributes per participant (:mod:`repro.obs.tracer`), a snapshot-able
:class:`MetricsRegistry` (:mod:`repro.obs.metrics`), per-worker JSONL
trace shards merged into one Perfetto-loadable timeline with RPC spans
stitched caller↔callee (:mod:`repro.obs.merge`), and per-phase breakdown
tables (:mod:`repro.obs.report`, surfaced as ``repro report``).

Tracing is compiled into the pipeline permanently; the disabled path is
the shared :data:`NULL_TRACER` whose spans are no-ops.
"""

from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .journal import (  # noqa: F401
    EVENT_KINDS,
    EventJournal,
    JournalEvent,
    journal_gaps,
    read_journal,
)
from .telemetry import (  # noqa: F401
    FRAME_VERSION,
    TelemetryCollector,
    TelemetrySource,
    validate_frame,
)
from .openmetrics import (  # noqa: F401
    MetricsHTTPServer,
    render_openmetrics,
    validate_openmetrics,
)
from .tracer import (  # noqa: F401
    NULL_SPAN,
    NULL_TRACER,
    SCHEMA_VERSION,
    Span,
    SpanRecord,
    Tracer,
    stopwatch,
)
from .merge import (  # noqa: F401
    chrome_events,
    merge_shards,
    read_shard,
    read_shards,
    validate_chrome_trace,
)
from .report import (  # noqa: F401
    load_spans,
    phase_breakdown,
    render_report,
)
