"""Property checking: the five query types of §4.4.

A query is a 4-tuple ``(H, Vs, Vd, Vt)``: a checked header space, source
nodes, destination nodes, and transit (waypoint) nodes.  The checkers are
written against an abstract ``forward(sources, header_bdd)`` callable so
the same logic runs over the monolithic driver and over S2's distributed
DPO (which supplies its own forwarding function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..bdd.engine import FALSE, TRUE, BddEngine
from ..bdd.headerspace import HeaderEncoding
from ..net.ip import Prefix
from .forwarding import FinalPacket, FinalState

# forward(sources, header_bdd, trace) -> finals
ForwardFn = Callable[[Sequence[str], int, bool], List[FinalPacket]]


@dataclass(frozen=True)
class Query:
    """A §4.4 query.  ``header_space=None`` means the full header space."""

    sources: Tuple[str, ...]
    destinations: Tuple[str, ...] = ()
    transits: Tuple[str, ...] = ()
    header_space: Optional[Prefix] = None

    @classmethod
    def single_pair(
        cls, source: str, destination: str, prefix: Optional[Prefix] = None
    ) -> "Query":
        return cls(
            sources=(source,),
            destinations=(destination,),
            header_space=prefix,
        )


@dataclass
class ReachabilityResult:
    """Per (source, destination): the BDD of packets that arrived."""

    reachable: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def holds(self, source: str, destination: str) -> bool:
        return self.reachable.get((source, destination), FALSE) != FALSE

    def pairs(self) -> List[Tuple[str, str]]:
        return sorted(
            pair for pair, bdd in self.reachable.items() if bdd != FALSE
        )


@dataclass(frozen=True)
class MultipathViolation:
    source: str
    states: Tuple[FinalState, FinalState]
    overlap: int  # BDD of the inconsistently treated packets


@dataclass(frozen=True)
class PropertyViolation:
    """A loop or blackhole witness."""

    state: FinalState
    node: str
    source: str
    bdd: int
    example: str  # human-readable witness header


class PropertyChecker:
    """Evaluates queries against a forwarding function."""

    def __init__(
        self,
        engine: BddEngine,
        encoding: HeaderEncoding,
        forward: ForwardFn,
        install_waypoints: Optional[Callable[[Sequence[str]], None]] = None,
    ) -> None:
        self._engine = engine
        self._encoding = encoding
        self._forward = forward
        self._install_waypoints = install_waypoints

    def _header_bdd(self, query: Query) -> int:
        if query.header_space is None:
            return TRUE
        return self._encoding.prefix_bdd(self._engine, query.header_space)

    # -- reachability -------------------------------------------------------

    def check_reachability(self, query: Query) -> ReachabilityResult:
        """Packets from each source that ARRIVE at each destination."""
        header = self._header_bdd(query)
        result = ReachabilityResult()
        finals = self._forward(query.sources, header, False)
        wanted = set(query.destinations)
        for final in finals:
            if final.state is not FinalState.ARRIVE:
                continue
            if wanted and final.node not in wanted:
                continue
            key = (final.source, final.node)
            previous = result.reachable.get(key, FALSE)
            result.reachable[key] = self._engine.or_(previous, final.bdd)
        return result

    # -- waypointing ----------------------------------------------------------

    def check_waypoint(
        self, query: Query
    ) -> Dict[str, List[FinalPacket]]:
        """Check that all packets arriving at ``Vd`` visited every transit.

        Returns transit-node -> finals that *bypassed* it (empty = holds).
        The caller must have installed the §4.4 write rules (one metadata
        bit per transit) on the forwarding side before calling.
        """
        if self._install_waypoints is None:
            raise ValueError(
                "this checker's forwarding side has no waypoint support"
            )
        self._install_waypoints(query.transits)
        header = self._header_bdd(query)
        # Packets start with all waypoint bits clear.
        for index in range(len(query.transits)):
            var = self._encoding.metadata_var(index)
            header = self._engine.and_(header, self._engine.nvar(var))
        finals = self._forward(query.sources, header, False)
        wanted = set(query.destinations)
        violations: Dict[str, List[FinalPacket]] = {
            transit: [] for transit in query.transits
        }
        for final in finals:
            if final.state is not FinalState.ARRIVE:
                continue
            if wanted and final.node not in wanted:
                continue
            for index, transit in enumerate(query.transits):
                var = self._encoding.metadata_var(index)
                visited = self._engine.var(var)
                # pkt ∧ bdd_vt == pkt  ⟺  every packet visited vt
                if not self._engine.implies(final.bdd, visited):
                    violations[transit].append(final)
        return violations

    # -- multipath consistency -----------------------------------------------------

    def check_multipath_consistency(
        self, query: Query
    ) -> List[MultipathViolation]:
        """Find packets from one source with divergent final states."""
        if len(query.sources) != 1:
            raise ValueError("multipath consistency takes a single source")
        header = self._header_bdd(query)
        finals = self._forward(query.sources, header, False)
        violations: List[MultipathViolation] = []
        # Collapse finals per state first: |states| is 4, so the pairwise
        # comparison is constant-size regardless of path count.
        by_state: Dict[FinalState, int] = {}
        for final in finals:
            previous = by_state.get(final.state, FALSE)
            by_state[final.state] = self._engine.or_(previous, final.bdd)
        states = sorted(by_state, key=lambda s: s.value)
        for i, state_a in enumerate(states):
            for state_b in states[i + 1 :]:
                overlap = self._engine.and_(
                    by_state[state_a], by_state[state_b]
                )
                if overlap != FALSE:
                    violations.append(
                        MultipathViolation(
                            source=query.sources[0],
                            states=(state_a, state_b),
                            overlap=overlap,
                        )
                    )
        return violations

    # -- loop / blackhole ---------------------------------------------------------

    def find_violations(
        self, query: Query, states: FrozenSet[FinalState]
    ) -> List[PropertyViolation]:
        header = self._header_bdd(query)
        finals = self._forward(query.sources, header, False)
        violations: List[PropertyViolation] = []
        for final in finals:
            if final.state not in states:
                continue
            witness = self._engine.any_sat(final.bdd) or {}
            violations.append(
                PropertyViolation(
                    state=final.state,
                    node=final.node,
                    source=final.source,
                    bdd=final.bdd,
                    example=self._encoding.describe_assignment(witness),
                )
            )
        return violations

    def check_loop_free(self, query: Query) -> List[PropertyViolation]:
        return self.find_violations(query, frozenset([FinalState.LOOP]))

    def check_blackhole_free(self, query: Query) -> List[PropertyViolation]:
        return self.find_violations(
            query, frozenset([FinalState.BLACKHOLE])
        )
