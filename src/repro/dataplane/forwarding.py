"""Symbolic packet forwarding (§4.3).

A symbolic packet (a BDD over header bits) traverses the network; at every
hop it is conjoined with the inbound ACL, the port forwarding predicate,
and the outbound ACL (equation 1 of the paper).  Forwarding ends in one of
the four final states: ARRIVE, EXIT, BLACKHOLE, LOOP.

The mechanism is split from the driver so the same code serves both the
monolithic verifier and S2's distributed DPV: a :class:`ForwardingContext`
owns one BDD engine and the predicates of *its* nodes, and processing a
packet yields finals plus packets bound for other nodes — which the
monolithic driver loops back locally and the DPO ships across workers
(serializing the BDD at the boundary).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..bdd.engine import FALSE, TRUE, BddEngine
from ..bdd.headerspace import HeaderEncoding
from ..net.topology import Topology
from .predicates import PortPredicates

DEFAULT_MAX_HOPS = 24


class FinalState(enum.Enum):
    ARRIVE = "arrive"
    EXIT = "exit"
    BLACKHOLE = "blackhole"
    LOOP = "loop"


@dataclass(frozen=True)
class SymbolicPacket:
    """A packet set in flight, positioned at ``node`` (entering ``in_port``)."""

    bdd: int
    node: str
    in_port: Optional[str]
    hops: int
    source: str
    path: Optional[Tuple[str, ...]] = None  # populated when tracing

    def stepped(self, bdd: int, node: str, in_port: str) -> "SymbolicPacket":
        path = self.path + (node,) if self.path is not None else None
        return SymbolicPacket(
            bdd=bdd,
            node=node,
            in_port=in_port,
            hops=self.hops + 1,
            source=self.source,
            path=path,
        )


@dataclass(frozen=True)
class FinalPacket:
    """A packet set that reached a final state."""

    state: FinalState
    node: str
    bdd: int
    source: str
    hops: int
    path: Optional[Tuple[str, ...]] = None
    out_port: Optional[str] = None  # for EXIT finals


@dataclass(frozen=True)
class ForwardingStep:
    """One hop of processing, recorded for traces (Figure 11)."""

    index: int
    from_node: str
    out_port: str
    to_node: str


class ForwardingContext:
    """Holds one engine plus the predicates and adjacency of a node set.

    In the monolithic verifier there is a single context for the whole
    network; in S2 each worker has one, and ``adjacency`` still spans the
    full topology so the context knows *where* a packet goes next even
    when the neighbor's predicates live on another worker.
    """

    def __init__(
        self,
        engine: BddEngine,
        encoding: HeaderEncoding,
        topology: Topology,
        max_hops: int = DEFAULT_MAX_HOPS,
    ) -> None:
        self.engine = engine
        self.encoding = encoding
        self.max_hops = max_hops
        self.predicates: Dict[str, PortPredicates] = {}
        self.waypoint_bits: Dict[str, int] = {}
        # (node, iface) -> (peer node, peer iface); absent = edge port
        self.adjacency: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for link in topology.links():
            self.adjacency[(link.a.node, link.a.interface)] = (
                link.b.node,
                link.b.interface,
            )
            self.adjacency[(link.b.node, link.b.interface)] = (
                link.a.node,
                link.a.interface,
            )

    def add_node(self, predicates: PortPredicates) -> None:
        self.predicates[predicates.node] = predicates

    def set_waypoint_bit(self, node: str, metadata_index: int) -> None:
        """Install the §4.4 "write rule": packets passing ``node`` get the
        given metadata bit set."""
        self.waypoint_bits[node] = self.encoding.metadata_var(metadata_index)

    def owns(self, node: str) -> bool:
        return node in self.predicates

    # -- the hop function ---------------------------------------------------

    def process(
        self, packet: SymbolicPacket
    ) -> Tuple[List[FinalPacket], List[SymbolicPacket]]:
        """Apply one node's processing to a packet.

        Returns ``(finals, outgoing)``; every outgoing packet is located
        at a neighbor node (which may belong to a different context).
        """
        engine = self.engine
        predicates = self.predicates[packet.node]
        finals: List[FinalPacket] = []
        outgoing: List[SymbolicPacket] = []

        pkt = packet.bdd
        if packet.in_port is not None:
            permitted = engine.and_(
                pkt, predicates.acl_in_for(packet.in_port)
            )
            denied = engine.diff(pkt, permitted)
            if denied != FALSE:
                finals.append(self._final(packet, FinalState.BLACKHOLE, denied))
            pkt = permitted
        if pkt == FALSE:
            return finals, outgoing

        waypoint_var = self.waypoint_bits.get(packet.node)
        if waypoint_var is not None:
            pkt = engine.set_var(pkt, waypoint_var, True)

        arrived = engine.and_(pkt, predicates.receive)
        if arrived != FALSE:
            finals.append(self._final(packet, FinalState.ARRIVE, arrived))

        dropped = engine.and_(pkt, predicates.drop)
        if dropped != FALSE:
            finals.append(self._final(packet, FinalState.BLACKHOLE, dropped))

        for iface, forward_pred in sorted(predicates.forward.items()):
            out = engine.and_(pkt, forward_pred)
            if out == FALSE:
                continue
            permitted_out = engine.and_(
                out, predicates.acl_out_for(iface)
            )
            denied_out = engine.diff(out, permitted_out)
            if denied_out != FALSE:
                finals.append(
                    self._final(packet, FinalState.BLACKHOLE, denied_out)
                )
            if permitted_out == FALSE:
                continue
            peer = self.adjacency.get((packet.node, iface))
            if peer is None:
                finals.append(
                    self._final(
                        packet, FinalState.EXIT, permitted_out, out_port=iface
                    )
                )
                continue
            if packet.hops + 1 > self.max_hops:
                finals.append(
                    self._final(packet, FinalState.LOOP, permitted_out)
                )
                continue
            peer_node, peer_iface = peer
            outgoing.append(
                packet.stepped(permitted_out, peer_node, peer_iface)
            )
        return finals, outgoing

    def _final(
        self,
        packet: SymbolicPacket,
        state: FinalState,
        bdd: int,
        out_port: Optional[str] = None,
    ) -> FinalPacket:
        return FinalPacket(
            state=state,
            node=packet.node,
            bdd=bdd,
            source=packet.source,
            hops=packet.hops,
            path=packet.path,
            out_port=out_port,
        )


def inject(
    node: str, bdd: int, trace: bool = False
) -> SymbolicPacket:
    """A freshly injected symbolic packet at a source node."""
    return SymbolicPacket(
        bdd=bdd,
        node=node,
        in_port=None,
        hops=0,
        source=node,
        path=(node,) if trace else None,
    )


class PacketBuffer:
    """A work queue that merges symbolic packets per (source, node,
    in-port, hop count).

    In Clos networks ECMP makes the number of distinct *paths* between two
    nodes combinatorial, but all ECMP paths have equal length — so packets
    meeting at the same port with the same hop count can be OR-merged
    without losing anything: reachability, waypoint bits (they live inside
    the BDD), and loop detection (hop counts still grow along any cycle,
    so loops still reach ``max_hops``) are all preserved.  Path *tracing*
    is the one casualty, so traced packets bypass merging.
    """

    def __init__(self, engine: BddEngine, merge: bool = True) -> None:
        self._engine = engine
        self._merge = merge
        self._merged: Dict[Tuple[str, str, Optional[str], int], int] = {}
        self._traced: List[SymbolicPacket] = []

    def push(self, packet: SymbolicPacket) -> None:
        if packet.path is not None or not self._merge:
            self._traced.append(packet)
            return
        key = (packet.source, packet.node, packet.in_port, packet.hops)
        existing = self._merged.get(key, FALSE)
        self._merged[key] = self._engine.or_(existing, packet.bdd)

    def push_all(self, packets: Iterable[SymbolicPacket]) -> None:
        for packet in packets:
            self.push(packet)

    def __bool__(self) -> bool:
        return bool(self._merged) or bool(self._traced)

    def __len__(self) -> int:
        return len(self._merged) + len(self._traced)

    def pop_wave(self) -> List[SymbolicPacket]:
        """Drain the lowest-hop-count batch (BFS order maximizes merging)."""
        if self._traced:
            packets, self._traced = self._traced, []
            return packets
        if not self._merged:
            return []
        low = min(key[3] for key in self._merged)
        wave = []
        for key in sorted(k for k in self._merged if k[3] == low):
            source, node, in_port, hops = key
            wave.append(
                SymbolicPacket(
                    bdd=self._merged.pop(key),
                    node=node,
                    in_port=in_port,
                    hops=hops,
                    source=source,
                )
            )
        return wave


def run_to_completion(
    context: ForwardingContext,
    initial: Iterable[SymbolicPacket],
    merge: bool = True,
) -> List[FinalPacket]:
    """Monolithic driver: forward packets until every one is final.

    The distributed driver lives in :mod:`repro.dist.dpo`; this one is the
    Batfish-baseline path where a single context owns every node.
    ``merge=False`` disables wave merging (per-path enumeration) — only
    used by the ablation benchmark; it is combinatorial under ECMP.
    """
    finals: List[FinalPacket] = []
    buffer = PacketBuffer(context.engine, merge=merge)
    buffer.push_all(initial)
    while buffer:
        for packet in buffer.pop_wave():
            new_finals, outgoing = context.process(packet)
            finals.extend(new_finals)
            buffer.push_all(outgoing)
    return finals
