"""Data-plane substrate: FIBs, predicates, symbolic forwarding, queries."""

from .fib import Fib, FibAction, FibEntry, NextHop, NextHopResolver, build_fib  # noqa: F401
from .forwarding import (  # noqa: F401
    DEFAULT_MAX_HOPS,
    FinalPacket,
    FinalState,
    ForwardingContext,
    SymbolicPacket,
    inject,
    run_to_completion,
)
from .predicates import PortPredicates, compile_predicates  # noqa: F401
from .queries import (  # noqa: F401
    MultipathViolation,
    PropertyChecker,
    PropertyViolation,
    Query,
    ReachabilityResult,
)
from .verifier import DataPlaneVerifier  # noqa: F401
