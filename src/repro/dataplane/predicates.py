"""Port predicate compilation (§4.3, "pre-computing predicates").

For each device the verifier derives, from its FIB and ACLs:

* a **forwarding predicate** per port — the packets LPM-forwarded out of it;
* **ACL predicates** per port — the packets permitted inbound/outbound;
* a **receive predicate** — packets terminating at this device (Arrive);
* a **drop predicate** — packets discarded here (Blackhole), including the
  implicit drop of packets matching no FIB entry.

Compilation walks the FIB most-specific-first, carving each entry's packet
set out of the not-yet-covered space, which realizes exact LPM semantics
as a disjoint partition: forwarding + receive + drop predicates tile the
full header space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..bdd.engine import FALSE, TRUE, BddEngine
from ..bdd.headerspace import HeaderEncoding
from ..config.ast import DeviceConfig
from .fib import Fib, FibAction


@dataclass
class PortPredicates:
    """The compiled predicates of one device on one worker's engine."""

    node: str
    forward: Dict[str, int] = field(default_factory=dict)  # iface -> BDD
    acl_in: Dict[str, int] = field(default_factory=dict)
    acl_out: Dict[str, int] = field(default_factory=dict)
    receive: int = FALSE
    drop: int = FALSE

    def acl_in_for(self, iface: Optional[str]) -> int:
        """Inbound permit predicate (TRUE for injected/unfiltered ports)."""
        if iface is None:
            return TRUE
        return self.acl_in.get(iface, TRUE)

    def acl_out_for(self, iface: str) -> int:
        return self.acl_out.get(iface, TRUE)


def compile_predicates(
    config: DeviceConfig,
    fib: Fib,
    engine: BddEngine,
    encoding: HeaderEncoding,
) -> PortPredicates:
    """Compile one device's FIB and ACLs into :class:`PortPredicates`."""
    predicates = PortPredicates(node=fib.node)
    covered = FALSE
    # One encoding covers one address family; the other family's FIB
    # entries belong to that family's verification pass.
    for entry in fib.entries(width=encoding.address_bits):
        match = encoding.prefix_bdd(engine, entry.prefix)
        fresh = engine.diff(match, covered)
        if fresh == FALSE:
            covered = engine.or_(covered, match)
            continue
        if entry.action is FibAction.RECEIVE:
            predicates.receive = engine.or_(predicates.receive, fresh)
        elif entry.action is FibAction.DROP:
            predicates.drop = engine.or_(predicates.drop, fresh)
        else:
            for hop in entry.next_hops:
                existing = predicates.forward.get(hop.iface, FALSE)
                predicates.forward[hop.iface] = engine.or_(existing, fresh)
        covered = engine.or_(covered, match)
    # Packets matching no FIB entry are implicitly dropped here.
    predicates.drop = engine.or_(predicates.drop, engine.not_(covered))

    for iface in config.interfaces.values():
        if iface.acl_in is not None and iface.acl_in in config.acls:
            predicates.acl_in[iface.name] = encoding.acl_bdd(
                engine, config.acls[iface.acl_in]
            )
        if iface.acl_out is not None and iface.acl_out in config.acls:
            predicates.acl_out[iface.name] = encoding.acl_bdd(
                engine, config.acls[iface.acl_out]
            )
    return predicates
