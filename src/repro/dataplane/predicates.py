"""Port predicate compilation (§4.3, "pre-computing predicates").

For each device the verifier derives, from its FIB and ACLs:

* a **forwarding predicate** per port — the packets LPM-forwarded out of it;
* **ACL predicates** per port — the packets permitted inbound/outbound;
* a **receive predicate** — packets terminating at this device (Arrive);
* a **drop predicate** — packets discarded here (Blackhole), including the
  implicit drop of packets matching no FIB entry.

Compilation realizes exact LPM semantics as a disjoint partition —
forwarding + receive + drop predicates tile the full header space — by
walking the FIB's binary *trie* bottom-up: every trie node merges its
children's per-entry regions with one hash-consing ``mk`` call per entry,
and a deeper entry overrides its ancestors by construction.  This replaces
the historical most-specific-first entry walk (one ``diff``+``or_`` apply
chain per entry, O(n) quadratic-ish in practice) with a pass that performs
*zero* BDD apply operations for the partition itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..bdd.engine import FALSE, OP_OR, TRUE, BddEngine
from ..bdd.headerspace import HeaderEncoding
from ..config.ast import DeviceConfig
from .fib import Fib, FibAction, FibEntry


@dataclass
class PortPredicates:
    """The compiled predicates of one device on one worker's engine."""

    node: str
    forward: Dict[str, int] = field(default_factory=dict)  # iface -> BDD
    acl_in: Dict[str, int] = field(default_factory=dict)
    acl_out: Dict[str, int] = field(default_factory=dict)
    receive: int = FALSE
    drop: int = FALSE

    def acl_in_for(self, iface: Optional[str]) -> int:
        """Inbound permit predicate (TRUE for injected/unfiltered ports)."""
        if iface is None:
            return TRUE
        return self.acl_in.get(iface, TRUE)

    def acl_out_for(self, iface: str) -> int:
        return self.acl_out.get(iface, TRUE)

    # -- GC support ------------------------------------------------------

    def roots(self) -> Iterator[int]:
        """Every BDD id this predicate set holds (the engine GC roots)."""
        yield self.receive
        yield self.drop
        yield from self.forward.values()
        yield from self.acl_in.values()
        yield from self.acl_out.values()

    def remap(self, remap: Dict[int, int]) -> None:
        """Rewrite held ids after an engine compaction."""
        self.receive = remap[self.receive]
        self.drop = remap[self.drop]
        for table in (self.forward, self.acl_in, self.acl_out):
            for key, value in table.items():
                table[key] = remap[value]


def _lpm_regions(
    engine: BddEngine, fib: Fib, base: int, width: int
) -> Dict[Optional[FibEntry], int]:
    """The exact LPM partition of one address family's header space.

    Returns a map ``entry -> BDD`` of the (disjoint) packet sets whose
    longest-prefix match is that entry; the ``None`` key is the region
    matching no entry at all (the implicit drop).  Built bottom-up over
    the FIB trie with only ``mk`` calls.
    """

    def walk(node, depth: int, inherited):
        if node is None:
            return {inherited: TRUE}
        effective = node.entry if node.entry is not None else inherited
        if depth == width:
            return {effective: TRUE}
        low = walk(node.children[0], depth + 1, effective)
        high = walk(node.children[1], depth + 1, effective)
        var = base + depth
        merged = {}
        for key in low.keys() | high.keys():
            merged[key] = engine.mk(
                var, low.get(key, FALSE), high.get(key, FALSE)
            )
        return merged

    return walk(fib.trie_root(width), 0, None)


def compile_predicates(
    config: DeviceConfig,
    fib: Fib,
    engine: BddEngine,
    encoding: HeaderEncoding,
) -> PortPredicates:
    """Compile one device's FIB and ACLs into :class:`PortPredicates`."""
    predicates = PortPredicates(node=fib.node)
    # One encoding covers one address family; the other family's FIB
    # entries belong to that family's verification pass.
    regions = _lpm_regions(
        engine,
        fib,
        encoding.field_base("dst"),
        encoding.address_bits,
    )
    # The regions are pairwise disjoint, so the per-action unions below
    # are the only apply work left in FIB compilation.  Each union goes
    # through apply_many, the kernel's batched compile path (a balanced
    # reduction on the flat kernel, the historical left fold on dict).
    drop_regions = []
    receive_regions = []
    forward_regions: Dict[str, list] = {}
    for entry, region in sorted(
        regions.items(),
        key=lambda item: (item[0] is not None, item[0].prefix if item[0] else None),
    ):
        if entry is None or entry.action is FibAction.DROP:
            drop_regions.append(region)
        elif entry.action is FibAction.RECEIVE:
            receive_regions.append(region)
        else:
            for hop in entry.next_hops:
                forward_regions.setdefault(hop.iface, []).append(region)
    predicates.drop = engine.apply_many(OP_OR, drop_regions)
    predicates.receive = engine.apply_many(OP_OR, receive_regions)
    for iface, iface_regions in forward_regions.items():
        predicates.forward[iface] = engine.apply_many(OP_OR, iface_regions)

    for iface in config.interfaces.values():
        if iface.acl_in is not None and iface.acl_in in config.acls:
            predicates.acl_in[iface.name] = encoding.acl_bdd(
                engine, config.acls[iface.acl_in]
            )
        if iface.acl_out is not None and iface.acl_out in config.acls:
            predicates.acl_out[iface.name] = encoding.acl_bdd(
                engine, config.acls[iface.acl_out]
            )
    return predicates
