"""FIB construction: merge per-protocol RIBs into forwarding entries.

A :class:`Fib` maps prefixes to actions (forward out ports / receive
locally / discard) with longest-prefix-match semantics, realized both as a
binary trie (for concrete lookups and tests) and as a length-sorted entry
list (for predicate compilation, which needs "all entries, most specific
first").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..net.ip import Prefix
from ..routing.route import BgpRoute, Protocol, Route


class FibAction(enum.Enum):
    FORWARD = "forward"
    RECEIVE = "receive"
    DROP = "drop"


@dataclass(frozen=True)
class NextHop:
    """One resolved forwarding target."""

    iface: str
    node: str            # adjacent device reached through ``iface``
    address: int = 0


@dataclass(frozen=True)
class FibEntry:
    prefix: Prefix
    action: FibAction
    next_hops: Tuple[NextHop, ...] = ()
    protocol: Optional[Protocol] = None

    def describe(self) -> str:
        if self.action is FibAction.FORWARD:
            vias = ", ".join(f"{h.iface}->{h.node}" for h in self.next_hops)
            return f"{self.prefix} forward via [{vias}]"
        return f"{self.prefix} {self.action.value}"


class _TrieNode:
    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: List[Optional[_TrieNode]] = [None, None]
        self.entry: Optional[FibEntry] = None


class Fib:
    """The forwarding table of one device (dual-stack: one trie per
    address family)."""

    def __init__(self, node: str) -> None:
        self.node = node
        self._roots: Dict[int, _TrieNode] = {32: _TrieNode(), 128: _TrieNode()}
        self._entries: Dict[Prefix, FibEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry: FibEntry) -> None:
        """Insert an entry, replacing any previous entry for its prefix."""
        self._entries[entry.prefix] = entry
        node = self._roots[entry.prefix.width]
        for bit in entry.prefix.bits():
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        node.entry = entry

    def lookup(self, address: int, width: int = 32) -> Optional[FibEntry]:
        """Longest-prefix-match lookup of a concrete address."""
        node = self._roots[width]
        best = node.entry
        top = width - 1
        for i in range(width):
            bit = (address >> (top - i)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.entry is not None:
                best = node.entry
        return best

    def entries(self, width: Optional[int] = None) -> List[FibEntry]:
        """Entries ordered most-specific first (predicate order),
        optionally restricted to one address family."""
        selected = (
            self._entries.values()
            if width is None
            else [e for e in self._entries.values() if e.prefix.width == width]
        )
        return sorted(
            selected,
            key=lambda e: (-e.prefix.length, e.prefix.width, e.prefix.network),
        )

    def entry_for(self, prefix: Prefix) -> Optional[FibEntry]:
        return self._entries.get(prefix)

    def trie_root(self, width: int = 32) -> _TrieNode:
        """The binary trie of one address family's entries.

        This is the bulk-compilation entry point: predicate compilation
        walks the trie bottom-up and emits the exact LPM partition with
        hash-consing ``mk`` calls alone, instead of carving entries out of
        the covered space one chained ``or_``/``diff`` at a time.
        """
        return self._roots[width]


# -- building ------------------------------------------------------------------


class NextHopResolver:
    """Resolves next-hop addresses to (interface, adjacent node)."""

    def __init__(
        self,
        iface_of_addr: Dict[int, Tuple[str, str]],
        local_iface_for: Dict[str, Dict[int, str]],
    ) -> None:
        # address -> (owning node, its interface)
        self._iface_of_addr = iface_of_addr
        # node -> (peer address -> local interface)
        self._local_iface_for = local_iface_for

    @classmethod
    def from_snapshot(cls, snapshot) -> "NextHopResolver":
        iface_of_addr: Dict[int, Tuple[str, str]] = {}
        local_iface_for: Dict[str, Dict[int, str]] = {}
        for node in snapshot.topology.nodes():
            for iface in node.interfaces.values():
                iface_of_addr[iface.address] = (node.name, iface.name)
        for node in snapshot.topology.nodes():
            table: Dict[int, str] = {}
            for link in snapshot.topology.links_of(node.name):
                local = link.local(node.name)
                remote = link.other(node.name)
                remote_addr = snapshot.topology.interface_address(remote)
                table[remote_addr] = local.interface
            local_iface_for[node.name] = table
        return cls(iface_of_addr, local_iface_for)

    def resolve(self, node: str, next_hop_addr: int) -> Optional[NextHop]:
        owner = self._iface_of_addr.get(next_hop_addr)
        local_iface = self._local_iface_for.get(node, {}).get(next_hop_addr)
        if owner is None or local_iface is None:
            return None
        return NextHop(
            iface=local_iface, node=owner[0], address=next_hop_addr
        )


def build_fib(
    node: str,
    local_prefixes: FrozenSet[Prefix],
    main_routes: Iterable[Route],
    bgp_routes: Dict[Prefix, Tuple[BgpRoute, ...]],
    resolver: NextHopResolver,
) -> Fib:
    """Merge a node's RIBs into its FIB.

    Per prefix, the protocol with the lowest administrative distance wins;
    within the winner, all (ECMP) next hops are installed.  Prefixes the
    node originates resolve to RECEIVE — symbolic packets reaching them
    have arrived (§4.3 final state 1).
    """
    fib = Fib(node)
    # admin distance per prefix currently installed
    installed_ad: Dict[Prefix, int] = {}

    # Originated prefixes terminate locally *unless* a real route exists —
    # a redistributed static (Null0 / out an interface) must keep its
    # forwarding action, so originations install at a sentinel distance
    # any genuine protocol route overrides.
    LOCAL_FALLBACK_AD = 250
    for prefix in local_prefixes:
        fib.add(
            FibEntry(prefix=prefix, action=FibAction.RECEIVE)
        )
        installed_ad[prefix] = LOCAL_FALLBACK_AD

    for route in main_routes:
        current = installed_ad.get(route.prefix)
        if current is not None and current <= route.admin_distance:
            continue
        if route.protocol is Protocol.CONNECTED:
            entry = FibEntry(
                prefix=route.prefix,
                action=FibAction.RECEIVE,
                protocol=Protocol.CONNECTED,
            )
        elif route.discard:
            entry = FibEntry(
                prefix=route.prefix,
                action=FibAction.DROP,
                protocol=route.protocol,
            )
        elif route.interface is not None:
            # static route out of an interface: the far side (if any) is
            # the topology's problem; an unconnected interface is an edge
            # port and such packets EXIT there.
            entry = FibEntry(
                prefix=route.prefix,
                action=FibAction.FORWARD,
                next_hops=(NextHop(iface=route.interface, node=""),),
                protocol=route.protocol,
            )
        else:
            hop = (
                resolver.resolve(node, route.next_hop)
                if route.next_hop is not None
                else None
            )
            if hop is None:
                # unresolvable next hop: the packet is dropped here
                entry = FibEntry(
                    prefix=route.prefix,
                    action=FibAction.DROP,
                    protocol=route.protocol,
                )
            else:
                entry = FibEntry(
                    prefix=route.prefix,
                    action=FibAction.FORWARD,
                    next_hops=(hop,),
                    protocol=route.protocol,
                )
        fib.add(entry)
        installed_ad[route.prefix] = route.admin_distance

    for prefix, routes in bgp_routes.items():
        if not routes:
            continue
        ad = routes[0].protocol.admin_distance
        current = installed_ad.get(prefix)
        if current is not None and current <= ad:
            continue
        hops: List[NextHop] = []
        for route in routes:
            hop = resolver.resolve(node, route.next_hop)
            if hop is not None and hop not in hops:
                hops.append(hop)
        if hops:
            entry = FibEntry(
                prefix=prefix,
                action=FibAction.FORWARD,
                next_hops=tuple(sorted(hops, key=lambda h: h.address)),
                protocol=routes[0].protocol,
            )
        else:
            # A selected route whose next hop is not adjacent cannot be
            # installed; matching packets drop here (Null0-equivalent).
            entry = FibEntry(
                prefix=prefix,
                action=FibAction.DROP,
                protocol=routes[0].protocol,
            )
        fib.add(entry)
        installed_ad[prefix] = ad
    return fib
