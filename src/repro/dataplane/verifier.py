"""Monolithic data-plane verifier: snapshot + routes → property checking.

This is the single-engine DPV used by the Batfish baseline, and the
reference implementation the distributed DPO must agree with.  It builds
every node's FIB, compiles all predicates into one shared BDD engine
(exactly the §2.2 bottleneck: one node table, serialized operations), and
drives symbolic forwarding to completion.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..bdd.engine import BddEngine
from ..bdd.headerspace import HeaderEncoding
from ..config.loader import Snapshot
from ..net.ip import Prefix
from ..routing.engine import BgpResult, SimulationEngine
from ..routing.route import BgpRoute, Route
from .fib import Fib, NextHopResolver, build_fib
from .forwarding import (
    DEFAULT_MAX_HOPS,
    FinalPacket,
    ForwardingContext,
    inject,
    run_to_completion,
)
from .predicates import compile_predicates
from .queries import PropertyChecker, Query, ReachabilityResult


class DataPlaneVerifier:
    """Single-engine DPV over a converged control plane."""

    def __init__(
        self,
        snapshot: Snapshot,
        bgp_routes: BgpResult,
        local_prefixes: Dict[str, FrozenSet[Prefix]],
        main_routes: Dict[str, List[Route]],
        encoding: Optional[HeaderEncoding] = None,
        node_limit: int = 1 << 24,
        max_hops: int = DEFAULT_MAX_HOPS,
        bdd_kernel: str = "flat",
    ) -> None:
        self.snapshot = snapshot
        self.encoding = encoding or HeaderEncoding()
        self.engine = self.encoding.make_engine(
            node_limit=node_limit, kernel=bdd_kernel
        )
        self.fibs: Dict[str, Fib] = {}
        self.context = ForwardingContext(
            self.engine, self.encoding, snapshot.topology, max_hops=max_hops
        )
        resolver = NextHopResolver.from_snapshot(snapshot)
        for hostname in sorted(snapshot.configs):
            fib = build_fib(
                hostname,
                local_prefixes.get(hostname, frozenset()),
                main_routes.get(hostname, []),
                bgp_routes.get(hostname, {}),
                resolver,
            )
            self.fibs[hostname] = fib
        self._predicates_compiled = False

    @classmethod
    def from_simulation(
        cls,
        engine: SimulationEngine,
        bgp_routes: BgpResult,
        **kwargs,
    ) -> "DataPlaneVerifier":
        """Assemble a DPV from a finished control-plane simulation."""
        return cls(
            snapshot=engine.snapshot,
            bgp_routes=bgp_routes,
            local_prefixes=engine.local_prefixes(),
            main_routes=engine.main_routes(),
            **kwargs,
        )

    # -- phases (timed separately by Figure 10) -----------------------------

    def compile_predicates(self) -> None:
        """Phase 1: compute forwarding and ACL predicates for every node."""
        if self._predicates_compiled:
            return
        for hostname, fib in self.fibs.items():
            self.context.add_node(
                compile_predicates(
                    self.snapshot.configs[hostname],
                    fib,
                    self.engine,
                    self.encoding,
                )
            )
        self._predicates_compiled = True

    def forward(
        self, sources: Sequence[str], header_bdd: int, trace: bool = False
    ) -> List[FinalPacket]:
        """Phase 2: inject at the sources and forward to completion."""
        self.compile_predicates()
        initial = [inject(node, header_bdd, trace=trace) for node in sources]
        return run_to_completion(self.context, initial)

    # -- property checking -----------------------------------------------------

    def install_waypoints(self, transits: Sequence[str]) -> None:
        """Install §4.4 write rules: one metadata bit per transit node."""
        self.compile_predicates()
        self.context.waypoint_bits.clear()
        for index, transit in enumerate(transits):
            self.context.set_waypoint_bit(transit, index)

    def engine_counters(self) -> Dict[str, float]:
        """The shared engine's health counters (node counts, cache rates).

        Unlike the distributed workers, this engine is never auto-GC'd:
        query results (:class:`ReachabilityResult`) hold node ids in it,
        so reclamation would invalidate them.  The counters are still the
        right observability surface for the §2.2 single-table bottleneck.
        """
        return self.engine.counters()

    def checker(self) -> PropertyChecker:
        self.compile_predicates()
        return PropertyChecker(
            self.engine,
            self.encoding,
            self.forward,
            install_waypoints=self.install_waypoints,
        )

    def check_reachability(self, query: Query) -> ReachabilityResult:
        return self.checker().check_reachability(query)

    def prefix_holders(self) -> List[str]:
        """Nodes that originate at least one prefix (the endpoint set the
        paper's all-pair reachability ranges over)."""
        holders = []
        for hostname, config in sorted(self.snapshot.configs.items()):
            bgp = config.bgp
            if bgp is not None and bgp.networks:
                holders.append(hostname)
        return holders

    def all_pair_reachability(
        self, nodes: Optional[Sequence[str]] = None
    ) -> ReachabilityResult:
        """The paper's default property (§5.2): every pair of endpoints."""
        if nodes is None:
            nodes = self.prefix_holders()
        query = Query(sources=tuple(nodes), destinations=tuple(nodes))
        return self.check_reachability(query)


def verifier_from_ribs(
    snapshot: Snapshot, bgp_routes: BgpResult, **kwargs
) -> DataPlaneVerifier:
    """A DPV over externally-computed BGP RIBs (e.g. a distributed run's
    :meth:`~repro.dist.controller.S2Controller.collected_ribs`).

    The IGP result is a pure function of the snapshot, so it is recomputed
    locally; the BGP routes — the part the distributed pipeline actually
    computes differently — are taken as given.  This is how the
    ground-truth oracle walks the FIBs a *distributed* run produced.
    """
    engine = SimulationEngine(snapshot)
    engine.run_ospf()
    return DataPlaneVerifier(
        snapshot=snapshot,
        bgp_routes=bgp_routes,
        local_prefixes=engine.local_prefixes(),
        main_routes=engine.main_routes(),
        **kwargs,
    )
