"""A from-scratch reduced ordered BDD engine.

Each S2 worker owns a *private* engine instance (§4.3 option 2): BDD
operations on one worker never contend with another's, and each node table
stays small.  The table capacity is configurable so the paper's node-table
saturation behaviour (bounded by ``O(2^32)``) can be reproduced at model
scale — exceeding it raises :class:`BddOverflowError`.

Implementation notes: nodes are hash-consed triples ``(var, low, high)``
stored in parallel lists and addressed by integer id; ``0``/``1`` are the
terminal FALSE/TRUE.  Binary operations use memoized Shannon expansion.
Recursion depth is bounded by the variable count (packet headers are at
most a few hundred bits), so plain recursion is safe and fast.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

FALSE = 0
TRUE = 1


class BddOverflowError(RuntimeError):
    """The node table exceeded its configured capacity."""


class BddEngine:
    """A reduced, ordered BDD manager over ``num_vars`` Boolean variables."""

    def __init__(self, num_vars: int, node_limit: int = 1 << 24) -> None:
        if num_vars <= 0:
            raise ValueError("num_vars must be positive")
        self.num_vars = num_vars
        self.node_limit = node_limit
        # Optional observability hook: the owning worker points this at
        # its tracer so op *batches* (never individual applies) can be
        # spanned; None keeps the engine entirely tracing-free.
        self.tracer = None
        # Parallel arrays indexed by node id; slots 0/1 are terminals and
        # carry a sentinel variable one past the last real level.
        self._var: List[int] = [num_vars, num_vars]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._exists_cache: Dict[Tuple[int, int], int] = {}
        self.ops = 0  # performed apply steps; the DPV time-model unit

    # -- structure -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._var)

    @property
    def node_count(self) -> int:
        return len(self._var)

    def var_of(self, u: int) -> int:
        return self._var[u]

    def low_of(self, u: int) -> int:
        return self._low[u]

    def high_of(self, u: int) -> int:
        return self._high[u]

    def mk(self, var: int, low: int, high: int) -> int:
        """Hash-consed node constructor (the only way nodes are created)."""
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._var) >= self.node_limit:
            raise BddOverflowError(
                f"BDD node table exceeded {self.node_limit} nodes"
            )
        node_id = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node_id
        return node_id

    # -- literals ------------------------------------------------------------

    def var(self, index: int) -> int:
        """The BDD for "variable ``index`` is 1"."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self.mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD for "variable ``index`` is 0"."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self.mk(index, TRUE, FALSE)

    def cube(self, assignments: Dict[int, bool]) -> int:
        """Conjunction of literals, built bottom-up without apply calls."""
        u = TRUE
        for index in sorted(assignments, reverse=True):
            if assignments[index]:
                u = self.mk(index, FALSE, u)
            else:
                u = self.mk(index, u, FALSE)
        return u

    # -- boolean operations --------------------------------------------------------

    def and_(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        key = (a, b) if a <= b else (b, a)
        found = self._and_cache.get(key)
        if found is not None:
            return found
        self.ops += 1
        var_a, var_b = self._var[a], self._var[b]
        top = min(var_a, var_b)
        a_low, a_high = (
            (self._low[a], self._high[a]) if var_a == top else (a, a)
        )
        b_low, b_high = (
            (self._low[b], self._high[b]) if var_b == top else (b, b)
        )
        result = self.mk(
            top, self.and_(a_low, b_low), self.and_(a_high, b_high)
        )
        self._and_cache[key] = result
        return result

    def or_(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == TRUE or b == TRUE:
            return TRUE
        if a == FALSE:
            return b
        if b == FALSE:
            return a
        key = (a, b) if a <= b else (b, a)
        found = self._or_cache.get(key)
        if found is not None:
            return found
        self.ops += 1
        var_a, var_b = self._var[a], self._var[b]
        top = min(var_a, var_b)
        a_low, a_high = (
            (self._low[a], self._high[a]) if var_a == top else (a, a)
        )
        b_low, b_high = (
            (self._low[b], self._high[b]) if var_b == top else (b, b)
        )
        result = self.mk(top, self.or_(a_low, b_low), self.or_(a_high, b_high))
        self._or_cache[key] = result
        return result

    def xor(self, a: int, b: int) -> int:
        if a == b:
            return FALSE
        if a == FALSE:
            return b
        if b == FALSE:
            return a
        if a == TRUE:
            return self.not_(b)
        if b == TRUE:
            return self.not_(a)
        key = (a, b) if a <= b else (b, a)
        found = self._xor_cache.get(key)
        if found is not None:
            return found
        self.ops += 1
        var_a, var_b = self._var[a], self._var[b]
        top = min(var_a, var_b)
        a_low, a_high = (
            (self._low[a], self._high[a]) if var_a == top else (a, a)
        )
        b_low, b_high = (
            (self._low[b], self._high[b]) if var_b == top else (b, b)
        )
        result = self.mk(top, self.xor(a_low, b_low), self.xor(a_high, b_high))
        self._xor_cache[key] = result
        return result

    def not_(self, a: int) -> int:
        if a == FALSE:
            return TRUE
        if a == TRUE:
            return FALSE
        found = self._not_cache.get(a)
        if found is not None:
            return found
        self.ops += 1
        result = self.mk(
            self._var[a], self.not_(self._low[a]), self.not_(self._high[a])
        )
        self._not_cache[a] = result
        self._not_cache[result] = a
        return result

    def diff(self, a: int, b: int) -> int:
        """Set difference ``a ∧ ¬b``."""
        return self.and_(a, self.not_(b))

    def implies(self, a: int, b: int) -> bool:
        """True when the packet set ``a`` is a subset of ``b``."""
        return self.diff(a, b) == FALSE

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f ∧ g) ∨ (¬f ∧ h)``."""
        return self.or_(self.and_(f, g), self.and_(self.not_(f), h))

    def exists(self, u: int, var: int) -> int:
        """Existential quantification of one variable."""
        if u in (FALSE, TRUE):
            return u
        node_var = self._var[u]
        if node_var > var:
            return u
        key = (u, var)
        found = self._exists_cache.get(key)
        if found is not None:
            return found
        self.ops += 1
        if node_var == var:
            result = self.or_(self._low[u], self._high[u])
        else:
            result = self.mk(
                node_var,
                self.exists(self._low[u], var),
                self.exists(self._high[u], var),
            )
        self._exists_cache[key] = result
        return result

    def set_var(self, u: int, var: int, value: bool) -> int:
        """Force ``var`` to ``value`` in every packet of ``u``.

        This is the waypoint "write rule" (§4.4): quantify the bit away,
        then conjoin the literal.
        """
        literal = self.var(var) if value else self.nvar(var)
        return self.and_(self.exists(u, var), literal)

    # -- analysis ---------------------------------------------------------------------

    def sat_count(self, u: int, over_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments.

        By default counts over all ``num_vars`` variables.  With
        ``over_vars`` given, counts over the first ``over_vars`` variables
        only — ``u`` must not depend on any later variable (checked).
        """
        width = self.num_vars if over_vars is None else over_vars
        if width < self.num_vars:
            support = self.support(u)
            if support and support[-1] >= width:
                raise ValueError(
                    f"BDD depends on variable {support[-1]} >= {width}"
                )
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1}

        def count(node: int) -> int:
            """Assignments over variables [var(node), num_vars)."""
            found = memo.get(node)
            if found is not None:
                return found
            var = self._var[node]
            low, high = self._low[node], self._high[node]
            total = count(low) * (1 << (self._var[low] - var - 1)) + count(
                high
            ) * (1 << (self._var[high] - var - 1))
            memo[node] = total
            return total

        if u == FALSE:
            return 0
        full = count(u) << self._var[u]  # extend below the root to var 0
        return full >> (self.num_vars - width)

    def any_sat(self, u: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (unset variables are free), or None."""
        if u == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        while u != TRUE:
            if self._low[u] != FALSE:
                assignment[self._var[u]] = False
                u = self._low[u]
            else:
                assignment[self._var[u]] = True
                u = self._high[u]
        return assignment

    def support(self, u: int) -> List[int]:
        """The variables ``u`` actually depends on, ascending."""
        seen = set()
        result = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node in (FALSE, TRUE) or node in seen:
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(result)

    def nodes_of(self, u: int) -> Iterator[Tuple[int, int, int, int]]:
        """Reachable nodes of ``u`` as (id, var, low, high), children first.

        This is the serialization order: every child id precedes its
        parents, so a consumer can rebuild bottom-up with plain ``mk``.
        """
        seen = set()
        order: List[int] = []

        def visit(node: int) -> None:
            if node in (FALSE, TRUE) or node in seen:
                return
            seen.add(node)
            visit(self._low[node])
            visit(self._high[node])
            order.append(node)

        visit(u)
        for node in order:
            yield node, self._var[node], self._low[node], self._high[node]

    def size_of(self, u: int) -> int:
        """Number of internal nodes reachable from ``u``."""
        return sum(1 for _ in self.nodes_of(u))

    def clear_caches(self) -> None:
        """Drop operation memos (the node table itself is kept)."""
        self._and_cache.clear()
        self._or_cache.clear()
        self._xor_cache.clear()
        self._not_cache.clear()
        self._exists_cache.clear()

    # -- observability ----------------------------------------------------

    def batch(self, name: str, **attrs):
        """Span one batch of BDD work (predicate compile, forward wave).

        The per-apply hot path stays untouched: the batch span reads the
        ``ops``/``node_count`` counters at entry and exit and records the
        deltas as attributes.  With no tracer attached (the default) this
        returns the shared no-op span.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            from ..obs.tracer import NULL_SPAN

            return NULL_SPAN
        return _EngineBatch(self, tracer, name, attrs)


class _EngineBatch:
    """Context manager recording one engine op batch as a span."""

    __slots__ = ("_engine", "_span", "_ops", "_nodes")

    def __init__(self, engine: BddEngine, tracer, name: str, attrs) -> None:
        self._engine = engine
        self._span = tracer.span(name, category="bdd", **attrs)

    def __enter__(self) -> "_EngineBatch":
        self._ops = self._engine.ops
        self._nodes = self._engine.node_count
        self._span.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        self._span.set(
            ops=self._engine.ops - self._ops,
            nodes_allocated=self._engine.node_count - self._nodes,
            node_count=self._engine.node_count,
        )
        return self._span.__exit__(*exc)

    def set(self, **attrs) -> "_EngineBatch":
        self._span.set(**attrs)
        return self
