"""A from-scratch reduced ordered BDD engine.

Each S2 worker owns a *private* engine instance (§4.3 option 2): BDD
operations on one worker never contend with another's, and each node table
stays small.  The table capacity is configurable so the paper's node-table
saturation behaviour (bounded by ``O(2^32)``) can be reproduced at model
scale — exceeding it raises :class:`BddOverflowError`.

Implementation notes: nodes are hash-consed triples ``(var, low, high)``
stored in parallel lists and addressed by integer id; ``0``/``1`` are the
terminal FALSE/TRUE.  ``mk`` only ever appends, so a node's children
always have smaller ids — the invariant both serialization (children
first) and table compaction lean on.

Binary and unary operations all route through one memoized ``apply``
whose op-cache is **size-bounded with generation-tagged eviction**: when
the live generation fills up it becomes the previous generation and a
fresh dict takes over; lookups consult both and promote hits.  Memo
eviction is always semantically safe (a miss just recomputes), so the
cache footprint stays bounded at roughly ``2 * cache_limit`` entries no
matter how long the engine lives.

Dead nodes are reclaimed by :meth:`collect_garbage`: a mark-and-sweep
from the engine's **external-root registry** (plus any extra roots the
caller passes) followed by node-table **compaction**.  Compaction renames
every surviving node, so the collector returns an ``old id -> new id``
remap which holders of raw BDD ints (predicate tables, packet buffers)
apply to their own state; registered roots are remapped in place.

Recursion depth is bounded by the variable count (packet headers are at
most a few hundred bits), so plain recursion is safe and fast.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

FALSE = 0
TRUE = 1

# Op tags for the unified apply cache.  Binary op keys are (op, a, b) with
# a <= b for the commutative ops; ITE keys are (OP_ITE, f, g, h).
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_NOT = 3
OP_EXISTS = 4
OP_ITE = 5

DEFAULT_CACHE_LIMIT = 1 << 18


class BddOverflowError(RuntimeError):
    """The node table exceeded its configured capacity."""


class BddEngine:
    """A reduced, ordered BDD manager over ``num_vars`` Boolean variables."""

    #: Which kernel implementation this engine is (see repro.bdd.flat).
    kernel = "dict"

    def __init__(
        self,
        num_vars: int,
        node_limit: int = 1 << 24,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
    ) -> None:
        if num_vars <= 0:
            raise ValueError("num_vars must be positive")
        if cache_limit <= 0:
            raise ValueError("cache_limit must be positive")
        self.num_vars = num_vars
        self.node_limit = node_limit
        self.cache_limit = cache_limit
        # Optional observability hook: the owning worker points this at
        # its tracer so op *batches* (never individual applies) can be
        # spanned; None keeps the engine entirely tracing-free.
        self.tracer = None
        # Parallel arrays indexed by node id; slots 0/1 are terminals and
        # carry a sentinel variable one past the last real level.
        self._var: List[int] = [num_vars, num_vars]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Two-generation bounded op-cache (current + previous).
        self._cache: Dict[Tuple[int, ...], int] = {}
        self._cache_old: Dict[Tuple[int, ...], int] = {}
        self.ops = 0  # performed apply steps; the DPV time-model unit
        # -- counters (exposed via counters() / repro.obs.metrics) --
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_generation = 0  # eviction (rotation) count
        self.gc_runs = 0
        self.gc_reclaimed_nodes = 0
        self.peak_node_count = 2
        # External-root registry: node id -> refcount.  GC keeps exactly
        # these (plus terminals plus caller-passed extras) alive.
        self._roots: Dict[int, int] = {}

    # -- structure -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._var)

    @property
    def node_count(self) -> int:
        return len(self._var)

    def var_of(self, u: int) -> int:
        return self._var[u]

    def low_of(self, u: int) -> int:
        return self._low[u]

    def high_of(self, u: int) -> int:
        return self._high[u]

    def mk(self, var: int, low: int, high: int) -> int:
        """Hash-consed node constructor (the only way nodes are created)."""
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._var) >= self.node_limit:
            raise BddOverflowError(
                f"BDD node table exceeded {self.node_limit} nodes"
            )
        node_id = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node_id
        return node_id

    # -- literals ------------------------------------------------------------

    def var(self, index: int) -> int:
        """The BDD for "variable ``index`` is 1"."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self.mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD for "variable ``index`` is 0"."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self.mk(index, TRUE, FALSE)

    def cube(self, assignments: Dict[int, bool]) -> int:
        """Conjunction of literals, built bottom-up without apply calls."""
        u = TRUE
        for index in sorted(assignments, reverse=True):
            if not 0 <= index < self.num_vars:
                raise ValueError(f"variable {index} out of range")
            if assignments[index]:
                u = self.mk(index, FALSE, u)
            else:
                u = self.mk(index, u, FALSE)
        return u

    # -- the bounded op-cache ------------------------------------------------

    def _cache_get(self, key: Tuple[int, ...]) -> Optional[int]:
        found = self._cache.get(key)
        if found is None:
            found = self._cache_old.get(key)
            if found is not None:
                # Promote into the live generation — and rotate if that
                # fills it, exactly like _cache_put, so a hit-dominated
                # phase cannot grow _cache past cache_limit.
                cache = self._cache
                cache[key] = found
                if len(cache) >= self.cache_limit:
                    self._cache_old = cache
                    self._cache = {}
                    self.cache_generation += 1
        if found is not None:
            self.cache_hits += 1
            return found
        self.cache_misses += 1
        return None

    def _cache_put(self, key: Tuple[int, ...], value: int) -> None:
        cache = self._cache
        cache[key] = value
        if len(cache) >= self.cache_limit:
            # Generation-tagged eviction: the filled generation becomes
            # the previous one (still consulted, read-only), the oldest
            # generation is dropped wholesale.  O(1), no per-entry LRU.
            self._cache_old = cache
            self._cache = {}
            self.cache_generation += 1

    # -- boolean operations --------------------------------------------------

    def apply(self, op: int, a: int, b: int) -> int:
        """Unified memoized Shannon-expansion apply for the binary ops."""
        if op == OP_AND:
            if a == b:
                return a
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
        elif op == OP_OR:
            if a == b:
                return a
            if a == TRUE or b == TRUE:
                return TRUE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
        elif op == OP_XOR:
            if a == b:
                return FALSE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == TRUE:
                return self.not_(b)
            if b == TRUE:
                return self.not_(a)
        else:
            raise ValueError(f"unknown binary op {op}")
        if a > b:  # all three ops are commutative: canonicalize the key
            a, b = b, a
        key = (op, a, b)
        found = self._cache_get(key)
        if found is not None:
            return found
        self.ops += 1
        var_a, var_b = self._var[a], self._var[b]
        top = min(var_a, var_b)
        a_low, a_high = (
            (self._low[a], self._high[a]) if var_a == top else (a, a)
        )
        b_low, b_high = (
            (self._low[b], self._high[b]) if var_b == top else (b, b)
        )
        result = self.mk(
            top, self.apply(op, a_low, b_low), self.apply(op, a_high, b_high)
        )
        self._cache_put(key, result)
        return result

    def apply_many(self, op: int, operands: Iterable[int]) -> int:
        """Combine a whole operand set under one binary op.

        The dict kernel folds left to right — exactly what callers used
        to spell by hand — so it stays the honest comparison baseline;
        the flat kernel overrides this with a balanced reduction.  Empty
        operand sets return the op's identity.
        """
        items = iter(operands)
        first = next(items, None)
        if first is None:
            if op == OP_AND:
                return TRUE
            if op in (OP_OR, OP_XOR):
                return FALSE
            raise ValueError(f"unknown binary op {op}")
        result = first
        for operand in items:
            result = self.apply(op, result, operand)
        return result

    def and_(self, a: int, b: int) -> int:
        return self.apply(OP_AND, a, b)

    def or_(self, a: int, b: int) -> int:
        return self.apply(OP_OR, a, b)

    def xor(self, a: int, b: int) -> int:
        return self.apply(OP_XOR, a, b)

    def not_(self, a: int) -> int:
        if a == FALSE:
            return TRUE
        if a == TRUE:
            return FALSE
        key = (OP_NOT, a)
        found = self._cache_get(key)
        if found is not None:
            return found
        self.ops += 1
        result = self.mk(
            self._var[a], self.not_(self._low[a]), self.not_(self._high[a])
        )
        self._cache_put(key, result)
        self._cache_put((OP_NOT, result), a)  # negation is an involution
        return result

    def diff(self, a: int, b: int) -> int:
        """Set difference ``a ∧ ¬b``."""
        return self.and_(a, self.not_(b))

    def implies(self, a: int, b: int) -> bool:
        """True when the packet set ``a`` is a subset of ``b``."""
        return self.diff(a, b) == FALSE

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else ``(f ∧ g) ∨ (¬f ∧ h)`` as a first-class operation.

        Normalized before the cache is consulted: terminal cases return
        immediately, ``ite(f, f, h)`` / ``ite(f, g, f)`` collapse their
        redundant argument, and two-operand shapes are delegated to the
        cheaper binary ops so they share those cache entries.
        """
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if f == g:
            g = TRUE  # ite(f, f, h) == f ∨ h
        elif f == h:
            h = FALSE  # ite(f, g, f) == f ∧ g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.not_(f)
        if g == TRUE:
            return self.or_(f, h)
        if h == FALSE:
            return self.and_(f, g)
        if g == FALSE:
            return self.and_(self.not_(f), h)
        if h == TRUE:
            return self.or_(self.not_(f), g)
        key = (OP_ITE, f, g, h)
        found = self._cache_get(key)
        if found is not None:
            return found
        self.ops += 1
        top = min(self._var[f], self._var[g], self._var[h])

        def cofactors(u: int) -> Tuple[int, int]:
            if self._var[u] == top:
                return self._low[u], self._high[u]
            return u, u

        f_low, f_high = cofactors(f)
        g_low, g_high = cofactors(g)
        h_low, h_high = cofactors(h)
        result = self.mk(
            top,
            self.ite(f_low, g_low, h_low),
            self.ite(f_high, g_high, h_high),
        )
        self._cache_put(key, result)
        return result

    def exists(self, u: int, var: int) -> int:
        """Existential quantification of one variable."""
        if u in (FALSE, TRUE):
            return u
        node_var = self._var[u]
        if node_var > var:
            return u
        key = (OP_EXISTS, u, var)
        found = self._cache_get(key)
        if found is not None:
            return found
        self.ops += 1
        if node_var == var:
            result = self.or_(self._low[u], self._high[u])
        else:
            result = self.mk(
                node_var,
                self.exists(self._low[u], var),
                self.exists(self._high[u], var),
            )
        self._cache_put(key, result)
        return result

    def set_var(self, u: int, var: int, value: bool) -> int:
        """Force ``var`` to ``value`` in every packet of ``u``.

        This is the waypoint "write rule" (§4.4): quantify the bit away,
        then conjoin the literal.
        """
        literal = self.var(var) if value else self.nvar(var)
        return self.and_(self.exists(u, var), literal)

    # -- analysis ---------------------------------------------------------------------

    def sat_count(self, u: int, over_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments.

        By default counts over all ``num_vars`` variables.  With
        ``over_vars`` given, counts over the first ``over_vars`` variables
        only — ``u`` must not depend on any later variable (checked).
        """
        width = self.num_vars if over_vars is None else over_vars
        if width < self.num_vars:
            support = self.support(u)
            if support and support[-1] >= width:
                raise ValueError(
                    f"BDD depends on variable {support[-1]} >= {width}"
                )
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1}

        def count(node: int) -> int:
            """Assignments over variables [var(node), num_vars)."""
            found = memo.get(node)
            if found is not None:
                return found
            var = self._var[node]
            low, high = self._low[node], self._high[node]
            total = count(low) * (1 << (self._var[low] - var - 1)) + count(
                high
            ) * (1 << (self._var[high] - var - 1))
            memo[node] = total
            return total

        if u == FALSE:
            return 0
        full = count(u) << self._var[u]  # extend below the root to var 0
        return full >> (self.num_vars - width)

    def any_sat(self, u: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (unset variables are free), or None."""
        if u == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        while u != TRUE:
            if self._low[u] != FALSE:
                assignment[self._var[u]] = False
                u = self._low[u]
            else:
                assignment[self._var[u]] = True
                u = self._high[u]
        return assignment

    def support(self, u: int) -> List[int]:
        """The variables ``u`` actually depends on, ascending."""
        seen = set()
        result = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node in (FALSE, TRUE) or node in seen:
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(result)

    def nodes_of(self, u: int) -> Iterator[Tuple[int, int, int, int]]:
        """Reachable nodes of ``u`` as (id, var, low, high), children first.

        This is the serialization order: every child id precedes its
        parents, so a consumer can rebuild bottom-up with plain ``mk``.
        """
        seen = set()
        order: List[int] = []

        def visit(node: int) -> None:
            if node in (FALSE, TRUE) or node in seen:
                return
            seen.add(node)
            visit(self._low[node])
            visit(self._high[node])
            order.append(node)

        visit(u)
        for node in order:
            yield node, self._var[node], self._low[node], self._high[node]

    def size_of(self, u: int) -> int:
        """Number of internal nodes reachable from ``u``."""
        return sum(1 for _ in self.nodes_of(u))

    def clear_caches(self) -> None:
        """Drop operation memos (the node table itself is kept)."""
        self._cache.clear()
        self._cache_old.clear()

    # -- external-root registry + garbage collection ----------------------

    def add_root(self, u: int) -> int:
        """Protect ``u`` (and everything reachable from it) across GC.

        Refcounted: the same id may be registered by several holders.
        Terminals need no protection and are ignored.  Returns ``u``.
        """
        if u > TRUE:
            self._roots[u] = self._roots.get(u, 0) + 1
        return u

    def remove_root(self, u: int) -> None:
        """Drop one protection refcount of ``u`` (no-op for terminals)."""
        if u <= TRUE:
            return
        count = self._roots.get(u)
        if count is None:
            return
        if count <= 1:
            del self._roots[u]
        else:
            self._roots[u] = count - 1

    def clear_roots(self) -> None:
        self._roots.clear()

    @property
    def root_count(self) -> int:
        return len(self._roots)

    def collect_garbage(
        self, extra_roots: Iterable[int] = ()
    ) -> Dict[int, int]:
        """Mark-and-sweep from the root registry, then compact the table.

        Everything reachable from the registered roots plus
        ``extra_roots`` survives; every other node is reclaimed and the
        parallel arrays are compacted (ids are renamed).  Returns the
        ``old id -> new id`` remap over surviving nodes (terminals map to
        themselves) so callers holding raw ints can rewrite them;
        registered roots are remapped in place.  Op caches reference old
        ids and are flushed.
        """
        old_count = len(self._var)
        if old_count > self.peak_node_count:
            self.peak_node_count = old_count
        # -- mark ---------------------------------------------------------
        live = bytearray(old_count)
        live[FALSE] = live[TRUE] = 1
        stack: List[int] = [u for u in self._roots]
        stack.extend(u for u in extra_roots if u > TRUE)
        lows, highs = self._low, self._high
        while stack:
            u = stack.pop()
            if live[u]:
                continue
            live[u] = 1
            low, high = lows[u], highs[u]
            if not live[low]:
                stack.append(low)
            if not live[high]:
                stack.append(high)
        # -- sweep + compact ----------------------------------------------
        # Children always have smaller ids than their parents, so one
        # ascending pass can rewrite child pointers as it goes.
        remap: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
        new_var = [self.num_vars, self.num_vars]
        new_low = [FALSE, TRUE]
        new_high = [FALSE, TRUE]
        variables = self._var
        for u in range(2, old_count):
            if not live[u]:
                continue
            remap[u] = len(new_var)
            new_var.append(variables[u])
            new_low.append(remap[lows[u]])
            new_high.append(remap[highs[u]])
        self._var, self._low, self._high = new_var, new_low, new_high
        self._unique = {
            (new_var[i], new_low[i], new_high[i]): i
            for i in range(2, len(new_var))
        }
        self._cache = {}
        self._cache_old = {}
        self._roots = {
            remap[u]: count for u, count in self._roots.items()
        }
        self.gc_runs += 1
        self.gc_reclaimed_nodes += old_count - len(new_var)
        return remap

    # -- observability ----------------------------------------------------

    def counters(self) -> Dict[str, float]:
        """Engine health counters, ready for ``repro.obs.metrics``."""
        lookups = self.cache_hits + self.cache_misses
        if len(self._var) > self.peak_node_count:
            self.peak_node_count = len(self._var)
        return {
            "node_count": len(self._var),
            "peak_node_count": self.peak_node_count,
            "ops": self.ops,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
            "cache_generation": self.cache_generation,
            "cache_entries": len(self._cache) + len(self._cache_old),
            "gc_runs": self.gc_runs,
            "gc_reclaimed_nodes": self.gc_reclaimed_nodes,
            "root_count": len(self._roots),
        }

    def batch(self, name: str, **attrs):
        """Span one batch of BDD work (predicate compile, forward wave).

        The per-apply hot path stays untouched: the batch span reads the
        ``ops``/``node_count`` counters at entry and exit and records the
        deltas as attributes.  With no tracer attached (the default) this
        returns the shared no-op span.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            from ..obs.tracer import NULL_SPAN

            return NULL_SPAN
        return _EngineBatch(self, tracer, name, attrs)


class _EngineBatch:
    """Context manager recording one engine op batch as a span."""

    __slots__ = ("_engine", "_span", "_ops", "_nodes")

    def __init__(self, engine: BddEngine, tracer, name: str, attrs) -> None:
        self._engine = engine
        self._span = tracer.span(name, category="bdd", **attrs)

    def __enter__(self) -> "_EngineBatch":
        self._ops = self._engine.ops
        self._nodes = self._engine.node_count
        self._span.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        self._span.set(
            ops=self._engine.ops - self._ops,
            nodes_allocated=self._engine.node_count - self._nodes,
            node_count=self._engine.node_count,
        )
        return self._span.__exit__(*exc)

    def set(self, **attrs) -> "_EngineBatch":
        self._span.set(**attrs)
        return self
