"""BDD substrate: engine, cross-engine serialization, header encoding."""

from .engine import FALSE, TRUE, BddEngine, BddOverflowError  # noqa: F401
from .flat import FlatBddEngine  # noqa: F401
from .headerspace import ALL_FIELDS, HeaderEncoding  # noqa: F401
from .serialize import (  # noqa: F401
    SerializedBdd,
    deserialize,
    from_bytes,
    packed_size,
    serialize,
    to_bytes,
    transfer,
)
