"""The flat-array BDD kernel: int32 node storage + open-addressed tables.

:class:`FlatBddEngine` is a drop-in replacement for the dict-of-tuples
:class:`~repro.bdd.engine.BddEngine` that keeps the node table in three
preallocated ``array``-module int32 parallel arrays (``_var``, ``_low``,
``_high``) indexed by node id, grown by doubling, with

* a **unique table with packed integer keys** — the triple
  ``(var, low, high)`` is packed into one int (``var<<60 | low<<30 |
  high``) and looked up in a CPython dict.  CPython dicts *are*
  open-addressed hash tables probed in C; keying them with a packed int
  keeps that C-speed probing while eliminating the per-key tuple
  allocation of the dict engine.  (A hand-rolled ``array('i')`` probe
  loop was measured ~2x slower here: three boxed array reads plus
  Python-bytecode hashing per probe lose badly to one C dict lookup.)
* a **direct-mapped open-addressed op-cache** — a fixed power-of-two
  pair of ``array('q')``/``array('i')`` arrays addressed by hashing the
  packed key ``(op << 60) | (a << 30) | b``.  Collisions overwrite (the
  classic BDD-package design): eviction is O(1) and the cache footprint
  is *exactly* ``cache_limit`` slots of 12 bytes, no matter how long the
  engine lives, versus the dict engine's two rotating generations of
  tuple-keyed dict entries.  Three-operand ``ite`` keys exceed the
  packed int64 key space and use a small bounded dict memo instead
  (``ite`` largely normalizes into the binary ops, which share the flat
  cache).

The hot paths (``apply``, ``cube``) inline both the cache probe and the
hash-consing ``mk`` miss path: in CPython the helper-call and
tuple-allocation overhead of the dict engine's ``_cache_get`` /
``_cache_put`` / ``mk`` round trips costs more than the lookups
themselves, and eliminating it is where the per-apply speedup comes
from.

Batched compilation is the other half of the kernel: :meth:`apply_many`
reduces a whole operand *set* pairwise (balanced, not a left fold), and
pairs with :meth:`HeaderEncoding.prefix_set_bdd`'s one-pass trie build
so whole predicate sets compile without ever materializing one
accumulator per operand.  The base engine exposes ``apply_many`` as a
plain left fold — exactly what callers used to spell by hand — which
keeps the dict kernel an honest comparison baseline and the two kernels
differentially testable call-for-call.

Packed op-cache keys reserve 30 bits per operand, so the flat kernel
caps ``node_limit`` at ``2**30`` — far beyond the paper's ``O(2**32)``
*bytes*-scale tables at model scale (the dict engine remains selectable
for anything larger).

Node ids keep the append-only invariant (children precede parents), so
serialization and the analysis helpers work unchanged;
:meth:`collect_garbage` compacts the parallel arrays **in place**
(survivors only ever move to smaller ids) and rebuilds the unique table
in one dict comprehension.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Tuple

from .engine import (
    DEFAULT_CACHE_LIMIT,
    FALSE,
    OP_AND,
    OP_EXISTS,
    OP_NOT,
    OP_OR,
    OP_XOR,
    TRUE,
    BddEngine,
    BddOverflowError,
)

#: Bits reserved per operand in a packed key; bounds node ids.
NODE_SHIFT = 30
MAX_FLAT_NODE_LIMIT = 1 << NODE_SHIFT

#: Initial node-array capacity (slots); grown by doubling.
_INITIAL_NODE_CAPACITY = 1 << 10


class FlatBddEngine(BddEngine):
    """A reduced, ordered BDD manager over flat int32 arrays."""

    kernel = "flat"

    def __init__(
        self,
        num_vars: int,
        node_limit: int = 1 << 24,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
    ) -> None:
        if node_limit > MAX_FLAT_NODE_LIMIT:
            raise ValueError(
                f"the flat kernel packs node ids into {NODE_SHIFT}-bit "
                f"key fields; node_limit {node_limit} exceeds "
                f"{MAX_FLAT_NODE_LIMIT} (use the dict kernel instead)"
            )
        super().__init__(num_vars, node_limit, cache_limit)
        # -- node table: preallocated int32 parallel arrays --------------
        capacity = _INITIAL_NODE_CAPACITY
        self._var = array("i", bytes(4 * capacity))
        self._low = array("i", bytes(4 * capacity))
        self._high = array("i", bytes(4 * capacity))
        self._var[FALSE] = self._var[TRUE] = num_vars
        self._low[TRUE] = self._high[TRUE] = TRUE
        self._count = 2
        # -- unique table: packed-int keyed (var<<60 | low<<30 | high);
        # terminals are never hash-consed, so every stored id is >= 2 ----
        self._unique: Dict[int, int] = {}
        # -- direct-mapped open-addressed op cache (key 0 == empty; no
        # real packed key is 0 because the terminal operand cases are
        # handled before the cache and OP_NOT/OP_EXISTS are nonzero) -----
        size = 1
        while size < cache_limit:
            size <<= 1
        self._cmask = size - 1
        self._ckeys = array("q", bytes(8 * size))
        self._cvals = array("i", bytes(4 * size))
        self._cache_filled = 0  # occupied op-cache slots (gauge)
        # The base engine's dict generations are unused; keep inert empty
        # dicts so introspection written against the base stays harmless.
        self._cache = {}
        self._cache_old = {}
        # ite keys are three-operand and do not fit a packed int64 slot.
        self._ite_memo: Dict[Tuple[int, int, int], int] = {}

    # -- structure -------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def node_count(self) -> int:
        return self._count

    def _grow_nodes(self) -> None:
        pad = bytes(4 * self._count)  # double
        self._var.frombytes(pad)
        self._low.frombytes(pad)
        self._high.frombytes(pad)

    def mk(self, var: int, low: int, high: int) -> int:
        """Hash-consed node constructor over the packed-key table."""
        if low == high:
            return low
        key = (var << 60) | (low << NODE_SHIFT) | high
        found = self._unique.get(key)
        if found is not None:
            return found
        count = self._count
        if count >= self.node_limit:
            raise BddOverflowError(
                f"BDD node table exceeded {self.node_limit} nodes"
            )
        tvar = self._var
        if count == len(tvar):
            self._grow_nodes()
            tvar = self._var
        tvar[count] = var
        self._low[count] = low
        self._high[count] = high
        self._unique[key] = count
        self._count = count + 1
        return count

    # -- literals --------------------------------------------------------

    def cube(self, assignments: Dict[int, bool]) -> int:
        """Conjunction of literals with the ``mk`` miss path inlined."""
        u = TRUE
        unique = self._unique
        num_vars = self.num_vars
        for index in sorted(assignments, reverse=True):
            if not 0 <= index < num_vars:
                raise ValueError(f"variable {index} out of range")
            if assignments[index]:
                low, high = FALSE, u
            else:
                low, high = u, FALSE
            key = (index << 60) | (low << 30) | high
            u = unique.get(key)
            if u is None:
                count = self._count
                if count >= self.node_limit:
                    raise BddOverflowError(
                        f"BDD node table exceeded {self.node_limit} nodes"
                    )
                if count == len(self._var):
                    self._grow_nodes()
                self._var[count] = index
                self._low[count] = low
                self._high[count] = high
                unique[key] = count
                self._count = count + 1
                u = count
        return u

    # -- boolean operations ----------------------------------------------

    def apply(self, op: int, a: int, b: int) -> int:
        """Memoized Shannon apply with the cache and cons probes inlined."""
        if op == OP_AND:
            if a == b:
                return a
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
        elif op == OP_OR:
            if a == b:
                return a
            if a == TRUE or b == TRUE:
                return TRUE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
        elif op == OP_XOR:
            if a == b:
                return FALSE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == TRUE:
                return self.not_(b)
            if b == TRUE:
                return self.not_(a)
        else:
            raise ValueError(f"unknown binary op {op}")
        if a > b:  # all three ops are commutative: canonicalize the key
            a, b = b, a
        key = (op << 60) | (a << 30) | b
        ckeys = self._ckeys
        slot = (key ^ (key >> 29)) & self._cmask
        if ckeys[slot] == key:
            self.cache_hits += 1
            return self._cvals[slot]
        self.cache_misses += 1
        self.ops += 1
        tvar, tlow, thigh = self._var, self._low, self._high
        var_a, var_b = tvar[a], tvar[b]
        if var_a < var_b:
            top = var_a
            a_low, a_high = tlow[a], thigh[a]
            b_low = b_high = b
        elif var_b < var_a:
            top = var_b
            a_low = a_high = a
            b_low, b_high = tlow[b], thigh[b]
        else:
            top = var_a
            a_low, a_high = tlow[a], thigh[a]
            b_low, b_high = tlow[b], thigh[b]
        low = self.apply(op, a_low, b_low)
        high = self.apply(op, a_high, b_high)
        if low == high:
            result = low
        else:
            ukey = (top << 60) | (low << 30) | high
            unique = self._unique
            result = unique.get(ukey)
            if result is None:
                count = self._count
                if count >= self.node_limit:
                    raise BddOverflowError(
                        f"BDD node table exceeded {self.node_limit} nodes"
                    )
                tvar = self._var
                if count == len(tvar):
                    self._grow_nodes()
                    tvar = self._var
                tvar[count] = top
                self._low[count] = low
                self._high[count] = high
                unique[ukey] = count
                self._count = count + 1
                result = count
        if not ckeys[slot]:
            self._cache_filled += 1
        ckeys[slot] = key
        self._cvals[slot] = result
        return result

    def apply_many(self, op: int, operands: Iterable[int]) -> int:
        """Compile a whole operand set in one balanced pairwise reduction.

        Semantically identical to folding :meth:`apply` left to right
        (the base engine's implementation), but pairs the operands like a
        merge sort: intermediate results stay small and cache-local
        instead of one near-final accumulator being traversed once per
        operand, which is where the bulk-compile win over the dict
        kernel's fold comes from on disjoint predicate sets.
        """
        items = list(operands)
        if not items:
            if op == OP_AND:
                return TRUE
            if op in (OP_OR, OP_XOR):
                return FALSE
            raise ValueError(f"unknown binary op {op}")
        apply_ = self.apply
        while len(items) > 1:
            paired = [
                apply_(op, items[i], items[i + 1])
                for i in range(0, len(items) - 1, 2)
            ]
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    def not_(self, a: int) -> int:
        if a == FALSE:
            return TRUE
        if a == TRUE:
            return FALSE
        key = (OP_NOT << 60) | a
        ckeys = self._ckeys
        slot = (key ^ (key >> 29)) & self._cmask
        if ckeys[slot] == key:
            self.cache_hits += 1
            return self._cvals[slot]
        self.cache_misses += 1
        self.ops += 1
        result = self.mk(
            self._var[a], self.not_(self._low[a]), self.not_(self._high[a])
        )
        if not ckeys[slot]:
            self._cache_filled += 1
        ckeys[slot] = key
        self._cvals[slot] = result
        # Negation is an involution: prime the reverse direction too.
        rkey = (OP_NOT << 60) | result
        rslot = (rkey ^ (rkey >> 29)) & self._cmask
        if not ckeys[rslot]:
            self._cache_filled += 1
        ckeys[rslot] = rkey
        self._cvals[rslot] = a
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if f == g:
            g = TRUE  # ite(f, f, h) == f ∨ h
        elif f == h:
            h = FALSE  # ite(f, g, f) == f ∧ g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.not_(f)
        if g == TRUE:
            return self.apply(OP_OR, f, h)
        if h == FALSE:
            return self.apply(OP_AND, f, g)
        if g == FALSE:
            return self.apply(OP_AND, self.not_(f), h)
        if h == TRUE:
            return self.apply(OP_OR, self.not_(f), g)
        memo = self._ite_memo
        key = (f, g, h)
        found = memo.get(key)
        if found is not None:
            self.cache_hits += 1
            return found
        self.cache_misses += 1
        self.ops += 1
        tvar = self._var
        top = min(tvar[f], tvar[g], tvar[h])
        if tvar[f] == top:
            f_low, f_high = self._low[f], self._high[f]
        else:
            f_low = f_high = f
        if tvar[g] == top:
            g_low, g_high = self._low[g], self._high[g]
        else:
            g_low = g_high = g
        if tvar[h] == top:
            h_low, h_high = self._low[h], self._high[h]
        else:
            h_low = h_high = h
        result = self.mk(
            top,
            self.ite(f_low, g_low, h_low),
            self.ite(f_high, g_high, h_high),
        )
        if len(memo) >= self.cache_limit:
            memo.clear()  # bounded like the flat cache: drop wholesale
        memo[key] = result
        return result

    def exists(self, u: int, var: int) -> int:
        if u in (FALSE, TRUE):
            return u
        node_var = self._var[u]
        if node_var > var:
            return u
        key = (OP_EXISTS << 60) | (u << NODE_SHIFT) | var
        ckeys = self._ckeys
        slot = (key ^ (key >> 29)) & self._cmask
        if ckeys[slot] == key:
            self.cache_hits += 1
            return self._cvals[slot]
        self.cache_misses += 1
        self.ops += 1
        if node_var == var:
            result = self.apply(OP_OR, self._low[u], self._high[u])
        else:
            result = self.mk(
                node_var,
                self.exists(self._low[u], var),
                self.exists(self._high[u], var),
            )
        if not ckeys[slot]:
            self._cache_filled += 1
        ckeys[slot] = key
        self._cvals[slot] = result
        return result

    # -- caches ----------------------------------------------------------

    def clear_caches(self) -> None:
        """Zero the op-cache slots (the node table itself is kept)."""
        size = self._cmask + 1
        self._ckeys = array("q", bytes(8 * size))
        self._cvals = array("i", bytes(4 * size))
        self._cache_filled = 0
        self._ite_memo.clear()

    # -- garbage collection ----------------------------------------------

    def collect_garbage(
        self, extra_roots: Iterable[int] = ()
    ) -> Dict[int, int]:
        """Mark-and-sweep, compacting the parallel arrays **in place**.

        Survivors only ever move to smaller ids (children stay ahead of
        parents), so one ascending pass rewrites the arrays without
        reallocating them; the unique table is rebuilt in a single dict
        comprehension afterwards.  Same contract as the dict engine:
        returns the old→new remap and remaps registered roots in place.
        """
        old_count = self._count
        if old_count > self.peak_node_count:
            self.peak_node_count = old_count
        live = bytearray(old_count)
        live[FALSE] = live[TRUE] = 1
        stack = [u for u in self._roots]
        stack.extend(u for u in extra_roots if u > TRUE)
        tvar, tlow, thigh = self._var, self._low, self._high
        while stack:
            u = stack.pop()
            if live[u]:
                continue
            live[u] = 1
            low, high = tlow[u], thigh[u]
            if not live[low]:
                stack.append(low)
            if not live[high]:
                stack.append(high)
        remap: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
        next_id = 2
        for u in range(2, old_count):
            if not live[u]:
                continue
            remap[u] = next_id
            tvar[next_id] = tvar[u]
            tlow[next_id] = remap[tlow[u]]
            thigh[next_id] = remap[thigh[u]]
            next_id += 1
        self._count = next_id
        self._unique = {
            (tvar[i] << 60) | (tlow[i] << 30) | thigh[i]: i
            for i in range(2, next_id)
        }
        self.clear_caches()  # op memos reference pre-compaction ids
        self._roots = {remap[u]: count for u, count in self._roots.items()}
        self.gc_runs += 1
        self.gc_reclaimed_nodes += old_count - next_id
        return remap

    # -- observability ----------------------------------------------------

    def counters(self) -> Dict[str, float]:
        """Engine health counters, with the flat kernel's table gauges."""
        lookups = self.cache_hits + self.cache_misses
        if self._count > self.peak_node_count:
            self.peak_node_count = self._count
        return {
            "node_count": self._count,
            "peak_node_count": self.peak_node_count,
            "ops": self.ops,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
            "cache_generation": self.cache_generation,
            "cache_entries": self._cache_filled + len(self._ite_memo),
            "gc_runs": self.gc_runs,
            "gc_reclaimed_nodes": self.gc_reclaimed_nodes,
            "root_count": len(self._roots),
            # -- flat-kernel table gauges (absent on the dict engine) ----
            "kernel_flat": 1.0,
            "cache_capacity": self._cmask + 1,
            "node_capacity": len(self._var),
        }
