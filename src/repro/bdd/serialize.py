"""Cross-engine BDD serialization (the JDD-BDDIO equivalent, §5.1).

When a symbolic packet crosses a worker boundary, its BDD must be encoded
on the sending worker's engine and re-encoded on the receiving worker's
engine (§4.3, option 2).  The wire format is a flat tuple of node triples
in children-first order plus the root index, so deserialization is a
single bottom-up pass of hash-consing ``mk`` calls — re-canonicalizing the
function in the destination engine regardless of how either table grew.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from .engine import FALSE, TRUE, BddEngine

# (num_vars, root_slot, ((var, low_slot, high_slot), ...))
# Slots 0/1 are the terminals; internal nodes start at slot 2 in the order
# they appear in the triples tuple.
SerializedBdd = Tuple[int, int, Tuple[Tuple[int, int, int], ...]]


def serialize(engine: BddEngine, root: int) -> SerializedBdd:
    """Encode ``root`` as an engine-independent triple list."""
    slot_of = {FALSE: 0, TRUE: 1}
    triples: List[Tuple[int, int, int]] = []
    for node, var, low, high in engine.nodes_of(root):
        slot_of[node] = len(triples) + 2
        triples.append((var, slot_of[low], slot_of[high]))
    return engine.num_vars, slot_of.get(root, root), tuple(triples)


def deserialize(engine: BddEngine, payload: SerializedBdd) -> int:
    """Rebuild a serialized BDD inside ``engine``; returns the new root."""
    num_vars, root_slot, triples = payload
    if num_vars != engine.num_vars:
        raise ValueError(
            f"variable-count mismatch: payload {num_vars}, "
            f"engine {engine.num_vars}"
        )
    ids: List[int] = [FALSE, TRUE]
    for var, low_slot, high_slot in triples:
        ids.append(engine.mk(var, ids[low_slot], ids[high_slot]))
    return ids[root_slot]


def packed_size(payload: SerializedBdd) -> int:
    """Wire size in bytes under a dense fixed-width packing.

    Each triple packs into 12 bytes (var, low, high as uint32) plus an
    8-byte header — the figure the communication accounting charges for a
    cross-worker symbolic packet.
    """
    _num_vars, _root, triples = payload
    return 8 + 12 * len(triples)


def to_bytes(payload: SerializedBdd) -> bytes:
    """Actually pack the payload (used by the process transport)."""
    num_vars, root, triples = payload
    parts = [struct.pack("<II", num_vars, root)]
    for var, low, high in triples:
        parts.append(struct.pack("<III", var, low, high))
    return b"".join(parts)


def from_bytes(data: bytes) -> SerializedBdd:
    """Inverse of :func:`to_bytes`."""
    num_vars, root = struct.unpack_from("<II", data, 0)
    triples: List[Tuple[int, int, int]] = []
    offset = 8
    while offset < len(data):
        triples.append(struct.unpack_from("<III", data, offset))
        offset += 12
    return num_vars, root, tuple(triples)


def transfer(
    source: BddEngine, root: int, destination: BddEngine
) -> Tuple[int, int]:
    """Serialize ``root`` out of ``source`` and rebuild it in
    ``destination``; returns ``(new_root, wire_bytes)``."""
    payload = serialize(source, root)
    return deserialize(destination, payload), packed_size(payload)
