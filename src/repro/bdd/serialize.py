"""Cross-engine BDD serialization (the JDD-BDDIO equivalent, §5.1).

When a symbolic packet crosses a worker boundary, its BDD must be encoded
on the sending worker's engine and re-encoded on the receiving worker's
engine (§4.3, option 2).  The wire format is a flat tuple of node triples
in children-first order plus the root index, so deserialization is a
single bottom-up pass of hash-consing ``mk`` calls — re-canonicalizing the
function in the destination engine regardless of how either table grew.

Because the format is canonical for a given function (children-first DFS
order from the root), *identical symbolic packets serialize identically*,
which is what the send-side :class:`SendDedupCache` exploits: payloads are
content-hashed, and a payload already shipped to a peer is charged only a
small digest-reference instead of the full node list.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Sequence, Tuple

from .engine import FALSE, TRUE, BddEngine

# (num_vars, root_slot, ((var, low_slot, high_slot), ...))
# Slots 0/1 are the terminals; internal nodes start at slot 2 in the order
# they appear in the triples tuple.
SerializedBdd = Tuple[int, int, Tuple[Tuple[int, int, int], ...]]

_HEADER = struct.Struct("<II")
_TRIPLE = struct.Struct("<III")

# What a dedup-aware transport ships for an already-seen payload: a
# 16-byte content digest plus a 4-byte length/flags word.
DEDUP_REF_BYTES = 20


def serialize(engine: BddEngine, root: int) -> SerializedBdd:
    """Encode ``root`` as an engine-independent triple list."""
    slot_of = {FALSE: 0, TRUE: 1}
    triples: List[Tuple[int, int, int]] = []
    for node, var, low, high in engine.nodes_of(root):
        slot_of[node] = len(triples) + 2
        triples.append((var, slot_of[low], slot_of[high]))
    return engine.num_vars, slot_of.get(root, root), tuple(triples)


def deserialize(engine: BddEngine, payload: SerializedBdd) -> int:
    """Rebuild a serialized BDD inside ``engine``; returns the new root."""
    num_vars, root_slot, triples = payload
    if num_vars != engine.num_vars:
        raise ValueError(
            f"variable-count mismatch: payload {num_vars}, "
            f"engine {engine.num_vars}"
        )
    ids: List[int] = [FALSE, TRUE]
    for var, low_slot, high_slot in triples:
        ids.append(engine.mk(var, ids[low_slot], ids[high_slot]))
    return ids[root_slot]


def packed_size(payload: SerializedBdd) -> int:
    """Wire size in bytes under a dense fixed-width packing.

    Each triple packs into 12 bytes (var, low, high as uint32) plus an
    8-byte header — the figure the communication accounting charges for a
    cross-worker symbolic packet.
    """
    _num_vars, _root, triples = payload
    return 8 + 12 * len(triples)


def to_bytes(payload: SerializedBdd) -> bytes:
    """Actually pack the payload (used by the process transport)."""
    num_vars, root, triples = payload
    parts = [_HEADER.pack(num_vars, root)]
    for var, low, high in triples:
        parts.append(_TRIPLE.pack(var, low, high))
    return b"".join(parts)


def from_bytes(data: bytes) -> SerializedBdd:
    """Inverse of :func:`to_bytes`, with full payload validation.

    Corrupt checkpoints and torn process-transport frames land here, so
    malformed input must surface as a clear :class:`ValueError` rather
    than an uncaught ``struct.error`` or a bogus BDD: the header must be
    complete, the body a whole number of 12-byte triples, the root slot in
    range, and every child slot must reference an earlier slot (the
    children-first invariant ``deserialize`` rebuilds from).
    """
    if len(data) < 8:
        raise ValueError(
            f"truncated BDD payload: {len(data)} bytes, need at least an "
            f"8-byte header"
        )
    body = len(data) - 8
    if body % 12:
        raise ValueError(
            f"torn BDD payload: {body} body bytes is not a whole number "
            f"of 12-byte node triples ({body % 12} trailing bytes)"
        )
    num_vars, root = _HEADER.unpack_from(data, 0)
    triples: List[Tuple[int, int, int]] = []
    offset = 8
    for slot in range(2, 2 + body // 12):
        var, low, high = _TRIPLE.unpack_from(data, offset)
        if low >= slot or high >= slot:
            raise ValueError(
                f"corrupt BDD payload: slot {slot} references child slot "
                f"{max(low, high)} (children must precede parents)"
            )
        triples.append((var, low, high))
        offset += 12
    if root >= 2 + len(triples):
        raise ValueError(
            f"corrupt BDD payload: root slot {root} out of range "
            f"(payload has {len(triples)} internal nodes)"
        )
    return num_vars, root, tuple(triples)


def content_digest(payload: SerializedBdd) -> bytes:
    """A 16-byte content hash of the canonical wire encoding."""
    return hashlib.blake2b(to_bytes(payload), digest_size=16).digest()


class SendDedupCache:
    """Content-hashed memory of payloads already shipped to one peer.

    The serialized form of a BDD is canonical, so the same symbolic
    packet re-crossing a worker boundary in a later round (or a later
    query of the same run) hashes to the same digest.  A dedup-aware
    transport then sends a :data:`DEDUP_REF_BYTES`-sized reference instead
    of the node list, and the communication accounting charges only that
    delta.

    Bounded the same way as the engine's op-cache: two generations with
    wholesale eviction of the older one — forgetting an entry merely
    forfeits a future dedup hit.
    """

    def __init__(self, max_entries: int = 1 << 14) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._current: Dict[bytes, int] = {}
        self._previous: Dict[bytes, int] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_saved = 0

    def __len__(self) -> int:
        return len(self._current) + len(self._previous)

    def offer(self, payload: SerializedBdd) -> Tuple[bool, int]:
        """Record a payload about to be sent.

        Returns ``(duplicate, wire_bytes)`` where ``wire_bytes`` is what
        the transport actually ships: the full :func:`packed_size` on
        first sight, :data:`DEDUP_REF_BYTES` on a repeat.
        """
        digest = content_digest(payload)
        size = self._current.get(digest)
        if size is None:
            size = self._previous.get(digest)
            if size is not None:
                self._current[digest] = size
        if size is not None:
            # A terminal payload packs smaller than a digest reference;
            # never charge more than simply resending it.
            wire = min(size, DEDUP_REF_BYTES)
            self.hits += 1
            self.bytes_saved += size - wire
            return True, wire
        self.misses += 1
        size = packed_size(payload)
        self._current[digest] = size
        if len(self._current) >= self.max_entries:
            self._previous = self._current
            self._current = {}
        return False, size


def transfer(
    source: BddEngine, root: int, destination: BddEngine
) -> Tuple[int, int]:
    """Serialize ``root`` out of ``source`` and rebuild it in
    ``destination``; returns ``(new_root, wire_bytes)``."""
    payload = serialize(source, root)
    return deserialize(destination, payload), packed_size(payload)
