"""Packet-header encoding over BDD variables (§4.3).

A header is a bit vector: the 5-tuple fields (up to 104 bits) followed by
``m`` metadata bits used by path-sensitive checks such as waypointing.
Which 5-tuple fields are actually encoded is configurable — the queries in
the paper's evaluation constrain only the destination address, and leaving
the unconstrained 72 bits out of the encoding shrinks every BDD without
changing any verdict.  Enabling all fields yields exactly the paper's
``104 + m`` layout.

Variable order: dst, src, proto, sport, dport (each MSB-first), then
metadata bits last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config.ast import Acl, AclLine, Action
from ..net.ip import Prefix
from .engine import FALSE, TRUE, BddEngine

FIELD_WIDTHS = {
    "dst": 32,
    "src": 32,
    "proto": 8,
    "sport": 16,
    "dport": 16,
}
ALL_FIELDS: Tuple[str, ...] = ("dst", "src", "proto", "sport", "dport")


@dataclass(frozen=True)
class HeaderEncoding:
    """Assignment of header fields and metadata bits to BDD variables.

    ``address_bits`` selects the address family of the dst/src fields:
    32 (IPv4, the default and the paper's scope) or 128 (IPv6 — this
    reproduction's implementation of the paper's future work; a verifier
    runs one pass per family, each with its own encoding).
    """

    fields: Tuple[str, ...] = ("dst",)
    metadata_bits: int = 0
    address_bits: int = 32

    def __post_init__(self) -> None:
        for name in self.fields:
            if name not in FIELD_WIDTHS:
                raise ValueError(f"unknown header field {name!r}")
        if "dst" not in self.fields:
            raise ValueError("the dst field is mandatory")
        if self.address_bits not in (32, 128):
            raise ValueError("address_bits must be 32 or 128")

    def width_of(self, name: str) -> int:
        if name in ("dst", "src"):
            return self.address_bits
        return FIELD_WIDTHS[name]

    @property
    def header_bits(self) -> int:
        return sum(self.width_of(name) for name in self.fields)

    @property
    def num_vars(self) -> int:
        return self.header_bits + self.metadata_bits

    def field_base(self, name: str) -> int:
        """First variable index of field ``name``."""
        base = 0
        for candidate in self.fields:
            if candidate == name:
                return base
            base += self.width_of(candidate)
        raise KeyError(f"field {name!r} not encoded")

    def has_field(self, name: str) -> bool:
        return name in self.fields

    def metadata_var(self, index: int) -> int:
        if not 0 <= index < self.metadata_bits:
            raise IndexError(f"metadata bit {index} out of range")
        return self.header_bits + index

    def make_engine(
        self, node_limit: int = 1 << 24, kernel: str = "flat"
    ) -> BddEngine:
        """Build this encoding's BDD engine.

        ``kernel`` selects the implementation: ``"flat"`` (the default)
        is the array-backed kernel with batched compilation,
        ``"dict"`` the original dict-of-tuples engine kept as a
        differential-tested fallback.  Both produce bit-identical
        verdicts; see ``repro.bdd.flat``.
        """
        if kernel == "flat":
            from .flat import FlatBddEngine

            return FlatBddEngine(self.num_vars, node_limit=node_limit)
        if kernel == "dict":
            return BddEngine(self.num_vars, node_limit=node_limit)
        raise ValueError(f"unknown bdd kernel {kernel!r}")

    # -- field constraints ----------------------------------------------------

    def prefix_bdd(
        self, engine: BddEngine, prefix: Prefix, fld: str = "dst"
    ) -> int:
        """The packets whose ``fld`` address lies in ``prefix``."""
        if prefix.width != self.address_bits:
            raise ValueError(
                f"{prefix} is a {prefix.width}-bit prefix but this "
                f"encoding's addresses are {self.address_bits}-bit"
            )
        base = self.field_base(fld)
        assignments = {
            base + i: bool(bit) for i, bit in enumerate(prefix.bits())
        }
        return engine.cube(assignments)

    def prefix_set_bdd(
        self,
        engine: BddEngine,
        prefixes: Sequence[Prefix],
        fld: str = "dst",
    ) -> int:
        """The union of a whole prefix *set* in one bulk compilation.

        Equivalent to folding :meth:`prefix_bdd` results with ``or_`` but
        built from a binary trie of the prefixes in a single bottom-up
        pass of hash-consing ``mk`` calls — zero apply operations, and
        subsumed prefixes (covered by a shorter one in the set) collapse
        for free.  This is the bulk path FIB/predicate compilation and
        query header sets use.
        """
        width = self.address_bits
        for prefix in prefixes:
            if prefix.width != width:
                raise ValueError(
                    f"{prefix} is a {prefix.width}-bit prefix but this "
                    f"encoding's addresses are {width}-bit"
                )
        # Trie node: [low_child, high_child, covered]; ``covered`` marks a
        # prefix ending here (its whole subtree is in the set).
        root = [None, None, False]
        for prefix in prefixes:
            node = root
            for bit in prefix.bits():
                if node[2]:
                    break  # already covered by a shorter prefix
                if node[bit] is None:
                    node[bit] = [None, None, False]
                node = node[bit]
            else:
                node[2] = True
                node[0] = node[1] = None  # subsume anything longer
        base = self.field_base(fld)

        def build(node, depth: int) -> int:
            if node is None:
                return FALSE
            if node[2]:
                return TRUE
            return engine.mk(
                base + depth,
                build(node[0], depth + 1),
                build(node[1], depth + 1),
            )

        return build(root, 0)

    def value_bdd(self, engine: BddEngine, fld: str, value: int) -> int:
        """The packets whose ``fld`` equals ``value`` exactly."""
        base = self.field_base(fld)
        width = self.width_of(fld)
        assignments = {
            base + i: bool((value >> (width - 1 - i)) & 1)
            for i in range(width)
        }
        return engine.cube(assignments)

    def range_bdd(
        self, engine: BddEngine, fld: str, low: int, high: int
    ) -> int:
        """The packets with ``low <= fld <= high`` (inclusive).

        Out-of-domain bounds are clamped to ``[0, 2**width - 1]`` before
        the aligned-block walk: a negative ``low`` would otherwise feed
        Python's floor-mod into the block alignment and emit wrong cubes.
        """
        width = self.width_of(fld)
        if low > high:
            return FALSE
        if low <= 0 and high >= (1 << width) - 1:
            return TRUE
        low = max(low, 0)
        high = min(high, (1 << width) - 1)
        base = self.field_base(fld)
        result = FALSE
        # Cover [low, high] with maximal power-of-two aligned blocks, each
        # of which is a cube over the leading bits.
        position = low
        while position <= high:
            block = 1
            while (
                position % (block * 2) == 0
                and position + block * 2 - 1 <= high
            ):
                block *= 2
            fixed_bits = width - block.bit_length() + 1
            assignments = {
                base + i: bool((position >> (width - 1 - i)) & 1)
                for i in range(fixed_bits)
            }
            result = engine.or_(result, engine.cube(assignments))
            position += block
        return result

    # -- ACL compilation ----------------------------------------------------------

    def acl_line_bdd(self, engine: BddEngine, line: AclLine) -> int:
        """The packet set matched by one ACL line.

        Constraints on fields that are not part of the encoding are
        treated as wildcard (documented in DESIGN.md): the verdict is then
        conservative for the encoded fields.
        """
        result = TRUE
        if line.dst is not None:
            if line.dst.width != self.address_bits:
                return FALSE  # other-family line: matches no packet here
            result = engine.and_(
                result, self.prefix_bdd(engine, line.dst, "dst")
            )
        if line.src is not None and self.has_field("src"):
            if line.src.width != self.address_bits:
                return FALSE
            result = engine.and_(
                result, self.prefix_bdd(engine, line.src, "src")
            )
        if line.protocol is not None and self.has_field("proto"):
            result = engine.and_(
                result, self.value_bdd(engine, "proto", line.protocol)
            )
        if line.src_port is not None and self.has_field("sport"):
            low, high = line.src_port
            result = engine.and_(
                result, self.range_bdd(engine, "sport", low, high)
            )
        if line.dst_port is not None and self.has_field("dport"):
            low, high = line.dst_port
            result = engine.and_(
                result, self.range_bdd(engine, "dport", low, high)
            )
        return result

    def acl_bdd(self, engine: BddEngine, acl: Acl) -> int:
        """The packets an ACL permits, under first-match semantics with an
        implicit trailing deny."""
        permitted = FALSE
        covered = FALSE
        for line in acl.sorted_lines():
            matched = self.acl_line_bdd(engine, line)
            fresh = engine.diff(matched, covered)
            if line.action is Action.PERMIT:
                permitted = engine.or_(permitted, fresh)
            covered = engine.or_(covered, matched)
        return permitted

    # -- diagnostics ----------------------------------------------------------------

    def describe_assignment(self, assignment: Dict[int, bool]) -> str:
        """Human-readable rendering of :meth:`BddEngine.any_sat` output."""
        parts: List[str] = []
        for name in self.fields:
            base = self.field_base(name)
            width = self.width_of(name)
            value = 0
            known = False
            for i in range(width):
                bit = assignment.get(base + i)
                if bit:
                    value |= 1 << (width - 1 - i)
                if bit is not None:
                    known = True
            if known:
                if name in ("dst", "src"):
                    from ..net.ip import format_address

                    parts.append(
                        f"{name}={format_address(value, self.address_bits)}"
                    )
                else:
                    parts.append(f"{name}={value}")
        for i in range(self.metadata_bits):
            bit = assignment.get(self.metadata_var(i))
            if bit is not None:
                parts.append(f"meta[{i}]={int(bit)}")
        return " ".join(parts) if parts else "any"
