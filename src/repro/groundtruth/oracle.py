"""The ground-truth audit: symbolic verdicts vs concrete packet walks.

:func:`audit_verifier` takes any monolithic-verifier-shaped object (duck
typed; :class:`~repro.dataplane.verifier.DataPlaneVerifier` fits) and
adjudicates every class of verdict it produces:

* **reachability** — witness packets sampled from each reachable
  (source, destination) set must arrive at the destination when walked
  concretely, and near-miss packets from the set's negation must not;
* **blackhole / loop / exit finals** — a witness sampled from each
  symbolic final must reproduce that final state at that node when
  walked (the concrete path is the explanation the symbolic side
  cannot give);
* the **concrete → symbolic** direction: every node a witness walk
  actually arrives at must be claimed reachable by the symbolic side.

Mismatches carry the *minimal hop-trace* — the shortest concrete path
that demonstrates the disagreement — so a failure is directly
actionable.  :func:`audit_waypoints` does the same for §4.4 waypoint
verdicts (visited-node sets against the metadata-bit implication).

Everything symbolic is reached through the audited verifier's own
``engine``/``encoding`` objects; this module imports nothing from
``repro.bdd`` (see the package docstring for the independence
contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .sampler import FALSE, TRUE, WitnessSampler
from .walker import (
    ARRIVE,
    BLACKHOLE,
    EXIT,
    LOOP,
    ConcretePacket,
    GroundTruthNetwork,
    WalkResult,
)


@dataclass(frozen=True)
class GroundTruthMismatch:
    """One disagreement between the symbolic verdict and a concrete walk."""

    kind: str               # reachability | near-miss | final | waypoint
    source: str
    node: str               # destination / final node / transit
    packet: str             # ConcretePacket.describe()
    expected: str
    got: str
    trace: str              # minimal hop-trace (or the outcome summary)

    def describe(self) -> str:
        return (
            f"[{self.kind}] {self.source} -> {self.node} "
            f"({self.packet}): symbolic says {self.expected}, "
            f"concrete walk says {self.got}; trace: {self.trace}"
        )


@dataclass
class GroundTruthReport:
    """The outcome of one ground-truth audit."""

    packets_walked: int = 0
    witnesses_confirmed: int = 0
    near_misses_refuted: int = 0
    finals_confirmed: int = 0
    pairs_checked: int = 0
    mismatches: List[GroundTruthMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def merge(self, other: "GroundTruthReport") -> None:
        self.packets_walked += other.packets_walked
        self.witnesses_confirmed += other.witnesses_confirmed
        self.near_misses_refuted += other.near_misses_refuted
        self.finals_confirmed += other.finals_confirmed
        self.pairs_checked += other.pairs_checked
        self.mismatches.extend(other.mismatches)

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (
            f"ground truth: {status} — {self.packets_walked} packets "
            f"walked over {self.pairs_checked} pairs "
            f"({self.witnesses_confirmed} witnesses confirmed, "
            f"{self.near_misses_refuted} near misses refuted, "
            f"{self.finals_confirmed} finals confirmed)"
        )

    def describe(self, limit: int = 10) -> str:
        lines = [self.summary()]
        lines += [m.describe() for m in self.mismatches[:limit]]
        extra = len(self.mismatches) - limit
        if extra > 0:
            lines.append(f"... and {extra} more")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "packets_walked": self.packets_walked,
            "witnesses_confirmed": self.witnesses_confirmed,
            "near_misses_refuted": self.near_misses_refuted,
            "finals_confirmed": self.finals_confirmed,
            "pairs_checked": self.pairs_checked,
            "mismatches": [
                {
                    "kind": m.kind,
                    "source": m.source,
                    "node": m.node,
                    "packet": m.packet,
                    "expected": m.expected,
                    "got": m.got,
                    "trace": m.trace,
                }
                for m in self.mismatches
            ],
        }


def _walk_summary(walk: WalkResult) -> str:
    states = sorted(walk.states()) or ["no outcome"]
    arrived = sorted(walk.arrived_at())
    summary = "/".join(states)
    if arrived:
        summary += f" (arrived at {', '.join(arrived)})"
    return summary


def _minimal(walk: WalkResult, state: Optional[str] = None,
             node: Optional[str] = None) -> str:
    outcome = walk.minimal_trace(state, node)
    if outcome is None:
        outcome = walk.minimal_trace()
    return outcome.trace() if outcome is not None else "<no path>"


class GroundTruthAuditor:
    """Bundles the network model + sampler for one audited verifier."""

    def __init__(
        self,
        verifier,
        seed: int = 0,
        witnesses: int = 3,
        near_misses: int = 3,
        budget: Optional[int] = None,
    ) -> None:
        self.verifier = verifier
        kwargs = {}
        if budget is not None:
            kwargs["budget"] = budget
        self.network = GroundTruthNetwork(
            verifier.snapshot,
            verifier.fibs,
            modeled_fields=tuple(verifier.encoding.fields),
            max_hops=getattr(verifier.context, "max_hops", 24),
            **kwargs,
        )
        self.sampler = WitnessSampler(
            verifier.engine, verifier.encoding, seed=seed
        )
        self.witnesses = witnesses
        self.near_misses = near_misses

    # -- reachability ------------------------------------------------------

    def audit_reachability(
        self,
        sources: Sequence[str],
        destinations: Sequence[str],
        header_bdd: int = TRUE,
    ) -> GroundTruthReport:
        report = GroundTruthReport()
        engine = self.verifier.engine
        finals = self.verifier.forward(list(sources), header_bdd, False)
        reachable: Dict[Tuple[str, str], int] = {}
        for final in finals:
            if final.state.value != ARRIVE:
                continue
            key = (final.source, final.node)
            reachable[key] = engine.or_(
                reachable.get(key, FALSE), final.bdd
            )
        wanted = set(destinations)
        # Witness direction: claimed-reachable packets must arrive.
        for (source, node), bdd in sorted(reachable.items()):
            for packet in self.sampler.packets(bdd, self.witnesses):
                walk = self.network.walk(packet, source)
                report.packets_walked += 1
                if node in walk.arrived_at():
                    report.witnesses_confirmed += 1
                else:
                    report.mismatches.append(
                        GroundTruthMismatch(
                            kind="reachability",
                            source=source,
                            node=node,
                            packet=packet.describe(),
                            expected=f"arrives at {node}",
                            got=_walk_summary(walk),
                            trace=_minimal(walk),
                        )
                    )
                # Concrete -> symbolic: every arrival of this witness
                # must be claimed by some symbolic ARRIVE verdict.
                for arrived in walk.arrived_at():
                    claimed = reachable.get((source, arrived), FALSE)
                    if not self.sampler.contains(claimed, packet):
                        report.mismatches.append(
                            GroundTruthMismatch(
                                kind="reachability",
                                source=source,
                                node=arrived,
                                packet=packet.describe(),
                                expected=f"not reachable at {arrived}",
                                got="concrete walk arrives",
                                trace=_minimal(walk, ARRIVE, arrived),
                            )
                        )
        # Near-miss direction: packets outside the verdict must not
        # arrive at that destination.
        for source in sources:
            for node in sorted(wanted):
                report.pairs_checked += 1
                bdd = reachable.get((source, node), FALSE)
                misses = self.sampler.near_miss_packets(
                    bdd, self.near_misses, universe=header_bdd
                )
                for packet in misses:
                    walk = self.network.walk(packet, source)
                    report.packets_walked += 1
                    if node not in walk.arrived_at():
                        report.near_misses_refuted += 1
                    else:
                        report.mismatches.append(
                            GroundTruthMismatch(
                                kind="near-miss",
                                source=source,
                                node=node,
                                packet=packet.describe(),
                                expected=f"does not arrive at {node}",
                                got="concrete walk arrives",
                                trace=_minimal(walk, ARRIVE, node),
                            )
                        )
        # Final-state direction: blackholes, loops, and exits must
        # reproduce concretely at the node the symbolic side names.
        for final in finals:
            state = final.state.value
            if state == ARRIVE:
                continue
            for packet in self.sampler.packets(final.bdd, 1):
                walk = self.network.walk(packet, final.source)
                report.packets_walked += 1
                matched = any(
                    o.state == state and o.node == final.node
                    and (state != EXIT or o.out_port == final.out_port)
                    for o in walk.outcomes
                )
                if matched:
                    report.finals_confirmed += 1
                else:
                    report.mismatches.append(
                        GroundTruthMismatch(
                            kind="final",
                            source=final.source,
                            node=final.node,
                            packet=packet.describe(),
                            expected=f"{state} at {final.node}",
                            got=_walk_summary(walk),
                            trace=_minimal(walk),
                        )
                    )
        return report

    # -- waypoints ---------------------------------------------------------

    def audit_waypoints(
        self,
        transits: Sequence[str],
        sources: Sequence[str],
        destinations: Sequence[str],
    ) -> GroundTruthReport:
        """Adjudicate §4.4 waypoint verdicts against visited-node sets.

        The symbolic machinery is per *path class*: an arriving final
        with the transit's metadata bit clear means "this packet set
        reached the destination along some path that bypassed the
        transit" — even if an ECMP sibling visits it.  The faithful
        concrete reading is therefore existential, per packet:

        * packet ∈ (arriving finals ∧ ¬bit)  ⟺  some concrete arriving
          path avoids the transit;
        * packet ∈ (arriving finals ∧ bit)   ⟺  some concrete arriving
          path visits it.

        Both directions are checked for every sampled witness.
        """
        report = GroundTruthReport()
        verifier = self.verifier
        engine = verifier.engine
        encoding = verifier.encoding
        verifier.install_waypoints(list(transits))
        header = TRUE
        for index in range(len(transits)):
            header = engine.and_(
                header, engine.nvar(encoding.metadata_var(index))
            )
        finals = verifier.forward(list(sources), header, False)
        wanted = set(destinations)
        # (source, destination) -> union of arriving finals' sets.
        arrive_all: Dict[Tuple[str, str], int] = {}
        for final in finals:
            if final.state.value != ARRIVE or final.node not in wanted:
                continue
            key = (final.source, final.node)
            arrive_all[key] = engine.or_(
                arrive_all.get(key, FALSE), final.bdd
            )
        for (source, node), union in sorted(arrive_all.items()):
            for index, transit in enumerate(transits):
                report.pairs_checked += 1
                var = engine.var(encoding.metadata_var(index))
                bypass_bdd = engine.diff(union, var)
                through_bdd = engine.and_(union, var)
                # Sample from both sides so each claim is exercised even
                # when one dominates the union.
                packets = self.sampler.packets(bypass_bdd, self.witnesses)
                packets += self.sampler.packets(through_bdd, self.witnesses)
                for packet in packets:
                    walk = self.network.walk(packet, source, track=[transit])
                    report.packets_walked += 1
                    arrivals = walk.arrivals_at(node)
                    has_bypass = any(
                        transit not in o.path for o in arrivals
                    )
                    has_through = any(
                        transit in o.path for o in arrivals
                    )
                    sym_bypass = self.sampler.intersects(bypass_bdd, packet)
                    sym_through = self.sampler.intersects(
                        through_bdd, packet
                    )
                    if (has_bypass, has_through) == (sym_bypass, sym_through):
                        report.witnesses_confirmed += 1
                        continue
                    if sym_bypass != has_bypass:
                        expected = (
                            f"some path bypasses {transit}"
                            if sym_bypass
                            else f"no path bypasses {transit}"
                        )
                        got = (
                            "a concrete path bypasses it"
                            if has_bypass
                            else "every concrete path visits it"
                        )
                    else:
                        expected = (
                            f"some path visits {transit}"
                            if sym_through
                            else f"no path visits {transit}"
                        )
                        got = (
                            "a concrete path visits it"
                            if has_through
                            else "no concrete path visits it"
                        )
                    report.mismatches.append(
                        GroundTruthMismatch(
                            kind="waypoint",
                            source=source,
                            node=transit,
                            packet=packet.describe(),
                            expected=expected,
                            got=got,
                            trace=_minimal(walk, ARRIVE, node),
                        )
                    )
        return report


def audit_verifier(
    verifier,
    sources: Optional[Sequence[str]] = None,
    destinations: Optional[Sequence[str]] = None,
    seed: int = 0,
    witnesses: int = 3,
    near_misses: int = 3,
    budget: Optional[int] = None,
) -> GroundTruthReport:
    """One-call reachability + final-state audit of a monolithic verifier.

    ``sources``/``destinations`` default to the verifier's prefix
    holders (the paper's all-pair endpoint set).
    """
    if sources is None:
        sources = verifier.prefix_holders()
    if destinations is None:
        destinations = sources
    auditor = GroundTruthAuditor(
        verifier,
        seed=seed,
        witnesses=witnesses,
        near_misses=near_misses,
        budget=budget,
    )
    return auditor.audit_reachability(sources, destinations)


def audit_waypoints(
    verifier,
    transits: Sequence[str],
    sources: Sequence[str],
    destinations: Sequence[str],
    seed: int = 0,
    witnesses: int = 2,
) -> GroundTruthReport:
    """One-call waypoint audit (see :meth:`GroundTruthAuditor.audit_waypoints`)."""
    auditor = GroundTruthAuditor(verifier, seed=seed, witnesses=witnesses)
    return auditor.audit_waypoints(transits, sources, destinations)
