"""Concrete packet forwarding over computed FIBs — no BDDs anywhere.

This is a deliberate *re-implementation* of the forwarding semantics in
:mod:`repro.dataplane.forwarding`, written against concrete packets
instead of symbolic sets:

* longest-prefix match is a linear scan with integer mask arithmetic
  (not the FIB's binary trie, and not the symbolic LPM partition);
* ACLs are evaluated first-match with an implicit trailing deny,
  directly over the parsed :class:`~repro.config.ast.Acl` lines;
* ECMP is explored as *all* paths (breadth-first over every next hop),
  because the symbolic walker forwards a packet set out of every port
  whose predicate intersects it.

The point of the duplication is independence: a bug in the BDD engine,
the predicate compiler, or the symbolic hop function cannot also live
here, so agreement between the two walkers is evidence about the
network, not about shared code.

Semantics mirrored from the symbolic side (same final states, same
ordering of checks, same ``max_hops`` loop cutoff):

1. inbound ACL on the entry port (injected packets have none) — denied
   packets blackhole at the node;
2. LPM over the node's FIB: RECEIVE → ``arrive``; DROP or no matching
   entry → ``blackhole``;
3. FORWARD → for every ECMP next hop: outbound ACL (denied →
   ``blackhole``), then an edge port (no adjacency) → ``exit``, a hop
   budget overrun → ``loop``, else the packet steps to the peer.

One conscious divergence from the symbolic model: ACL constraints on
header fields that are *not modeled* by the verifier's encoding are
treated as wildcard, because that is the documented (conservative)
symbolic semantics — the concrete walker must judge the symbolic verdict
on its own terms.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

DEFAULT_MAX_HOPS = 24
DEFAULT_BUDGET = 50_000

ARRIVE = "arrive"
EXIT = "exit"
BLACKHOLE = "blackhole"
LOOP = "loop"


class WalkBudgetError(RuntimeError):
    """The all-ECMP-paths exploration exceeded its expansion budget."""


def _format_address(value: int, width: int) -> str:
    """Render an address for error messages.  Local on purpose: this
    package imports nothing from the rest of ``repro`` (see the lint in
    ``tests/test_groundtruth.py``)."""
    if width == 32:
        return ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))
    groups = [f"{(value >> s) & 0xFFFF:x}" for s in range(width - 16, -1, -16)]
    return ":".join(groups)


@dataclass(frozen=True)
class ConcretePacket:
    """One fully concrete packet header (ints, MSB-aligned per field)."""

    dst: int
    src: int = 0
    proto: int = 0
    sport: int = 0
    dport: int = 0
    width: int = 32          # address family of dst/src: 32 or 128

    def describe(self) -> str:
        return (
            f"dst={_format_address(self.dst, self.width)} "
            f"src={_format_address(self.src, self.width)} "
            f"proto={self.proto} sport={self.sport} dport={self.dport}"
        )


@dataclass(frozen=True)
class WalkOutcome:
    """One final state of one concrete path."""

    state: str                    # arrive | exit | blackhole | loop
    node: str
    path: Tuple[str, ...]         # every node the packet visited, in order
    out_port: Optional[str] = None

    def trace(self) -> str:
        suffix = f" out {self.out_port}" if self.out_port else ""
        return f"[{self.state}] {' -> '.join(self.path)}{suffix}"


@dataclass
class WalkResult:
    """All final states of one packet injected at one source."""

    packet: ConcretePacket
    source: str
    outcomes: List[WalkOutcome] = field(default_factory=list)

    def states(self) -> Set[str]:
        return {o.state for o in self.outcomes}

    def arrived_at(self) -> Set[str]:
        return {o.node for o in self.outcomes if o.state == ARRIVE}

    def arrivals_at(self, node: str) -> List[WalkOutcome]:
        return [
            o for o in self.outcomes if o.state == ARRIVE and o.node == node
        ]

    def minimal_trace(
        self, state: Optional[str] = None, node: Optional[str] = None
    ) -> Optional[WalkOutcome]:
        """The shortest-path outcome matching the filters (for reports)."""
        candidates = [
            o
            for o in self.outcomes
            if (state is None or o.state == state)
            and (node is None or o.node == node)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda o: (len(o.path), o.path))


def _prefix_matches(prefix, address: int, width: int) -> bool:
    """Mask arithmetic only — independent of Prefix.contains_ip."""
    if prefix.width != width:
        return False
    shift = width - prefix.length
    return (address >> shift) == (prefix.network >> shift)


class _AclEvaluator:
    """First-match ACL evaluation with modeled-field wildcarding."""

    def __init__(self, modeled_fields: Sequence[str]) -> None:
        self._modeled = frozenset(modeled_fields)

    def line_matches(self, line, packet: ConcretePacket) -> bool:
        if line.dst is not None:
            if not _prefix_matches(line.dst, packet.dst, packet.width):
                return False
        if line.src is not None and "src" in self._modeled:
            if not _prefix_matches(line.src, packet.src, packet.width):
                return False
        if line.protocol is not None and "proto" in self._modeled:
            if packet.proto != line.protocol:
                return False
        if line.src_port is not None and "sport" in self._modeled:
            low, high = line.src_port
            if not low <= packet.sport <= high:
                return False
        if line.dst_port is not None and "dport" in self._modeled:
            low, high = line.dst_port
            if not low <= packet.dport <= high:
                return False
        return True

    def permits(self, acl, packet: ConcretePacket) -> bool:
        for line in acl.sorted_lines():
            if self.line_matches(line, packet):
                return line.action.value == "permit"
        return False  # implicit trailing deny


@dataclass(frozen=True)
class _InFlight:
    node: str
    in_port: Optional[str]
    hops: int
    path: Tuple[str, ...]
    visited: FrozenSet[str]  # tracked nodes seen so far (waypoint audits)


class GroundTruthNetwork:
    """The concrete forwarding model of one snapshot + its computed FIBs.

    Built from the same inputs the symbolic data plane consumes — the
    parsed device configs (for ACL bindings) and the per-device FIBs —
    but everything derived from them here (entry lists, ACL tables,
    adjacency) is recomputed with plain Python, not reused from the
    symbolic pipeline.
    """

    def __init__(
        self,
        snapshot,
        fibs: Dict[str, object],
        modeled_fields: Sequence[str] = ("dst",),
        max_hops: int = DEFAULT_MAX_HOPS,
        budget: int = DEFAULT_BUDGET,
    ) -> None:
        self.max_hops = max_hops
        self.budget = budget
        self._acl_eval = _AclEvaluator(modeled_fields)
        # (node, iface) -> (peer node, peer iface); absent = edge port.
        self.adjacency: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for link in snapshot.topology.links():
            self.adjacency[(link.a.node, link.a.interface)] = (
                link.b.node,
                link.b.interface,
            )
            self.adjacency[(link.b.node, link.b.interface)] = (
                link.a.node,
                link.a.interface,
            )
        # node -> [(prefix, entry)] — order is irrelevant; the LPM scan
        # below picks the longest match itself.
        self._entries: Dict[str, List[Tuple[object, object]]] = {}
        for node, fib in fibs.items():
            self._entries[node] = [
                (entry.prefix, entry) for entry in fib.entries()
            ]
        # node -> iface -> Acl (resolved from the config's name bindings).
        self._acl_in: Dict[str, Dict[str, object]] = {}
        self._acl_out: Dict[str, Dict[str, object]] = {}
        for hostname, config in snapshot.configs.items():
            table_in: Dict[str, object] = {}
            table_out: Dict[str, object] = {}
            for iface in config.interfaces.values():
                if iface.acl_in is not None and iface.acl_in in config.acls:
                    table_in[iface.name] = config.acls[iface.acl_in]
                if iface.acl_out is not None and iface.acl_out in config.acls:
                    table_out[iface.name] = config.acls[iface.acl_out]
            self._acl_in[hostname] = table_in
            self._acl_out[hostname] = table_out

    # -- the independent LPM ----------------------------------------------

    def lookup(self, node: str, packet: ConcretePacket):
        """Longest-prefix match by linear scan over the node's entries."""
        best = None
        best_length = -1
        for prefix, entry in self._entries.get(node, ()):
            if prefix.width != packet.width:
                continue
            if not _prefix_matches(prefix, packet.dst, packet.width):
                continue
            if prefix.length > best_length:
                best, best_length = entry, prefix.length
        return best

    def _permitted(
        self, table: Dict[str, Dict[str, object]], node: str,
        iface: Optional[str], packet: ConcretePacket,
    ) -> bool:
        if iface is None:
            return True
        acl = table.get(node, {}).get(iface)
        if acl is None:
            return True
        return self._acl_eval.permits(acl, packet)

    # -- the hop loop ------------------------------------------------------

    def walk(
        self,
        packet: ConcretePacket,
        source: str,
        track: Sequence[str] = (),
    ) -> WalkResult:
        """Forward one concrete packet from ``source`` along every ECMP
        path until each copy reaches a final state.

        Like the symbolic :class:`~repro.dataplane.forwarding.PacketBuffer`,
        copies meeting at the same ``(node, in-port, hop count)`` are
        merged — ECMP makes distinct paths combinatorial, but they share
        every future.  Each final state keeps its BFS-first (shortest)
        representative path.  ``track`` lists nodes whose visit status
        must survive the merge (the concrete analogue of the waypoint
        metadata bits): copies differing on any tracked node stay
        separate, so existence of a path avoiding or visiting a transit
        is still answered exactly.
        """
        result = WalkResult(packet=packet, source=source)
        tracked = frozenset(track)
        start = _InFlight(
            source, None, 0, (source,), frozenset({source} & tracked)
        )
        work = deque([start])
        seen = {(start.node, start.in_port, start.hops, start.visited)}
        expansions = 0
        while work:
            expansions += 1
            if expansions > self.budget:
                raise WalkBudgetError(
                    f"packet {packet.describe()} from {source} exceeded "
                    f"{self.budget} path expansions (raise `budget`)"
                )
            state = work.popleft()
            if not self._permitted(
                self._acl_in, state.node, state.in_port, packet
            ):
                result.outcomes.append(
                    WalkOutcome(BLACKHOLE, state.node, state.path)
                )
                continue
            entry = self.lookup(state.node, packet)
            if entry is None or entry.action.value == "drop":
                result.outcomes.append(
                    WalkOutcome(BLACKHOLE, state.node, state.path)
                )
                continue
            if entry.action.value == "receive":
                result.outcomes.append(
                    WalkOutcome(ARRIVE, state.node, state.path)
                )
                continue
            for hop in entry.next_hops:
                if not self._permitted(
                    self._acl_out, state.node, hop.iface, packet
                ):
                    result.outcomes.append(
                        WalkOutcome(BLACKHOLE, state.node, state.path)
                    )
                    continue
                peer = self.adjacency.get((state.node, hop.iface))
                if peer is None:
                    result.outcomes.append(
                        WalkOutcome(
                            EXIT, state.node, state.path, out_port=hop.iface
                        )
                    )
                    continue
                if state.hops + 1 > self.max_hops:
                    result.outcomes.append(
                        WalkOutcome(LOOP, state.node, state.path)
                    )
                    continue
                peer_node, peer_iface = peer
                visited = state.visited
                if peer_node in tracked:
                    visited = visited | {peer_node}
                key = (peer_node, peer_iface, state.hops + 1, visited)
                if key in seen:
                    continue
                seen.add(key)
                work.append(
                    _InFlight(
                        peer_node,
                        peer_iface,
                        state.hops + 1,
                        state.path + (peer_node,),
                        visited,
                    )
                )
        return result

    def walk_all(
        self,
        packets: Iterable[ConcretePacket],
        source: str,
        track: Sequence[str] = (),
    ) -> List[WalkResult]:
        return [self.walk(packet, source, track) for packet in packets]
