"""Ground-truth packet-walk oracle (ROADMAP item 5).

Every verdict the verifier emits is computed *and* adjudicated by the
same BDD stack — a shared symbolic bug would be invisible to the
differential fuzz oracle, which only cross-checks runtimes against each
other.  This package is the second, independent oracle: concrete packets
are sampled from each query's satisfying BDD assignment (witnesses) and
from its negation (near misses), then walked hop-by-hop through the
computed per-device FIBs with this package's *own* longest-prefix-match,
ACL evaluation, and all-ECMP-paths traversal.

Independence contract (enforced by a lint test): **nothing in
``repro.groundtruth`` imports ``repro.bdd``**.  The only bridge to the
symbolic world is :class:`~repro.groundtruth.sampler.WitnessSampler`,
which extracts concrete bit assignments through the *caller-supplied*
engine object's public ``any_sat``/``cube``/``diff`` surface — the
walker and the comparison logic never see a BDD.
"""

from .walker import (
    ConcretePacket,
    GroundTruthNetwork,
    WalkBudgetError,
    WalkOutcome,
    WalkResult,
)
from .sampler import WitnessSampler
from .oracle import (
    GroundTruthMismatch,
    GroundTruthReport,
    audit_verifier,
    audit_waypoints,
)

__all__ = [
    "ConcretePacket",
    "GroundTruthNetwork",
    "GroundTruthMismatch",
    "GroundTruthReport",
    "WalkBudgetError",
    "WalkOutcome",
    "WalkResult",
    "WitnessSampler",
    "audit_verifier",
    "audit_waypoints",
]
