"""Sampling concrete packets from symbolic verdicts.

This module is the one place where the ground-truth oracle touches the
symbolic world, and it does so without importing any of it: the engine
and header encoding are *caller-supplied* objects used only through
their public surface (``any_sat``, ``cube``, ``diff``, ``fields``,
``field_base``, ``width_of``).  Everything this module hands onward is a
plain :class:`~repro.groundtruth.walker.ConcretePacket`.

Sampling strategy:

* **Witnesses** come from a verdict's satisfying set.  ``any_sat``
  returns one partial assignment; the sampled *concrete point* (every
  variable pinned) is then subtracted from the set with
  ``diff(bdd, cube(point))``, so repeated draws are distinct and
  enumeration terminates even on small sets.
* **Near misses** are the same draw from ``diff(universe, bdd)`` — the
  packets the verdict claims do *not* satisfy the query.
* Bits the assignment leaves free are don't-cares for the verdict; the
  first draw fills them with zeros (stable), later draws fill them from
  a seeded RNG so repeated audits probe different corners of the cube.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .walker import ConcretePacket

# Terminal node ids of the hash-consed engines — a stable public
# contract (repro.bdd.engine.FALSE/TRUE), restated here because this
# package must not import that module.
FALSE = 0
TRUE = 1


class WitnessSampler:
    """Draws distinct concrete packets from a symbolic packet set."""

    def __init__(self, engine, encoding, seed: int = 0) -> None:
        self._engine = engine
        self._encoding = encoding
        self._rng = random.Random(seed)

    # -- assignments -------------------------------------------------------

    def _field_bits(self) -> List[Tuple[str, int, int]]:
        """(field, base var, width) for every encoded header field."""
        return [
            (name, self._encoding.field_base(name),
             self._encoding.width_of(name))
            for name in self._encoding.fields
        ]

    def _concretize(
        self, assignment: Dict[int, bool], fill_zero: bool
    ) -> Dict[int, bool]:
        """Pin every header variable (metadata bits stay free)."""
        point = {}
        for _name, base, width in self._field_bits():
            for i in range(width):
                var = base + i
                if var in assignment:
                    point[var] = assignment[var]
                elif fill_zero:
                    point[var] = False
                else:
                    point[var] = bool(self._rng.getrandbits(1))
        return point

    def _to_packet(self, point: Dict[int, bool]) -> ConcretePacket:
        values = {"dst": 0, "src": 0, "proto": 0, "sport": 0, "dport": 0}
        for name, base, width in self._field_bits():
            value = 0
            for i in range(width):
                if point.get(base + i):
                    value |= 1 << (width - 1 - i)
            values[name] = value
        return ConcretePacket(width=self._encoding.address_bits, **values)

    # -- packet draws -----------------------------------------------------

    def packets(self, bdd: int, count: int) -> List[ConcretePacket]:
        """Up to ``count`` distinct packets satisfying ``bdd``."""
        engine = self._engine
        packets: List[ConcretePacket] = []
        remaining = bdd
        for index in range(count):
            assignment = engine.any_sat(remaining)
            if assignment is None:
                break
            point = self._concretize(assignment, fill_zero=(index == 0))
            packets.append(self._to_packet(point))
            remaining = engine.diff(remaining, engine.cube(point))
        return packets

    def near_miss_packets(
        self, bdd: int, count: int, universe: int = TRUE
    ) -> List[ConcretePacket]:
        """Packets in ``universe`` that do *not* satisfy ``bdd``."""
        return self.packets(self._engine.diff(universe, bdd), count)

    def _header_cube(self, packet: ConcretePacket) -> int:
        point = {}
        for _name, base, width in self._field_bits():
            value = getattr(packet, _name)
            for i in range(width):
                point[base + i] = bool((value >> (width - 1 - i)) & 1)
        return self._engine.cube(point)

    def contains(self, bdd: int, packet: ConcretePacket) -> bool:
        """Whether a concrete packet lies in a symbolic set (used to
        cross-check a walker finding against the symbolic verdict)."""
        cube = self._header_cube(packet)
        return self._engine.diff(cube, bdd) == FALSE

    def intersects(self, bdd: int, packet: ConcretePacket) -> bool:
        """Whether the set contains the packet under *some* metadata
        assignment — the existential reading needed when ``bdd``
        constrains waypoint bits the packet does not carry."""
        cube = self._header_cube(packet)
        return self._engine.and_(cube, bdd) != FALSE
