"""Plain-text tables for the benchmark harness and EXPERIMENTS.md.

Every figure-reproduction benchmark prints one of these tables with the
same rows/series the paper plots, so `pytest benchmarks/ --benchmark-only`
output doubles as the experiment record.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    materialized: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    for row in materialized:
        parts.append(line(row))
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if value is None:
        return "-"
    return str(value)


def format_bytes(value: int) -> str:
    """Human-readable modeled memory (MB at our scale)."""
    return f"{value / (1 << 20):.1f}MB"


def format_status(status: str) -> str:
    """Render a run status the way the paper's figures mark failures."""
    return {"ok": "ok", "oom": "OOM", "bdd-overflow": "OVF", "timeout": "T/O"}.get(
        status, status
    )
