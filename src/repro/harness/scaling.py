"""Scaled topology registry: mapping the paper's sizes to laptop scale.

The paper sweeps FatTree40–FatTree90 (2000–10125 switches) on 100 GB
logical servers.  The benchmarks sweep k ∈ {4, 6, 8, 10} by default and
scale the modeled worker capacity with the route count, so the OOM
crossovers land at the same *relative* sweep positions as the paper's
(Batfish dies at the second size, S2 w/o sharding at the top size, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config.loader import Snapshot
from ..dist.resources import CostModel
from ..net.fattree import FatTreeSpec, build_fattree

#: The paper's sweep, smallest to largest.
PAPER_SIZES = (40, 50, 60, 70, 80, 90)

#: The default scaled sweep: k here plays the role of the same-index
#: paper size (4↔FatTree40, 6↔FatTree50, 8↔FatTree60, 10↔FatTree70, ...).
SCALED_SIZES = (4, 6, 8, 10, 12, 14)


@dataclass(frozen=True)
class ScaledSize:
    """One sweep point: the scaled k and its paper analogue."""

    k: int
    paper_k: int

    @property
    def label(self) -> str:
        return f"FatTree{self.paper_k} (k={self.k})"

    @property
    def num_switches(self) -> int:
        return FatTreeSpec(k=self.k).num_switches

    @property
    def paper_switches(self) -> int:
        return FatTreeSpec(k=self.paper_k).num_switches


def sweep(count: int = 4) -> List[ScaledSize]:
    """The first ``count`` sweep points (benchmarks default to 4)."""
    return [
        ScaledSize(k=k, paper_k=p)
        for k, p in zip(SCALED_SIZES[:count], PAPER_SIZES[:count])
    ]


def fattree_routes_estimate(k: int) -> int:
    """Total-route estimate for a k-pod FatTree (§2.2: quadratic-ish)."""
    spec = FatTreeSpec(k=k)
    return spec.estimated_total_routes()


_PEAK_CACHE: Dict[int, int] = {}


def measured_single_server_peak(k: int) -> int:
    """Measured peak modeled memory of one unsharded single-server
    control-plane run on FatTree ``k`` (cached per process)."""
    cached = _PEAK_CACHE.get(k)
    if cached is not None:
        return cached
    from ..baselines.batfish import BatfishVerifier  # local: avoid a cycle

    verifier = BatfishVerifier(build_fattree(k), enforce_memory=False)
    verifier.run_control_plane()
    peak = verifier.resources.peak_bytes
    _PEAK_CACHE[k] = peak
    return peak


def capacity_for_sweep(
    reference_k: int,
    sweep_sizes: Tuple[int, ...] = (),
    model: Optional[CostModel] = None,
    headroom: float = 1.35,
) -> int:
    """A capacity calibrated so one server "just fits" the unsharded
    ``reference_k`` FatTree — anything meaningfully larger OOMs, like the
    paper's 100 GB ceiling does between FatTree40 and FatTree50.

    The reference peak is *measured* (one quick control-plane run with
    memory enforcement off), so the calibration self-adjusts if the cost
    model changes.  ``headroom`` leaves the reference size margin.
    """
    del sweep_sizes, model  # calibration is measurement-based
    return int(measured_single_server_peak(reference_k) * headroom)


def build_scaled(size: ScaledSize, **kwargs) -> Snapshot:
    snapshot = build_fattree(size.k, **kwargs)
    snapshot.metadata["paper_k"] = str(size.paper_k)
    return snapshot
