"""Experiment runners: one function per paper figure (§5).

Each ``run_figN_*`` function executes the experiment at the scaled sizes,
returns structured rows, and is called both by ``benchmarks/bench_figN_*``
(which also times a representative slice under pytest-benchmark) and by
``examples/run_all_experiments.py`` (which regenerates EXPERIMENTS.md).

Environment knob: ``S2_BENCH_SIZES`` (comma-separated k values) widens or
narrows the FatTree sweep without touching code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.batfish import BatfishVerifier
from ..baselines.bonsai import BonsaiTimeout, BonsaiVerifier
from ..config.loader import Snapshot
from ..core.s2 import S2Verifier, VerificationResult, verify_snapshot
from ..dataplane.queries import Query
from ..obs.tracer import stopwatch
from ..dist.controller import S2Options
from ..dist.resources import CostModel, SimulatedOOM
from ..net.dcn import build_dcn
from ..net.fattree import FatTreeSpec, build_fattree
from .scaling import PAPER_SIZES, SCALED_SIZES, capacity_for_sweep


def sweep_sizes(default_count: int = 3) -> List[Tuple[int, int]]:
    """(scaled k, paper k) pairs, honoring ``S2_BENCH_SIZES``."""
    env = os.environ.get("S2_BENCH_SIZES")
    if env:
        ks = [int(v) for v in env.split(",") if v.strip()]
    else:
        ks = list(SCALED_SIZES[:default_count])
    pairs = []
    for k in ks:
        try:
            index = SCALED_SIZES.index(k)
            paper = PAPER_SIZES[index]
        except ValueError:
            paper = 10 * k  # off-registry sizes keep the 10x naming rule
        pairs.append((k, paper))
    return pairs


@dataclass
class ExperimentRow:
    """One measured configuration: a point on a paper figure."""

    experiment: str
    series: str                   # e.g. "batfish", "s2-16w"
    workload: str                 # e.g. "FatTree60 (k=8)"
    status: str = "ok"
    modeled_time: float = 0.0
    peak_memory: int = 0
    wall_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    def as_cells(self) -> List[object]:
        return [
            self.series,
            self.workload,
            self.status,
            round(self.modeled_time, 1),
            f"{self.peak_memory / (1 << 20):.1f}MB",
            round(self.wall_seconds, 2),
        ]


ROW_HEADERS = ["series", "workload", "status", "modeled-time", "peak-mem", "wall-s"]


# -- shared runners ---------------------------------------------------------


def run_s2(
    snapshot: Snapshot,
    workers: int,
    shards: int,
    capacity: int,
    label: str,
    workload: str,
    scheme: str = "metis",
    runtime: str = "sequential",
    query: Optional[Query] = None,
    cp_only: bool = False,
    cost_model: Optional[CostModel] = None,
) -> Tuple[ExperimentRow, VerificationResult]:
    options = S2Options(
        num_workers=workers,
        num_shards=shards,
        worker_capacity=capacity,
        partition_scheme=scheme,
        runtime=runtime,
        cost_model=cost_model or CostModel(),
    )
    if cp_only:
        result = _run_s2_cp_only(snapshot, options)
    else:
        result = verify_snapshot(snapshot, options, query=query)
    row = ExperimentRow(
        experiment="",
        series=label,
        workload=workload,
        status=result.status,
        modeled_time=result.modeled_time,
        peak_memory=result.peak_worker_bytes,
        wall_seconds=result.wall_seconds,
    )
    if result.cp_stats:
        row.extra["cp_modeled"] = result.cp_stats.modeled_wall_time
        row.extra["bgp_rounds"] = result.cp_stats.bgp_rounds
    if result.dp_stats:
        row.extra["dp_modeled"] = result.dp_stats.modeled_total
    row.extra["routes"] = result.total_routes
    return row, result


def _run_s2_cp_only(
    snapshot: Snapshot, options: S2Options
) -> VerificationResult:
    """Control-plane simulation only (Figures 8 and 9 time "simulate")."""
    result = VerificationResult(
        status="ok",
        snapshot_name=snapshot.name,
        num_workers=options.num_workers,
        num_shards=max(1, options.num_shards),
    )
    with stopwatch() as clock, S2Verifier(snapshot, options) as verifier:
        try:
            result.cp_stats = verifier.run_control_plane()
            result.total_routes = verifier.controller.total_route_count()
        except SimulatedOOM as exc:
            result.status = "oom"
            result.error = str(exc)
        result.wall_seconds = clock.seconds
        result.report = verifier.controller.report()
        result.peak_worker_bytes = result.report.peak_worker_bytes
        result.modeled_time = (
            result.cp_stats.modeled_wall_time if result.cp_stats else 0.0
        )
    return result


def run_batfish(
    snapshot: Snapshot,
    capacity: int,
    workload: str,
    num_shards: int = 0,
    label: str = "batfish",
) -> ExperimentRow:
    clock = stopwatch()
    verifier = BatfishVerifier(
        snapshot, num_shards=num_shards, capacity=capacity
    )
    row = ExperimentRow(experiment="", series=label, workload=workload)
    try:
        verifier.all_pair_reachability()
        row.modeled_time = verifier.stats.modeled_total
        row.extra["routes"] = verifier.total_route_count()
        row.extra["cp_modeled"] = verifier.stats.cp_modeled_time
        row.extra["dp_modeled"] = (
            verifier.stats.dp_predicate_modeled_time
            + verifier.stats.dp_forward_modeled_time
        )
    except SimulatedOOM as exc:
        row.status = "oom"
        row.extra["error"] = str(exc)
        row.modeled_time = verifier.stats.modeled_total
    row.peak_memory = verifier.resources.peak_bytes
    row.wall_seconds = clock.seconds
    return row


def run_bonsai(
    snapshot: Snapshot,
    capacity: int,
    workload: str,
    time_budget: Optional[float] = None,
) -> ExperimentRow:
    clock = stopwatch()
    verifier = BonsaiVerifier(
        snapshot, capacity=capacity, time_budget=time_budget
    )
    row = ExperimentRow(experiment="", series="bonsai", workload=workload)
    try:
        results = verifier.check_all_destinations()
        row.extra["destinations"] = len(results)
        row.extra["reachable"] = sum(results.values())
    except BonsaiTimeout as exc:
        row.status = "timeout"
        row.extra["error"] = str(exc)
    except SimulatedOOM as exc:
        row.status = "oom"
        row.extra["error"] = str(exc)
    row.modeled_time = verifier.stats.modeled_total
    row.peak_memory = verifier.resources.peak_bytes
    row.wall_seconds = clock.seconds
    return row


# -- figure experiments -------------------------------------------------------


def run_fig4_real_dcn(scale: int = 1, workers: int = 4) -> List[ExperimentRow]:
    """Figure 4: the real-DCN substitute under four configurations."""
    snapshot = build_dcn(scale=scale)
    workload = f"DCN x{scale} ({len(snapshot)} sw)"
    # Calibrate the "100 GB" ceiling between the sharded and unsharded
    # peaks, so — matching Fig 4 — vanilla Batfish OOMs while Batfish
    # with prefix sharding squeezes through near the limit.
    vanilla = BatfishVerifier(snapshot, enforce_memory=False)
    vanilla.all_pair_reachability()
    vanilla_peak = vanilla.resources.peak_bytes
    sharded = BatfishVerifier(
        build_dcn(scale=scale), num_shards=20, enforce_memory=False
    )
    sharded.all_pair_reachability()
    sharded_peak = sharded.resources.peak_bytes
    capacity = (vanilla_peak + sharded_peak) // 2
    rows = [
        run_batfish(snapshot, capacity, workload, num_shards=0),
        run_batfish(
            snapshot, capacity, workload, num_shards=20,
            label="batfish+sharding",
        ),
    ]
    row, _ = run_s2(
        build_dcn(scale=scale), workers, 0, capacity, "s2-nosharding", workload
    )
    rows.append(row)
    row, _ = run_s2(
        build_dcn(scale=scale), workers, 20, capacity, "s2", workload
    )
    rows.append(row)
    for row in rows:
        row.experiment = "fig4"
    return rows


def run_fig5_fattree_scaling(
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[ExperimentRow]:
    """Figure 5: Batfish vs Bonsai vs S2×{1,8,16} across FatTree sizes."""
    sizes = list(sizes or sweep_sizes())
    # One logical server just fits the smallest size without sharding.
    capacity = capacity_for_sweep(sizes[0][0], tuple(k for k, _ in sizes))
    bonsai_budget = None
    rows: List[ExperimentRow] = []
    for index, (k, paper_k) in enumerate(sizes):
        workload = f"FatTree{paper_k} (k={k})"
        snapshot = build_fattree(k)
        rows.append(run_batfish(snapshot, capacity, workload))
        if bonsai_budget is None:
            # Bonsai's total cost grows ~k^5 (destinations x topology scan);
            # a budget of 120x its smallest-size cost puts the timeout at
            # the 5th sweep position, where Fig 5 has it (FatTree80).
            probe = BonsaiVerifier(build_fattree(sizes[0][0]), capacity=capacity)
            probe.check_all_destinations()
            bonsai_budget = probe.stats.modeled_total * 120
        rows.append(
            run_bonsai(
                build_fattree(k), capacity, workload, time_budget=bonsai_budget
            )
        )
        for workers in (1, 8, 16):
            row, _ = run_s2(
                build_fattree(k),
                workers,
                20,
                capacity,
                f"s2-{workers}w",
                workload,
            )
            rows.append(row)
    for row in rows:
        row.experiment = "fig5"
    return rows


def run_fig6_scale_out(
    k: int = 8, worker_counts: Sequence[int] = (1, 2, 4, 8, 12, 16)
) -> List[ExperimentRow]:
    """Figure 6: fixed FatTree (the FatTree60 analogue), 1..16 workers."""
    capacity = capacity_for_sweep(k, (k,), headroom=8.0)
    rows = []
    paper_k = PAPER_SIZES[SCALED_SIZES.index(k)] if k in SCALED_SIZES else 10 * k
    workload = f"FatTree{paper_k} (k={k})"
    for workers in worker_counts:
        row, _ = run_s2(
            build_fattree(k), workers, 20, capacity, f"{workers}w", workload
        )
        row.experiment = "fig6"
        rows.append(row)
    return rows


def run_fig7_partition_schemes(
    k: int = 8, workers: int = 8, include_dcn: bool = True
) -> List[ExperimentRow]:
    """Figure 7: random/expert/metis (+ the two adversarial extremes)."""
    rows: List[ExperimentRow] = []
    capacity = capacity_for_sweep(k, (k,), headroom=8.0)
    workloads = [(f"FatTree (k={k})", build_fattree)]
    if include_dcn:
        workloads.append(("DCN x1", lambda _k: build_dcn(scale=1)))
    for workload, builder in workloads:
        for scheme in ("random", "expert", "metis", "imbalanced", "commheavy"):
            row, result = run_s2(
                builder(k), workers, 20, capacity, scheme, workload,
                scheme=scheme,
            )
            row.experiment = "fig7"
            if result.cp_stats:
                row.extra["cp_modeled"] = result.cp_stats.modeled_wall_time
            if result.dp_stats:
                row.extra["dp_modeled"] = result.dp_stats.modeled_total
            if result.report:
                row.extra["rpc_bytes"] = result.report.total_rpc_bytes
            rows.append(row)
    return rows


def run_fig8_sharding_necessity(
    sizes: Optional[Sequence[Tuple[int, int]]] = None, workers: int = 4
) -> List[ExperimentRow]:
    """Figure 8: sharding on/off across sizes; off OOMs at the top size."""
    sizes = list(sizes or sweep_sizes())
    # Calibrate against measured *per-worker* unsharded peaks so the
    # largest size OOMs without sharding while the second-largest just
    # fits — mirroring Fig 8 where only FatTree90 requires sharding.
    peaks = []
    for k, _paper_k in sizes[-2:]:
        probe, _ = run_s2(
            build_fattree(k), workers, 0, 1 << 62, "probe", "probe",
            cp_only=True,
        )
        peaks.append(probe.peak_memory)
    capacity = (
        (peaks[-1] + peaks[-2]) // 2 if len(peaks) > 1 else peaks[0] * 2
    )
    rows = []
    for k, paper_k in sizes:
        workload = f"FatTree{paper_k} (k={k})"
        for shards, label in ((0, "no-sharding"), (20, "sharding")):
            row, _ = run_s2(
                build_fattree(k), workers, shards, capacity, label, workload,
                cp_only=True,
            )
            row.experiment = "fig8"
            rows.append(row)
    return rows


def run_fig9_shard_count(
    k: int = 8,
    workers: int = 4,
    shard_counts: Sequence[int] = (1, 2, 5, 10, 15, 20, 25, 30, 40),
) -> List[ExperimentRow]:
    """Figure 9: shard-count sweep — memory falls, time is U-shaped."""
    # Calibrate the capacity just above the unsharded per-worker peak, so
    # low shard counts run deep in GC territory (the paper's "memory
    # insufficient" regime) and higher counts escape it.
    probe, _ = run_s2(
        build_fattree(k), workers, 0, 1 << 62, "probe", "probe", cp_only=True
    )
    capacity = int(probe.peak_memory * 1.05)
    rows = []
    for shards in shard_counts:
        row, _ = run_s2(
            build_fattree(k),
            workers,
            shards,
            capacity,
            f"{shards}-shards",
            f"FatTree (k={k})",
            cp_only=True,
        )
        row.experiment = "fig9"
        row.extra["shards"] = shards
        rows.append(row)
    return rows


def run_fig10_dpv(
    sizes: Optional[Sequence[Tuple[int, int]]] = None, workers: int = 8
) -> List[ExperimentRow]:
    """Figure 10: all-pair and single-pair DPV, Batfish vs S2, split into
    the predicate-computation and forwarding phases."""
    sizes = list(sizes or sweep_sizes())
    rows: List[ExperimentRow] = []
    for k, paper_k in sizes:
        workload = f"FatTree{paper_k} (k={k})"
        edges = sorted(
            n for n in build_fattree(k).configs if n.startswith("edge-")
        )
        all_pair = Query(sources=tuple(edges), destinations=tuple(edges))
        single = Query.single_pair(edges[0], edges[-1])
        # Fresh instances per query so the second measurement does not run
        # against the first one's warm BDD operation caches.
        for query, phase_key, wall_key in (
            (all_pair, "phase_forward_allpair", "allpair_wall"),
            (single, "phase_forward_singlepair", "single_wall"),
        ):
            # Batfish (sharded CP so FIB generation succeeds, §5.8).
            verifier = BatfishVerifier(
                build_fattree(k), num_shards=20, enforce_memory=False
            )
            checker = verifier.checker()
            with stopwatch() as clock:
                checker.check_reachability(query)
            wall = clock.seconds
            _record_fig10(
                rows,
                "batfish",
                workload,
                phase_key,
                wall_key,
                predicates=verifier.stats.dp_predicate_modeled_time,
                forward=verifier.stats.dp_forward_modeled_time,
                peak=verifier.resources.peak_bytes,
                wall=wall,
            )
            # S2 distributed DPV.
            s2 = S2Verifier(
                build_fattree(k),
                S2Options(
                    num_workers=workers,
                    num_shards=20,
                    worker_capacity=1 << 62,
                ),
            )
            try:
                s2.run_control_plane()
                s2_checker = s2.controller.checker()
                dp = s2.controller.dpo.stats
                with stopwatch() as clock:
                    s2_checker.check_reachability(query)
                wall = clock.seconds
                _record_fig10(
                    rows,
                    f"s2-{workers}w",
                    workload,
                    phase_key,
                    wall_key,
                    predicates=dp.predicate_modeled_time,
                    forward=dp.forward_modeled_time,
                    peak=s2.controller.report().peak_worker_bytes,
                    wall=wall,
                )
            finally:
                s2.close()
    return rows


def _record_fig10(
    rows: List[ExperimentRow],
    series: str,
    workload: str,
    phase_key: str,
    wall_key: str,
    predicates: float,
    forward: float,
    peak: int,
    wall: float,
) -> None:
    """Merge one (series, workload) measurement into the fig10 rows."""
    for row in rows:
        if row.series == series and row.workload == workload:
            row.extra[phase_key] = forward
            row.extra[wall_key] = wall
            return
    rows.append(
        ExperimentRow(
            experiment="fig10",
            series=series,
            workload=workload,
            modeled_time=predicates + forward,
            peak_memory=peak,
            wall_seconds=wall,
            extra={
                "phase_predicates": predicates,
                phase_key: forward,
                wall_key: wall,
            },
        )
    )
