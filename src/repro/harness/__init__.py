"""Experiment harness: scaled sizes, per-figure runners, table output."""

from .experiments import (  # noqa: F401
    ROW_HEADERS,
    ExperimentRow,
    run_batfish,
    run_bonsai,
    run_fig4_real_dcn,
    run_fig5_fattree_scaling,
    run_fig6_scale_out,
    run_fig7_partition_schemes,
    run_fig8_sharding_necessity,
    run_fig9_shard_count,
    run_fig10_dpv,
    run_s2,
    sweep_sizes,
)
from .reporting import format_bytes, format_status, format_table  # noqa: F401
from .scaling import (  # noqa: F401
    PAPER_SIZES,
    SCALED_SIZES,
    ScaledSize,
    capacity_for_sweep,
    sweep,
)
