"""S2: a distributed configuration verifier for hyper-scale networks.

Reproduction of Wang et al., SIGCOMM 2025.  The top level re-exports the
public API; the subpackages are:

- :mod:`repro.net`        IPv4/topology primitives + FatTree/DCN synthesizers
- :mod:`repro.config`     vendor parsers and the vendor-independent model
- :mod:`repro.routing`    BGP/OSPF switch models and the fixed-point engine
- :mod:`repro.bdd`        BDD engine, serialization, header encoding
- :mod:`repro.dataplane`  FIBs, predicates, symbolic forwarding, queries
- :mod:`repro.dist`       the S2 framework: controller/workers/sidecars,
  partitioning, prefix sharding, orchestrators, resource model
- :mod:`repro.core`       the :class:`S2Verifier` facade
- :mod:`repro.baselines`  Batfish and Bonsai comparison verifiers
- :mod:`repro.harness`    experiment runner used by ``benchmarks/``
"""

__version__ = "1.0.0"

from .core.s2 import S2Verifier, VerificationResult, verify_snapshot  # noqa: F401
from .dataplane.queries import Query  # noqa: F401
from .dist.controller import S2Options  # noqa: F401
from .dist.faults import FaultPlan, FaultSpec, RetryPolicy  # noqa: F401
from .net.ip import Prefix  # noqa: F401
