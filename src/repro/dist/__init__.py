"""The S2 distributed verification framework (the paper's contribution)."""

from .controller import (  # noqa: F401
    S2Controller,
    S2Options,
    WorkerSupervisor,
    options_fingerprint,
)
from .cpo import ControlPlaneOrchestrator, ControlPlaneStats  # noqa: F401
from .dpo import DataPlaneOrchestrator, DataPlaneStats  # noqa: F401
from .faults import (  # noqa: F401
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
    RespawnError,
    RetryPolicy,
    TransientRpcError,
    WorkerDiedError,
    WorkerFailure,
    WorkerTimeoutError,
)
from .message import PacketBatch, PacketEnvelope, RouteBatch, measured_size  # noqa: F401
from .partition import SCHEMES, PartitionResult, estimate_loads, partition  # noqa: F401
from .resources import (  # noqa: F401
    DEFAULT_WORKER_CAPACITY,
    ClusterReport,
    CostModel,
    SimulatedOOM,
    WorkerResources,
)
from .runtime import Runtime, SequentialRuntime, ThreadedRuntime, make_runtime  # noqa: F401
from .sharding import (  # noqa: F401
    Dpdg,
    PrefixShard,
    build_dpdg,
    make_shards,
    pack_components,
    validate_shards,
)
from .sidecar import Sidecar  # noqa: F401
from .storage import CorruptShardError, RouteStore, RunManifest  # noqa: F401
from .worker import ShadowNode, Worker  # noqa: F401
