"""Process-backed workers: real scale-out on one machine.

The in-process runtimes exercise S2's algorithms; this module runs each
worker in its **own OS process**, connected to the controller by a pipe —
the closest a single machine gets to the paper's deployment (one JVM per
logical server, gRPC sidecars).  Phases execute with true parallelism:
the controller issues a phase to every worker through a thread pool, each
thread blocks on its pipe (releasing the GIL) while the worker processes
compute concurrently.

Design notes:

* :class:`WorkerProcessProxy` mirrors the :class:`~repro.dist.worker.Worker`
  surface the orchestrators and sidecars use, so the CPO/DPO code is the
  same for in-process and process-backed clusters.
* Resource accounting stays controller-side: the remote worker enforces
  its memory ceiling (raising :class:`SimulatedOOM` in situ, relayed back
  and re-raised by the proxy) and returns work counts; the proxy's local
  :class:`WorkerResources` mirror is charged by the orchestrators exactly
  as for in-process workers.
* Shard results are flushed to the shared on-disk
  :class:`~repro.dist.storage.RouteStore` *by the worker process*, so
  converged RIBs never transit the control pipe (matching §3.1's
  write-to-persistent-storage step).
* Processes are forked before any thread exists and are shut down (or
  killed after a grace period) by :meth:`ProcessWorkerPool.close`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..bdd.engine import BddOverflowError
from ..bdd.headerspace import HeaderEncoding
from ..config.loader import Snapshot
from .resources import SimulatedOOM, WorkerResources
from .sharding import PrefixShard
from .storage import RouteStore
from .worker import PullOutcome, Worker

_RELAYED_EXCEPTIONS = {
    "SimulatedOOM": SimulatedOOM,
    "BddOverflowError": BddOverflowError,
}


class RemoteWorkerError(RuntimeError):
    """An unexpected exception inside a worker process."""


def _worker_main(
    connection,
    worker_id: int,
    snapshot: Snapshot,
    assignment: Dict[str, int],
    capacity: int,
    cost_model,
    max_hops: int,
) -> None:
    """The worker process service loop: execute commands off the pipe."""
    resources = WorkerResources(
        name=f"worker{worker_id}", capacity=capacity, model=cost_model
    )
    worker = Worker(
        worker_id=worker_id,
        snapshot=snapshot,
        assignment=assignment,
        resources=resources,
        max_hops=max_hops,
    )
    stores: Dict[str, RouteStore] = {}

    def store_for(directory: str) -> RouteStore:
        if directory not in stores:
            stores[directory] = RouteStore(directory)
        return stores[directory]

    while True:
        try:
            command, args = connection.recv()
        except EOFError:
            break
        if command == "stop":
            connection.send(("ok", None))
            break
        try:
            if command == "flush_shard":
                directory, shard_index = args
                shard_routes = worker.finish_shard()
                written = store_for(directory).write_shard(
                    worker_id, shard_index, shard_routes
                )
                selected = sum(
                    len(routes)
                    for node_routes in shard_routes.values()
                    for routes in node_routes.values()
                )
                result = (written, selected)
            elif command == "build_dataplane":
                directory, encoding, node_limit = args
                from ..dataplane.fib import NextHopResolver

                resolver = NextHopResolver.from_snapshot(snapshot)
                result = worker.build_dataplane(
                    store_for(directory), resolver, encoding, node_limit
                )
            elif command == "merged_routes":
                (directory,) = args
                result = store_for(directory).merged_routes(worker_id)
            elif command == "pending_packets":
                result = worker.pending_packets
            else:
                result = getattr(worker, command)(*args)
            # PullOutcome travels fine; attach fresh memory telemetry so
            # the proxy mirror can track the peak without extra round
            # trips.
            telemetry = (
                resources.current_bytes,
                resources.peak_bytes,
                resources.candidate_routes,
                resources.bdd_nodes,
                resources.fib_entries,
                resources.oom,
            )
            connection.send(("ok", (result, telemetry)))
        except Exception as exc:  # noqa: BLE001 — relayed to the controller
            connection.send(
                (
                    "exc",
                    (
                        type(exc).__name__,
                        str(exc),
                        traceback.format_exc(),
                    ),
                )
            )
    connection.close()


class WorkerProcessProxy:
    """Controller-side handle for one worker process.

    Exposes the Worker methods the orchestrators and sidecars call; each
    call is one request/response on the pipe.  The proxy keeps a local
    :class:`WorkerResources` mirror for the cost model.
    """

    def __init__(
        self,
        worker_id: int,
        connection,
        process,
        resources: WorkerResources,
    ) -> None:
        self.worker_id = worker_id
        self.resources = resources
        self._connection = connection
        self._process = process
        # One in-flight request per pipe: phases call one method per
        # worker concurrently, and sidecar deliveries interleave.
        self._lock = threading.Lock()

    # -- plumbing ---------------------------------------------------------

    def _call(self, command: str, *args) -> Any:
        with self._lock:
            self._connection.send((command, args))
            status, payload = self._connection.recv()
        if status == "exc":
            name, message, trace = payload
            exc_type = _RELAYED_EXCEPTIONS.get(name)
            if exc_type is SimulatedOOM:
                self.resources.oom = True
                raise SimulatedOOM(
                    self.resources.name,
                    self.resources.current_bytes,
                    self.resources.capacity,
                )
            if exc_type is not None:
                raise exc_type(message)
            raise RemoteWorkerError(f"{name}: {message}\n{trace}")
        result, telemetry = payload
        (
            self.resources.current_bytes,
            peak,
            self.resources.candidate_routes,
            self.resources.bdd_nodes,
            self.resources.fib_entries,
            oom,
        ) = telemetry
        self.resources.peak_bytes = max(self.resources.peak_bytes, peak)
        self.resources.oom = self.resources.oom or oom
        return result

    # -- control plane ---------------------------------------------------------

    def begin_shard(self, shard: Optional[PrefixShard]) -> None:
        self._call("begin_shard", shard)

    def compute_exports(self, round_token: int):
        return self._call("compute_exports", round_token)

    def deliver_routes(self, batch) -> None:
        self._call("deliver_routes", batch)

    def pull_round(self, round_token: int) -> PullOutcome:
        return self._call("pull_round", round_token)

    def update_memory(self, enforce: bool = True) -> int:
        return self._call("update_memory", enforce)

    def observed_dependencies(self) -> set:
        return self._call("observed_dependencies")

    def flush_shard(self, store: RouteStore, shard_index: int) -> Tuple[int, int]:
        """Flush the converged shard to the shared store, worker-side."""
        return self._call("flush_shard", store.directory, shard_index)

    # -- OSPF -----------------------------------------------------------------------

    def has_ospf(self) -> bool:
        return self._call("has_ospf")

    def compute_ospf_exports(self):
        return self._call("compute_ospf_exports")

    def pull_ospf_round(self) -> bool:
        return self._call("pull_ospf_round")

    def install_ospf_routes(self) -> None:
        self._call("install_ospf_routes")

    # -- data plane ------------------------------------------------------------------

    def build_dataplane(
        self,
        store: RouteStore,
        resolver,
        encoding: HeaderEncoding,
        node_limit: int = 1 << 24,
    ) -> int:
        del resolver  # rebuilt worker-side from the snapshot
        return self._call(
            "build_dataplane", store.directory, encoding, node_limit
        )

    def set_waypoint_bit(self, node: str, metadata_index: int) -> None:
        self._call("set_waypoint_bit", node, metadata_index)

    def clear_waypoints(self) -> None:
        self._call("clear_waypoints")

    def inject_header(self, sources, header_payload, trace: bool) -> None:
        self._call("inject_header", sources, header_payload, trace)

    def deliver_packets(self, batch) -> None:
        self._call("deliver_packets", batch)

    def drain(self):
        return self._call("drain")

    def collect_finals(self):
        return self._call("collect_finals")

    def reset_dataplane_run(self) -> None:
        self._call("reset_dataplane_run")

    @property
    def pending_packets(self) -> int:
        return self._call("pending_packets")

    # -- lifecycle --------------------------------------------------------------------

    def stop(self, timeout: float = 5.0) -> None:
        try:
            with self._lock:
                self._connection.send(("stop", ()))
                self._connection.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
        self._connection.close()


class ProcessWorkerPool:
    """Spawns one process per worker and hands out proxies."""

    def __init__(
        self,
        snapshot: Snapshot,
        assignment: Dict[str, int],
        num_workers: int,
        capacity: int,
        cost_model,
        max_hops: int = 24,
    ) -> None:
        context = mp.get_context("fork" if os.name == "posix" else "spawn")
        self.proxies: List[WorkerProcessProxy] = []
        for worker_id in range(num_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    worker_id,
                    snapshot,
                    assignment,
                    capacity,
                    cost_model,
                    max_hops,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.proxies.append(
                WorkerProcessProxy(
                    worker_id,
                    parent_conn,
                    process,
                    WorkerResources(
                        name=f"worker{worker_id}",
                        capacity=capacity,
                        model=cost_model,
                    ),
                )
            )

    def close(self) -> None:
        for proxy in self.proxies:
            proxy.stop()
