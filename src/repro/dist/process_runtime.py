"""Process-backed workers: real scale-out on one machine.

The in-process runtimes exercise S2's algorithms; this module runs each
worker in its **own OS process**, connected to the controller by a pipe —
the closest a single machine gets to the paper's deployment (one JVM per
logical server, gRPC sidecars).  Phases execute with true parallelism:
the controller issues a phase to every worker through a thread pool, each
thread blocks on its pipe (releasing the GIL) while the worker processes
compute concurrently.

Design notes:

* :class:`WorkerProcessProxy` mirrors the :class:`~repro.dist.worker.Worker`
  surface the orchestrators and sidecars use, so the CPO/DPO code is the
  same for in-process and process-backed clusters.
* Resource accounting stays controller-side: the remote worker enforces
  its memory ceiling (raising :class:`SimulatedOOM` in situ, relayed back
  and re-raised by the proxy) and returns work counts; the proxy's local
  :class:`WorkerResources` mirror is charged by the orchestrators exactly
  as for in-process workers.
* Shard results are flushed to the shared on-disk
  :class:`~repro.dist.storage.RouteStore` *by the worker process*, so
  converged RIBs never transit the control pipe (matching §3.1's
  write-to-persistent-storage step).
* **Supervision**: every proxy call runs under a configurable timeout and
  an exponential-backoff retry loop for transient RPC faults; a pipe
  EOF, a dead process, or a timeout surfaces as a
  :class:`~repro.dist.faults.WorkerFailure` the orchestrators recover
  from (respawn + shard replay).  A proxy whose call timed out is
  *poisoned* — its pipe may hold a stale response — until
  :meth:`WorkerProcessProxy.revive` gives it a fresh process.
* Processes are forked before any thread exists and are shut down (or
  terminated, then killed, after a grace period) by
  :meth:`ProcessWorkerPool.close`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..bdd.engine import BddOverflowError
from ..bdd.headerspace import HeaderEncoding
from ..config.loader import Snapshot
from ..obs.tracer import NULL_TRACER, Tracer
from .faults import (
    FaultPlan,
    RespawnError,
    RetryPolicy,
    StaleEpochError,
    TransientRpcError,
    WorkerDiedError,
    WorkerFailure,
    WorkerTimeoutError,
)
from .resources import SimulatedOOM, WorkerResources
from .service import WorkerService
from .sharding import PrefixShard
from .storage import RouteStore
from .transport import (
    RpcTimeoutError,
    TransportError,
    mapped_transport_errors,
)
from .worker import PullOutcome

_RELAYED_EXCEPTIONS = {
    "SimulatedOOM": SimulatedOOM,
    "BddOverflowError": BddOverflowError,
    # Epoch-fence rejections must keep their type across the wire: the
    # supervisor counts them and re-seeds the epoch on recovery.
    "StaleEpochError": StaleEpochError,
}


class RemoteWorkerError(WorkerFailure):
    """An unexpected exception inside a worker process."""


class ProxyCallFuture:
    """Result handle for a pipelined proxy call (see ``call_nowait``).

    ``result()`` blocks until the call completes and then returns its
    value or re-raises its failure — the same outcome the equivalent
    blocking call would have produced, just deferred.  Safe to resolve
    exactly once and to await from any thread.
    """

    __slots__ = ("_event", "_value", "_failure")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._failure: Optional[BaseException] = None

    def set_result(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def set_exception(self, failure: BaseException) -> None:
        self._failure = failure
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise RpcTimeoutError(
                f"pipelined call did not complete within {timeout}s"
            )
        if self._failure is not None:
            raise self._failure
        return self._value


def _worker_main(
    connection,
    worker_id: int,
    snapshot: Snapshot,
    assignment: Dict[str, int],
    capacity: int,
    cost_model,
    max_hops: int,
    trace_dir: Optional[str] = None,
    incarnation: int = 0,
    telemetry_interval: float = 0.0,
) -> None:
    """The worker process service loop: execute commands off the pipe."""
    service = WorkerService()
    service.configure(
        worker_id,
        snapshot,
        assignment,
        capacity,
        cost_model,
        max_hops,
        trace_dir=trace_dir,
        incarnation=incarnation,
        telemetry_interval=telemetry_interval,
    )
    while True:
        try:
            command, args, flow_id = connection.recv()
        except EOFError:
            break
        if command == "stop":
            connection.send(("ok", None))
            break
        if command == "__configure__":
            # Live reconfigure (logical respawn): the serving layer
            # rebinds a resident fleet to a new snapshot/assignment
            # without restarting processes.
            try:
                service.configure(*args)
                connection.send(("ok", (None, _telemetry(service))))
            except Exception as exc:  # noqa: BLE001 — relayed
                import traceback as _tb

                connection.send(
                    ("exc", (type(exc).__name__, str(exc), _tb.format_exc()))
                )
            continue
        connection.send(service.dispatch(command, args, flow_id))
    service.finish()
    connection.close()


def _telemetry(service: WorkerService) -> tuple:
    resources = service.resources
    return (
        resources.current_bytes,
        resources.peak_bytes,
        resources.candidate_routes,
        resources.bdd_nodes,
        resources.fib_entries,
        resources.oom,
        None,  # no streaming frame on the configure path
    )


class WorkerProcessProxy:
    """Controller-side handle for one worker process.

    Exposes the Worker methods the orchestrators and sidecars call; each
    call is one request/response on the pipe.  The proxy keeps a local
    :class:`WorkerResources` mirror for the cost model, and supervises
    the call: timeout, transient-fault retry with exponential backoff,
    and fault injection from the attached :class:`FaultPlan`.
    """

    def __init__(
        self,
        worker_id: int,
        connection,
        process,
        resources: WorkerResources,
        policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        telemetry_sink: Optional[Callable[[Dict[str, Any]], Any]] = None,
    ) -> None:
        self.worker_id = worker_id
        self.resources = resources
        self._connection = connection
        self._process = process
        self._policy = policy or RetryPolicy()
        self._fault_plan = fault_plan
        self.tracer = tracer or NULL_TRACER
        # Streaming telemetry frames piggybacked on responses are handed
        # to this callable (the controller's collector) when set.
        self.telemetry_sink = telemetry_sink
        self._flow_seq = 0
        # A timed-out pipe may deliver the stale response to the *next*
        # call; refuse further traffic until the worker is respawned.
        self._poisoned = False
        # One in-flight request per pipe: phases call one method per
        # worker concurrently, and sidecar deliveries interleave.
        self._lock = threading.Lock()
        # Pipelined calls: a lazily started per-proxy dispatch thread
        # drains a FIFO of deferred calls (see call_nowait).
        self._nowait_lock = threading.Lock()
        self._nowait_queue: Optional["queue.Queue"] = None
        self._nowait_thread: Optional[threading.Thread] = None

    # -- plumbing ---------------------------------------------------------

    def call_nowait(self, command: str, *args) -> ProxyCallFuture:
        """Issue a call without waiting; returns a future with .result().

        The pipe transport admits one in-flight request per worker, so
        pipelining here comes from a per-proxy dispatch thread draining
        a FIFO: callers enqueue and immediately regain control (the
        sidecar issues one delivery per peer and overlaps them *across*
        workers) while per-worker ordering is preserved.  The socket
        runtime overrides this with true wire pipelining inside the
        channel's in-flight window.
        """
        future = ProxyCallFuture()
        with self._nowait_lock:
            if self._nowait_thread is None or not self._nowait_thread.is_alive():
                self._nowait_queue = queue.Queue()
                self._nowait_thread = threading.Thread(
                    target=self._nowait_loop,
                    name=f"worker{self.worker_id}-nowait",
                    daemon=True,
                )
                self._nowait_thread.start()
            self._nowait_queue.put((command, args, future))
        return future

    def _nowait_loop(self) -> None:
        while True:
            command, args, future = self._nowait_queue.get()
            try:
                future.set_result(self._call(command, *args))
            except BaseException as exc:  # noqa: BLE001 — deferred raise
                future.set_exception(exc)

    def _call(self, command: str, *args) -> Any:
        attempt = 0
        while True:
            try:
                return self._call_once(command, args)
            except TransientRpcError:
                attempt += 1
                self.resources.retries += 1
                if attempt > self._policy.max_call_retries:
                    raise
                time.sleep(self._policy.backoff(attempt))

    def _fault_kill(self) -> None:
        """Kill the worker process to realize an injected crash."""
        try:
            self._process.kill()
        except (OSError, AttributeError):
            pass
        self._process.join(self._policy.join_timeout)

    def _fault_preamble(self, command: str) -> bool:
        """Apply injected call faults; returns kill-after-send."""
        if self._fault_plan is None:
            return False
        spec = self._fault_plan.on_call(self.worker_id, command)
        if spec is None:
            return False
        if spec.kind == "delay":
            time.sleep(spec.delay)
        elif spec.kind == "error":
            raise TransientRpcError(
                f"injected transient RPC failure calling "
                f"{command} on worker {self.worker_id}",
                worker_id=self.worker_id,
                command=command,
            )
        elif spec.kind in ("crash", "host_loss"):
            if spec.where == "after_send":
                return True
            self._fault_kill()
        return False

    def _call_once(self, command: str, args: tuple) -> Any:
        kill_after_send = self._fault_preamble(command)
        flow_id = None
        if self.tracer.enabled:
            # In-band RPC id: the worker's handler span echoes it, and
            # the merge layer draws the caller→callee arrow from the pair.
            self._flow_seq += 1
            flow_id = (self.worker_id + 1) * 1_000_000 + self._flow_seq
        with self.tracer.span(
            f"rpc.{command}",
            category="rpc",
            flow_id=flow_id,
            flow="out" if flow_id is not None else None,
            worker=self.worker_id,
        ) as span:
            status, payload = self._transact(
                command, args, flow_id, kill_after_send, span
            )
        return self._relay(command, status, payload)

    def _transact(
        self, command: str, args: tuple, flow_id, kill_after_send: bool, span
    ) -> Tuple[str, Any]:
        """One request/response over the pipe, in taxonomy terms.

        Transport-level failures surface as :class:`TransportError`
        subclasses at the I/O edge and are converted to
        :class:`WorkerFailure` here — this is the only layer that knows
        *how* the worker is reached, and the only override point the
        socket runtime needs.
        """
        try:
            with self._lock:
                if self._poisoned:
                    raise WorkerDiedError(
                        f"worker {self.worker_id} is poisoned after a "
                        f"timeout; awaiting respawn",
                        worker_id=self.worker_id,
                        command=command,
                    )
                if not self._process.is_alive():
                    raise WorkerDiedError(
                        f"worker {self.worker_id} process is dead "
                        f"(exitcode {self._process.exitcode})",
                        worker_id=self.worker_id,
                        command=command,
                    )
                with mapped_transport_errors(f"{command}"):
                    self._connection.send((command, args, flow_id))
                    if kill_after_send:
                        self._fault_kill()
                    if not self._connection.poll(self._policy.call_timeout):
                        self._poisoned = True
                        raise RpcTimeoutError(
                            f"worker {self.worker_id} did not answer "
                            f"{command} within "
                            f"{self._policy.call_timeout:.1f}s"
                        )
                    return self._connection.recv()
        except RpcTimeoutError as exc:
            raise WorkerTimeoutError(
                str(exc), worker_id=self.worker_id, command=command
            ) from exc
        except TransportError as exc:
            raise WorkerDiedError(
                f"worker {self.worker_id} died during {command}: {exc}",
                worker_id=self.worker_id,
                command=command,
            ) from exc

    def _relay(self, command: str, status: str, payload) -> Any:
        """Map a wire response to a result, relayed exception, or error."""
        if status == "exc":
            name, message, trace = payload
            exc_type = _RELAYED_EXCEPTIONS.get(name)
            if exc_type is SimulatedOOM:
                self.resources.oom = True
                raise SimulatedOOM(
                    self.resources.name,
                    self.resources.current_bytes,
                    self.resources.capacity,
                )
            if exc_type is not None:
                if issubclass(exc_type, WorkerFailure):
                    raise exc_type(
                        message, worker_id=self.worker_id, command=command
                    )
                raise exc_type(message)
            raise RemoteWorkerError(
                f"{name}: {message}\n{trace}",
                worker_id=self.worker_id,
                command=command,
            )
        result, telemetry = payload
        # Tolerate both tuple shapes: the legacy 6-tuple and the current
        # 7-tuple whose tail is an optional streaming telemetry frame.
        frame = telemetry[6] if len(telemetry) > 6 else None
        (
            self.resources.current_bytes,
            peak,
            self.resources.candidate_routes,
            self.resources.bdd_nodes,
            self.resources.fib_entries,
            oom,
        ) = telemetry[:6]
        self.resources.peak_bytes = max(self.resources.peak_bytes, peak)
        self.resources.oom = self.resources.oom or oom
        if frame is not None and self.telemetry_sink is not None:
            try:
                self.telemetry_sink(frame)
            except Exception:  # noqa: BLE001 — telemetry must never
                pass  # poison the RPC result path
        return result

    # -- supervision ------------------------------------------------------

    def is_alive(self) -> bool:
        return not self._poisoned and self._process.is_alive()

    def ping(self) -> bool:
        """Heartbeat: one round trip through the worker's service loop."""
        return self._call("ping") == "pong"

    def reap(self) -> None:
        """Tear down the dead (or doomed) process and its pipe."""
        try:
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(self._policy.join_timeout)
            if self._process.is_alive():
                self._process.kill()
                self._process.join(self._policy.join_timeout)
        except (OSError, AttributeError):
            pass
        try:
            self._connection.close()
        except OSError:
            pass

    def revive(self, connection, process) -> None:
        """Adopt a freshly spawned process, keeping the proxy identity.

        Identity preservation matters: the orchestrators and sidecars
        hold references to this proxy, so a respawn must swap the pipe
        and process *inside* it rather than replace it.
        """
        with self._lock:
            self._connection = connection
            self._process = process
            self._poisoned = False
        self.resources.respawns += 1

    # -- serving ---------------------------------------------------------------

    def begin_epoch(self, epoch: int) -> int:
        return self._call("begin_epoch", epoch)

    def rebind_snapshot(
        self,
        snapshot: Snapshot,
        changed_hosts=(),
        epoch: Optional[int] = None,
    ) -> None:
        self._call("rebind_snapshot", snapshot, tuple(changed_hosts), epoch)

    @property
    def epoch(self) -> int:
        return self._call("epoch_value")

    # -- control plane ---------------------------------------------------------

    def begin_shard(
        self, shard: Optional[PrefixShard], epoch: Optional[int] = None
    ) -> None:
        self._call("begin_shard", shard, epoch)

    def compute_exports(self, round_token: int):
        return self._call("compute_exports", round_token)

    def deliver_routes(self, batch) -> None:
        self._call("deliver_routes", batch)

    def deliver_routes_many(self, batches) -> None:
        self._call("deliver_routes_many", tuple(batches))

    def pull_round(self, round_token: int) -> PullOutcome:
        return self._call("pull_round", round_token)

    def update_memory(self, enforce: bool = True) -> int:
        return self._call("update_memory", enforce)

    def observed_dependencies(self) -> set:
        return self._call("observed_dependencies")

    def fault_counters(self) -> Dict[str, int]:
        return self._call("fault_counters")

    def flush_shard(self, store: RouteStore, shard_index: int) -> Tuple[int, int]:
        """Flush the converged shard to the shared store, worker-side."""
        return self._call("flush_shard", store.directory, shard_index)

    # -- OSPF -----------------------------------------------------------------------

    def has_ospf(self) -> bool:
        return self._call("has_ospf")

    def compute_ospf_exports(self):
        return self._call("compute_ospf_exports")

    def pull_ospf_round(self) -> bool:
        return self._call("pull_ospf_round")

    def install_ospf_routes(self) -> None:
        self._call("install_ospf_routes")

    def export_ospf_state(self):
        return self._call("export_ospf_state")

    def restore_ospf_state(self, state) -> None:
        self._call("restore_ospf_state", state)

    # -- data plane ------------------------------------------------------------------

    def build_dataplane(
        self,
        store: RouteStore,
        resolver,
        encoding: HeaderEncoding,
        node_limit: int = 1 << 24,
        bdd_kernel: str = "flat",
    ) -> int:
        del resolver  # rebuilt worker-side from the snapshot
        return self._call(
            "build_dataplane", store.directory, encoding, node_limit, bdd_kernel
        )

    def set_waypoint_bit(self, node: str, metadata_index: int) -> None:
        self._call("set_waypoint_bit", node, metadata_index)

    def clear_waypoints(self) -> None:
        self._call("clear_waypoints")

    def inject_header(self, sources, header_payload, trace: bool) -> None:
        self._call("inject_header", sources, header_payload, trace)

    def deliver_packets(self, batch) -> None:
        self._call("deliver_packets", batch)

    def drain(self):
        return self._call("drain")

    def collect_finals(self):
        return self._call("collect_finals")

    def reset_dataplane_run(self) -> None:
        self._call("reset_dataplane_run")

    def collect_engine_garbage(self) -> int:
        return self._call("collect_engine_garbage")

    def engine_counters(self) -> Dict[str, float]:
        return self._call("engine_counters")

    @property
    def pending_packets(self) -> int:
        return self._call("pending_packets")

    # -- lifecycle --------------------------------------------------------------------

    def stop(self, timeout: float = 5.0) -> None:
        try:
            with self._lock:
                if not self._poisoned and self._process.is_alive():
                    with mapped_transport_errors("stop"):
                        self._connection.send(("stop", (), None))
                        if self._connection.poll(timeout):
                            self._connection.recv()
        except TransportError:
            pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
        if self._process.is_alive():
            # terminate() can be absorbed (e.g. a wedged interpreter):
            # escalate to SIGKILL so close() can never leave a child.
            self._process.kill()
            self._process.join(timeout)
        try:
            self._connection.close()
        except OSError:
            pass


class ProcessWorkerPool:
    """Spawns one process per worker and hands out proxies.

    Also the supervisor's muscle: it can report dead workers, heartbeat
    the live ones, and respawn a worker in place (the proxy keeps its
    identity; see :meth:`WorkerProcessProxy.revive`).
    """

    def __init__(
        self,
        snapshot: Snapshot,
        assignment: Dict[str, int],
        num_workers: int,
        capacity: int,
        cost_model,
        max_hops: int = 24,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        trace_dir: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        telemetry_interval: float = 0.0,
        telemetry_sink: Optional[Callable[[Dict[str, Any]], Any]] = None,
    ) -> None:
        self._context = mp.get_context(
            "fork" if os.name == "posix" else "spawn"
        )
        self._spawn_args = (snapshot, assignment, capacity, cost_model, max_hops)
        self._policy = retry_policy or RetryPolicy()
        self._fault_plan = fault_plan
        self._trace_dir = trace_dir
        self._telemetry_interval = telemetry_interval
        # Spawn counts per worker id: a respawned worker's shard carries
        # the next incarnation number, so its spans stay distinguishable
        # after merging onto the same process track.
        self._incarnations: Dict[int, int] = {}
        # Workers declared permanently lost by the supervisor: excluded
        # from reconfigure/supervision sweeps (their proxy slot stays so
        # a later heal-probe respawn can revive them in place).
        self._lost: set = set()
        self.proxies: List[WorkerProcessProxy] = []
        for worker_id in range(num_workers):
            parent_conn, process = self._spawn(worker_id)
            self.proxies.append(
                WorkerProcessProxy(
                    worker_id,
                    parent_conn,
                    process,
                    WorkerResources(
                        name=f"worker{worker_id}",
                        capacity=capacity,
                        model=cost_model,
                    ),
                    policy=self._policy,
                    fault_plan=fault_plan,
                    tracer=tracer,
                    telemetry_sink=telemetry_sink,
                )
            )

    def _spawn(self, worker_id: int):
        snapshot, assignment, capacity, cost_model, max_hops = self._spawn_args
        incarnation = self._incarnations.get(worker_id, -1) + 1
        self._incarnations[worker_id] = incarnation
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                worker_id,
                snapshot,
                assignment,
                capacity,
                cost_model,
                max_hops,
                self._trace_dir,
                incarnation,
                self._telemetry_interval,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    # -- serving ----------------------------------------------------------

    def update_snapshot(
        self, snapshot: Snapshot, assignment: Optional[Dict[str, int]] = None
    ) -> None:
        """Point future (re)spawns at the current snapshot/assignment.

        The serving layer calls this on *every* delta, including the
        incremental path that never reconfigures live workers: a worker
        respawned mid-epoch must be rebuilt from the session's current
        config, not the boot-time one (it would then fail the epoch
        fence and recovery would loop).
        """
        _old_snapshot, old_assignment, capacity, cost_model, max_hops = (
            self._spawn_args
        )
        self._spawn_args = (
            snapshot,
            assignment if assignment is not None else old_assignment,
            capacity,
            cost_model,
            max_hops,
        )

    def reconfigure(
        self, snapshot: Snapshot, assignment: Dict[str, int]
    ) -> None:
        """Rebind every *live* worker to a new snapshot (logical respawn).

        The processes stay resident; each worker rebuilds its state from
        the shipped config at the next incarnation.  Raises
        :class:`~repro.dist.faults.WorkerFailure` if a worker cannot be
        reached — the caller's supervisor takes over from there.
        """
        self.update_snapshot(snapshot, assignment)
        _snap, _assign, capacity, cost_model, max_hops = self._spawn_args
        for proxy in self.proxies:
            if proxy.worker_id in self._lost:
                continue
            incarnation = self._incarnations.get(proxy.worker_id, -1) + 1
            self._incarnations[proxy.worker_id] = incarnation
            proxy._call(
                "__configure__",
                proxy.worker_id,
                snapshot,
                assignment,
                capacity,
                cost_model,
                max_hops,
                self._trace_dir,
                incarnation,
                self._telemetry_interval,
            )

    # -- supervision ------------------------------------------------------

    def mark_lost(self, worker_id: int) -> None:
        """Blacklist a worker (respawn budget spent, shards migrated).

        The proxy slot is retained — ``respawn`` doubles as the heal
        probe and clears the mark on success — but every fleet sweep
        skips the worker until then.
        """
        self._lost.add(worker_id)

    @property
    def lost_workers(self) -> List[int]:
        return sorted(self._lost)

    def dead_workers(self) -> List[int]:
        """Worker ids whose process is gone or whose pipe is poisoned
        (known-lost workers excluded — they are not news)."""
        return [
            proxy.worker_id
            for proxy in self.proxies
            if proxy.worker_id not in self._lost and not proxy.is_alive()
        ]

    def ping_all(self) -> List[int]:
        """Heartbeat every active worker; returns the ids that failed."""
        failed = []
        for proxy in self.proxies:
            if proxy.worker_id in self._lost:
                continue
            try:
                if not proxy.ping():
                    failed.append(proxy.worker_id)
            except WorkerFailure:
                failed.append(proxy.worker_id)
        return failed

    def respawn(self, worker_id: int) -> WorkerProcessProxy:
        """Replace a dead worker's process; the proxy identity survives.

        Raises :class:`RespawnError` when the spawn fails (or when a
        ``respawn_fail`` fault is injected), which the controller treats
        as the cue to degrade to the sequential fallback.
        """
        if self._fault_plan is not None and self._fault_plan.should_fail_respawn(
            worker_id
        ):
            raise RespawnError(
                f"respawn of worker {worker_id} failed (injected)",
                worker_id=worker_id,
            )
        proxy = self.proxies[worker_id]
        proxy.reap()
        try:
            parent_conn, process = self._spawn(worker_id)
        except OSError as exc:
            raise RespawnError(
                f"respawn of worker {worker_id} failed: {exc!r}",
                worker_id=worker_id,
            ) from exc
        proxy.revive(parent_conn, process)
        self._lost.discard(worker_id)
        return proxy

    def close(self) -> None:
        """Stop every worker; escalate terminate()→kill() as needed.

        Never raises: teardown must succeed even when a proxy call died
        mid-round and left pipes in arbitrary states.
        """
        for proxy in self.proxies:
            try:
                proxy.stop(timeout=self._policy.join_timeout)
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
        for proxy in self.proxies:
            process = proxy._process
            try:
                if process.is_alive():
                    process.kill()
                    process.join(self._policy.join_timeout)
            except (OSError, AttributeError):
                pass
