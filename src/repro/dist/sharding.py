"""Prefix sharding (§4.5): DPDG construction and shard packing.

Route computations for different prefixes are mostly independent; the
exceptions are captured in a *directed prefix dependency graph* (DPDG)
with an edge ``p1 → p2`` when computing ``p1`` depends on ``p2``:

* ``p1`` is an aggregate covering the specific ``p2`` (the aggregate
  activates only while a contributor exists), or
* ``p1`` is conditionally advertised watching the presence/absence of
  ``p2`` in the RIB.

Shards are unions of *weakly connected components* of the DPDG, packed
into ``m`` shards by a greedy longest-processing-time rule; equal-size
components are shuffled first so one switch's prefixes do not dominate a
shard (the §4.5 balance fix).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..config.loader import Snapshot
from ..net.ip import Prefix
from ..routing.engine import collect_network_prefixes


@dataclass(frozen=True)
class PrefixShard:
    """One shard: an id plus its prefix set."""

    index: int
    prefixes: FrozenSet[Prefix]

    def __len__(self) -> int:
        return len(self.prefixes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self.prefixes

    def fingerprint(self) -> str:
        """Content digest of the prefix set (index-independent).

        The serving layer stores it per flush index: a shard whose
        fingerprint reappears in the next epoch holds the same prefixes,
        so its flushed results can be carried over even when the packer
        assigned it a different index.
        """
        text = "\n".join(sorted(str(p) for p in self.prefixes))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class Dpdg:
    """The directed prefix dependency graph."""

    prefixes: Set[Prefix] = field(default_factory=set)
    edges: Set[Tuple[Prefix, Prefix]] = field(default_factory=set)

    def add_prefix(self, prefix: Prefix) -> None:
        self.prefixes.add(prefix)

    def add_dependency(self, depends: Prefix, on: Prefix) -> None:
        self.prefixes.add(depends)
        self.prefixes.add(on)
        self.edges.add((depends, on))

    def weakly_connected_components(self) -> List[List[Prefix]]:
        """Connected components ignoring edge direction, sorted for
        determinism (largest first, then by first prefix)."""
        neighbors: Dict[Prefix, Set[Prefix]] = {
            prefix: set() for prefix in self.prefixes
        }
        for a, b in self.edges:
            neighbors[a].add(b)
            neighbors[b].add(a)
        seen: Set[Prefix] = set()
        components: List[List[Prefix]] = []
        for prefix in sorted(self.prefixes):
            if prefix in seen:
                continue
            stack = [prefix]
            component: List[Prefix] = []
            seen.add(prefix)
            while stack:
                current = stack.pop()
                component.append(current)
                for neighbor in neighbors[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(sorted(component))
        components.sort(key=lambda c: (-len(c), c[0]))
        return components


def build_dpdg(
    snapshot: Snapshot, include_conditionals: bool = True
) -> Dpdg:
    """Collect every BGP prefix (§4.5's per-protocol collection, including
    redistribution sources) and wire the dependency edges.

    ``include_conditionals=False`` deliberately omits the conditional-
    advertisement edges, producing an *incomplete* DPDG — the scenario
    §7's runtime refinement exists for (tests and the refinement path use
    it to provoke unforeseen dependencies).
    """
    dpdg = Dpdg()
    all_prefixes = collect_network_prefixes(snapshot)
    for prefix in all_prefixes:
        dpdg.add_prefix(prefix)
    for config in snapshot.configs.values():
        bgp = config.bgp
        if bgp is None:
            continue
        for aggregate in bgp.aggregates:
            for candidate in all_prefixes:
                if candidate != aggregate.prefix and aggregate.prefix.contains(
                    candidate
                ):
                    dpdg.add_dependency(aggregate.prefix, candidate)
        if include_conditionals:
            for conditional in bgp.conditionals:
                dpdg.add_dependency(
                    conditional.prefix, conditional.watch_prefix
                )
    return dpdg


def make_shards(
    snapshot: Snapshot,
    num_shards: int,
    seed: int = 11,
    include_conditionals: bool = True,
) -> List[PrefixShard]:
    """Partition the snapshot's prefixes into ``num_shards`` shards.

    Dependent prefixes always co-shard; components are placed largest
    first onto the currently smallest shard, with equal-size components
    shuffled (§4.5).  Returns fewer shards than requested when there are
    fewer components.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    dpdg = build_dpdg(snapshot, include_conditionals=include_conditionals)
    components = dpdg.weakly_connected_components()
    return pack_components(components, num_shards, seed)


def pack_components(
    components: Sequence[Sequence[Prefix]], num_shards: int, seed: int = 11
) -> List[PrefixShard]:
    """Greedy LPT packing of dependency components into shards."""
    # Shuffle runs of equal-size components so prefixes originated by the
    # same switch (which tend to be enumerated together) spread out.
    rng = random.Random(seed)
    grouped: Dict[int, List[Sequence[Prefix]]] = {}
    for component in components:
        grouped.setdefault(len(component), []).append(component)
    ordered: List[Sequence[Prefix]] = []
    for size in sorted(grouped, reverse=True):
        bucket = grouped[size]
        rng.shuffle(bucket)
        ordered.extend(bucket)

    num_shards = min(num_shards, max(1, len(ordered)))
    bins: List[List[Prefix]] = [[] for _ in range(num_shards)]
    sizes = [0] * num_shards
    for component in ordered:
        smallest = min(range(num_shards), key=lambda i: (sizes[i], i))
        bins[smallest].extend(component)
        sizes[smallest] += len(component)
    return [
        PrefixShard(index=i, prefixes=frozenset(prefixes))
        for i, prefixes in enumerate(bins)
        if prefixes
    ]


def shard_queries(sources: Sequence[str], num_shards: int) -> List[Tuple[str, ...]]:
    """Split a DPV query workload (its source nodes) into balanced shards.

    Reachability from different sources is embarrassingly parallel in
    time but not in *memory*: every query grows the worker engines with
    intermediate BDD nodes.  Running the sources shard-by-shard lets the
    DPO garbage-collect worker engines between shards (the
    ``reset_dataplane_run`` boundary), keeping peak node counts flat
    instead of monotonically growing with the query count.

    Round-robin over a sorted copy: deterministic, and adjacent hostnames
    (which tend to be topologically close and share forwarding state)
    spread across shards.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    ordered = sorted(sources)
    if not ordered:
        return []
    bins: List[List[str]] = [[] for _ in range(min(num_shards, len(ordered)))]
    for index, source in enumerate(ordered):
        bins[index % len(bins)].append(source)
    return [tuple(group) for group in bins]


def validate_shards(
    shards: Sequence[PrefixShard], snapshot: Snapshot
) -> List[str]:
    """Check shard invariants; returns human-readable problems (empty=ok).

    Every network prefix appears in exactly one shard, and every DPDG
    edge's endpoints co-shard.
    """
    problems: List[str] = []
    owner: Dict[Prefix, int] = {}
    for shard in shards:
        for prefix in shard.prefixes:
            if prefix in owner:
                problems.append(
                    f"{prefix} in shards {owner[prefix]} and {shard.index}"
                )
            owner[prefix] = shard.index
    expected = collect_network_prefixes(snapshot)
    for prefix in expected:
        if prefix not in owner:
            problems.append(f"{prefix} missing from all shards")
    dpdg = build_dpdg(snapshot)
    for depends, on in dpdg.edges:
        if owner.get(depends) != owner.get(on):
            problems.append(
                f"dependency {depends} -> {on} split across shards "
                f"{owner.get(depends)} and {owner.get(on)}"
            )
    return problems
