"""Sidecars: the communication layer between controller and workers (§3.2).

Each worker (and the controller) has a sidecar holding the node→worker
assignment; all cross-worker traffic flows sidecar→sidecar.  The in-process
transport delivers objects directly but charges the sender's resource
model with the *measured* serialized size of every message, so the
communication columns of the figures come from real payloads, not guesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .message import PacketBatch, RouteBatch, measured_size
from .resources import WorkerResources
from .worker import Worker


class Sidecar:
    """One worker's sidecar.  ``peers`` is filled by the controller."""

    def __init__(self, worker: Worker) -> None:
        self.worker = worker
        self.peers: Dict[int, "Sidecar"] = {}

    @property
    def worker_id(self) -> int:
        return self.worker.worker_id

    def register_peers(self, sidecars: List["Sidecar"]) -> None:
        self.peers = {s.worker_id: s for s in sidecars}

    # -- sending (charged to this worker) --------------------------------

    def send_routes(self, batch: RouteBatch) -> int:
        size = measured_size(batch)
        self.worker.resources.charge_rpc(size, messages=1)
        self.peers[batch.target_worker].worker.deliver_routes(batch)
        return size

    def send_packets(self, batch: PacketBatch) -> int:
        size = measured_size(batch)
        self.worker.resources.charge_rpc(size, messages=1)
        self.peers[batch.target_worker].worker.deliver_packets(batch)
        return size
