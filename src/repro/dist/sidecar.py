"""Sidecars: the communication layer between controller and workers (§3.2).

Each worker (and the controller) has a sidecar holding the node→worker
assignment; all cross-worker traffic flows sidecar→sidecar.  The in-process
transport delivers objects directly but charges the sender's resource
model with the *measured* serialized size of every message, so the
communication columns of the figures come from real payloads, not guesses.

Route batches are stamped with a per-sender sequence number so receivers
can discard duplicated deliveries, and an optional
:class:`~repro.dist.faults.FaultPlan` can drop or duplicate batches at
this layer — the injection point for lost-message experiments (the CPO
detects drops and forces an extra round, which heals the mailboxes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from .faults import FaultPlan
from .message import PacketBatch, RouteBatch, measured_size
from .resources import WorkerResources
from .worker import Worker


class Sidecar:
    """One worker's sidecar.  ``peers`` is filled by the controller."""

    def __init__(
        self,
        worker: Worker,
        fault_plan: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.worker = worker
        self.peers: Dict[int, "Sidecar"] = {}
        self.fault_plan = fault_plan
        self.metrics = metrics
        self._sequence = 0
        self.batches_dropped = 0
        self.batches_duplicated = 0

    @property
    def worker_id(self) -> int:
        return self.worker.worker_id

    def register_peers(self, sidecars: List["Sidecar"]) -> None:
        self.peers = {s.worker_id: s for s in sidecars}

    # -- sending (charged to this worker) --------------------------------

    def _record(self, counter: str, size: int) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(counter).inc()
        self.metrics.counter("rpc.bytes_sent").inc(size)
        self.metrics.histogram("rpc.batch_bytes").observe(size)

    def send_routes(self, batch: RouteBatch) -> int:
        self._sequence += 1
        batch = replace(batch, sequence=self._sequence)
        size = measured_size(batch)
        self.worker.resources.charge_rpc(size, messages=1)
        self._record("rpc.route_batches", size)
        with self.worker.tracer.span(
            "sidecar.send_routes",
            category="rpc",
            target=batch.target_worker,
            bytes=size,
        ) as span:
            action = "deliver"
            if self.fault_plan is not None:
                action = self.fault_plan.on_batch(
                    batch.source_worker, batch.round_token
                )
            if action == "drop":
                self.batches_dropped += 1
                span.set(outcome="dropped")
                return size
            target = self.peers[batch.target_worker].worker
            target.deliver_routes(batch)
            if action == "duplicate":
                # Redeliver the same sequence number: the receiver dedupes,
                # but the duplicate bytes are still charged to the sender.
                self.batches_duplicated += 1
                self.worker.resources.charge_rpc(size, messages=1)
                self._record("rpc.route_batches", size)
                span.set(outcome="duplicated")
                target.deliver_routes(batch)
        return size

    def send_packets(self, batch: PacketBatch) -> int:
        # Packet batches are not subject to drop/duplicate injection:
        # symbolic packets are not retransmitted round-over-round the way
        # route advertisements are, so the fault model for the data plane
        # is worker crashes (recovered by query replay), not lost batches.
        size = measured_size(batch)
        self.worker.resources.charge_rpc(size, messages=1)
        self._record("rpc.packet_batches", size)
        with self.worker.tracer.span(
            "sidecar.send_packets",
            category="rpc",
            target=batch.target_worker,
            bytes=size,
            packets=len(batch.envelopes),
        ):
            self.peers[batch.target_worker].worker.deliver_packets(batch)
        return size
