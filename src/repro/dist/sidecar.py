"""Sidecars: the communication layer between controller and workers (§3.2).

Each worker (and the controller) has a sidecar holding the node→worker
assignment; all cross-worker traffic flows sidecar→sidecar.  The in-process
transport delivers objects directly but charges the sender's resource
model with the *measured* serialized size of every message, so the
communication columns of the figures come from real payloads, not guesses.

Route batches are stamped with a per-sender sequence number so receivers
can discard duplicated deliveries, and an optional
:class:`~repro.dist.faults.FaultPlan` can drop or duplicate batches at
this layer — the injection point for lost-message experiments (the CPO
detects drops and forces an extra round, which heals the mailboxes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..bdd.serialize import SendDedupCache
from ..obs.metrics import MetricsRegistry
from .faults import FaultPlan
from .message import PacketBatch, RouteBatch, measured_size
from .resources import WorkerResources
from .worker import Worker


class Sidecar:
    """One worker's sidecar.  ``peers`` is filled by the controller."""

    def __init__(
        self,
        worker: Worker,
        fault_plan: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        dedup_packets: bool = True,
    ) -> None:
        self.worker = worker
        self.peers: Dict[int, "Sidecar"] = {}
        self.fault_plan = fault_plan
        self.metrics = metrics
        self.dedup_packets = dedup_packets
        # Per-peer memory of symbolic-packet payloads already shipped
        # there.  Content-hashed, so it stays valid across engine GCs on
        # either side (node ids never appear in the wire format).
        self._packet_dedup: Dict[int, SendDedupCache] = {}
        self._sequence = 0
        self.batches_dropped = 0
        self.batches_duplicated = 0
        # Per-round outbox for the pipelined exchange path: batches are
        # queued (charged immediately) and shipped by flush_routes() as
        # one coalesced delivery per target worker.
        self._outbox: Dict[int, List[RouteBatch]] = {}

    @property
    def worker_id(self) -> int:
        return self.worker.worker_id

    def register_peers(self, sidecars: List["Sidecar"]) -> None:
        self.peers = {s.worker_id: s for s in sidecars}

    # -- sending (charged to this worker) --------------------------------

    def _record(self, counter: str, size: int) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(counter).inc()
        self.metrics.counter("rpc.bytes_sent").inc(size)
        self.metrics.histogram("rpc.batch_bytes").observe(size)

    def send_routes(self, batch: RouteBatch) -> int:
        self._sequence += 1
        batch = replace(batch, sequence=self._sequence)
        size = measured_size(batch)
        self.worker.resources.charge_rpc(size, messages=1)
        self._record("rpc.route_batches", size)
        with self.worker.tracer.span(
            "sidecar.send_routes",
            category="rpc",
            target=batch.target_worker,
            bytes=size,
        ) as span:
            action = "deliver"
            if self.fault_plan is not None:
                action = self.fault_plan.on_batch(
                    batch.source_worker, batch.round_token
                )
            if action == "drop":
                self.batches_dropped += 1
                span.set(outcome="dropped")
                return size
            target = self.peers[batch.target_worker].worker
            target.deliver_routes(batch)
            if action == "duplicate":
                # Redeliver the same sequence number: the receiver dedupes,
                # but the duplicate bytes are still charged to the sender.
                self.batches_duplicated += 1
                self.worker.resources.charge_rpc(size, messages=1)
                self._record("rpc.route_batches", size)
                span.set(outcome="duplicated")
                target.deliver_routes(batch)
        return size

    def queue_routes(self, batch: RouteBatch) -> int:
        """Queue one batch for the round's pipelined flush.

        Identical accounting to :meth:`send_routes` — sequence stamp,
        measured-size charge, metrics, and fault-plan drop/duplicate —
        but delivery is deferred to :meth:`flush_routes`, which ships
        every target's batches in one coalesced call per peer.
        """
        self._sequence += 1
        batch = replace(batch, sequence=self._sequence)
        size = measured_size(batch)
        self.worker.resources.charge_rpc(size, messages=1)
        self._record("rpc.route_batches", size)
        action = "deliver"
        if self.fault_plan is not None:
            action = self.fault_plan.on_batch(
                batch.source_worker, batch.round_token
            )
        if action == "drop":
            self.batches_dropped += 1
            return size
        self._outbox.setdefault(batch.target_worker, []).append(batch)
        if action == "duplicate":
            # Redeliver the same sequence number: the receiver dedupes,
            # but the duplicate bytes are still charged to the sender.
            self.batches_duplicated += 1
            self.worker.resources.charge_rpc(size, messages=1)
            self._record("rpc.route_batches", size)
            self._outbox[batch.target_worker].append(batch)
        return size

    def flush_routes(self) -> List:
        """Ship the queued round, one ``deliver_routes_many`` per target.

        Remote peers that support pipelined calls (``call_nowait``) are
        issued without waiting and their result handles returned — the
        caller **must** settle every handle before Phase B pulls, since
        mailboxes must be filled before they are read.  In-process peers
        deliver synchronously here and contribute no handle.
        """
        outbox, self._outbox = self._outbox, {}
        handles: List = []
        with self.worker.tracer.span(
            "sidecar.flush_routes",
            category="rpc",
            targets=len(outbox),
            batches=sum(len(b) for b in outbox.values()),
        ):
            for target_id in sorted(outbox):
                batches = tuple(outbox[target_id])
                target = self.peers[target_id].worker
                nowait = getattr(target, "call_nowait", None)
                if nowait is not None:
                    handles.append(nowait("deliver_routes_many", batches))
                else:
                    target.deliver_routes_many(batches)
        return handles

    def send_packets(self, batch: PacketBatch) -> int:
        # Packet batches are not subject to drop/duplicate injection:
        # symbolic packets are not retransmitted round-over-round the way
        # route advertisements are, so the fault model for the data plane
        # is worker crashes (recovered by query replay), not lost batches.
        size = measured_size(batch)
        duplicates = 0
        saved = 0
        if self.dedup_packets:
            cache = self._packet_dedup.get(batch.target_worker)
            if cache is None:
                cache = SendDedupCache()
                self._packet_dedup[batch.target_worker] = cache
            saved_before = cache.bytes_saved
            for envelope in batch.envelopes:
                duplicate, _wire = cache.offer(envelope.payload)
                duplicates += duplicate
            saved = cache.bytes_saved - saved_before
        # Payloads the peer has already seen travel as digest references;
        # only the delta is charged to the sender's communication model.
        wire = max(size - saved, 0)
        self.worker.resources.charge_rpc(wire, messages=1)
        self._record("rpc.packet_batches", wire)
        if self.metrics is not None and duplicates:
            self.metrics.counter("rpc.dedup_packets").inc(duplicates)
            self.metrics.counter("rpc.dedup_bytes_saved").inc(saved)
        with self.worker.tracer.span(
            "sidecar.send_packets",
            category="rpc",
            target=batch.target_worker,
            bytes=wire,
            packets=len(batch.envelopes),
            dedup_hits=duplicates,
        ):
            self.peers[batch.target_worker].worker.deliver_packets(batch)
        return wire

    # -- cache invalidation ----------------------------------------------

    def on_peer_respawn(self, worker_id: int) -> None:
        """Drop the dedup memory aimed at a respawned peer.

        The peer's fresh incarnation has no receive-side memory, so
        digest references toward it would under-charge the sender (and a
        real dedup transport would fail to resolve them).  Counters are
        discarded with the cache: savings already banked were real —
        they happened against the dead incarnation.
        """
        self._packet_dedup.pop(worker_id, None)

    def invalidate_send_caches(self) -> None:
        """Forget every peer's dedup memory (e.g. on a full reset)."""
        self._packet_dedup.clear()

    def dedup_counters(self) -> Dict[str, int]:
        """Aggregate send-dedup telemetry across this sidecar's peers."""
        hits = misses = saved = 0
        for cache in self._packet_dedup.values():
            hits += cache.hits
            misses += cache.misses
            saved += cache.bytes_saved
        return {"hits": hits, "misses": misses, "bytes_saved": saved}
