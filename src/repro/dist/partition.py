"""Network partitioning (§4.1, §5.6).

Splits the topology into per-worker segments, prioritizing *balanced load*
(the paper's primary goal — memory is the bottleneck) over minimal edge
cut (secondary).  Node loads are the estimated per-node route counts: the
§4.1 formula for standard FatTrees, uniform otherwise.

Five schemes, matching the paper's Figure 7 study:

``metis``      a METIS-style multilevel partitioner implemented here
               (heavy-edge-matching coarsening → greedy balanced seeding →
               boundary refinement honoring the balance constraint);
``random``     deterministic shuffle into equal-size segments;
``expert``     topology-aware: FatTree pods stay together with cores
               spread; other networks are name-sorted and chunked
               (adjacent names are usually adjacent switches);
``imbalanced`` adversarial: 3/4 of the network on one worker (the paper's
               first extreme);
``commheavy``  adversarial: maximizes the cut — for FatTrees, cores+edges
               separated from aggregations (the paper's second extreme).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config.loader import Snapshot
from ..net.topology import Topology

SCHEMES = ("metis", "random", "expert", "imbalanced", "commheavy")


@dataclass
class PartitionResult:
    """node -> worker index, plus quality metrics."""

    assignment: Dict[str, int]
    num_workers: int
    scheme: str

    def segments(self) -> List[List[str]]:
        result: List[List[str]] = [[] for _ in range(self.num_workers)]
        for node, worker in sorted(self.assignment.items()):
            result[worker].append(node)
        return result

    def loads(self, node_loads: Dict[str, int]) -> List[int]:
        totals = [0] * self.num_workers
        for node, worker in self.assignment.items():
            totals[worker] += node_loads.get(node, 1)
        return totals

    def edge_cut(self, topology: Topology) -> int:
        """Number of links whose endpoints land on different workers."""
        return sum(
            1
            for a, b in topology.edge_list()
            if self.assignment[a] != self.assignment[b]
        )

    def imbalance(self, node_loads: Dict[str, int]) -> float:
        """max-load / mean-load; 1.0 is perfectly balanced."""
        totals = self.loads(node_loads)
        mean = sum(totals) / len(totals) if totals else 0
        return max(totals) / mean if mean else 1.0


def estimate_loads(snapshot: Snapshot) -> Dict[str, int]:
    """Per-node load estimates (§4.1).

    For FatTrees, core/aggregation nodes process ~k³/2 routes and edge
    nodes ~k³/4.  For nonstandard networks the paper assumes uniform
    loads and leaves better estimation as future work; we use the node's
    degree — the number of sessions bounds both the candidate paths a
    node holds and the symbolic traffic it processes, and it is known
    before simulation.
    """
    topology = snapshot.topology
    if snapshot.metadata.get("kind") == "fattree":
        k = int(snapshot.metadata["k"])
        core_agg = max(1, k ** 3 // 2)
        edge = max(1, k ** 3 // 4)
        loads = {}
        for node in topology.nodes():
            loads[node.name] = edge if node.role == "edge" else core_agg
        return loads
    return {
        node.name: max(1, topology.degree(node.name))
        for node in topology.nodes()
    }


def partition(
    snapshot: Snapshot,
    num_workers: int,
    scheme: str = "metis",
    node_loads: Optional[Dict[str, int]] = None,
    seed: int = 7,
) -> PartitionResult:
    """Partition a snapshot's topology into ``num_workers`` segments."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    topology = snapshot.topology
    names = sorted(topology.node_names())
    if num_workers == 1:
        return PartitionResult({n: 0 for n in names}, 1, scheme)
    loads = node_loads or estimate_loads(snapshot)
    if scheme == "random":
        assignment = _random_scheme(names, num_workers, seed)
    elif scheme == "expert":
        assignment = _expert_scheme(snapshot, num_workers)
    elif scheme == "metis":
        assignment = _multilevel_scheme(topology, loads, num_workers, seed)
    elif scheme == "imbalanced":
        assignment = _imbalanced_scheme(names, num_workers)
    elif scheme == "commheavy":
        assignment = _commheavy_scheme(snapshot, num_workers, seed)
    else:
        raise ValueError(f"unknown partition scheme {scheme!r}")
    return PartitionResult(assignment, num_workers, scheme)


def plan_reassignment(
    assignment: Dict[str, int],
    lost_worker: int,
    survivors: Sequence[int],
    node_loads: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Redistribute a lost worker's nodes across the survivors.

    Deterministic greedy bin packing: the lost worker's nodes, heaviest
    first (ties broken by name), each go to the currently least-loaded
    survivor (ties broken by worker id).  Survivors keep every node they
    already own — only the lost worker's nodes move, so the migration
    cost is proportional to the *lost* segment, not the fleet.

    Returns the complete new ``node -> worker`` assignment.
    """
    survivors = sorted(survivors)
    if not survivors:
        raise ValueError("no survivors to reassign to")
    if lost_worker in survivors:
        raise ValueError(f"worker {lost_worker} is in the survivor set")
    loads = node_loads or {}
    totals = {worker: 0 for worker in survivors}
    for node, worker in assignment.items():
        if worker in totals:
            totals[worker] += loads.get(node, 1)
    orphans = sorted(
        (node for node, worker in assignment.items()
         if worker == lost_worker),
        key=lambda node: (-loads.get(node, 1), node),
    )
    new_assignment = dict(assignment)
    for node in orphans:
        adopter = min(survivors, key=lambda w: (totals[w], w))
        new_assignment[node] = adopter
        totals[adopter] += loads.get(node, 1)
    return new_assignment


# -- simple schemes -----------------------------------------------------------


def _random_scheme(
    names: Sequence[str], num_workers: int, seed: int
) -> Dict[str, int]:
    shuffled = list(names)
    random.Random(seed).shuffle(shuffled)
    return {name: i % num_workers for i, name in enumerate(shuffled)}


def _chunked(names: Sequence[str], num_workers: int) -> Dict[str, int]:
    """Contiguous equal chunks of an ordered name list."""
    assignment = {}
    per = (len(names) + num_workers - 1) // num_workers
    for i, name in enumerate(names):
        assignment[name] = min(i // per, num_workers - 1)
    return assignment


def _expert_scheme(snapshot: Snapshot, num_workers: int) -> Dict[str, int]:
    """The operators' hand strategy (§5.6).

    FatTrees: a pod's aggregation+edge switches share a segment; cores are
    dealt round-robin.  Other topologies: sort by name and chunk — names
    with common prefixes sit close in the topology.
    """
    topology = snapshot.topology
    if snapshot.metadata.get("kind") == "fattree":
        assignment: Dict[str, int] = {}
        pods = sorted(
            {n.pod for n in topology.nodes() if n.pod is not None}
        )
        for pod in pods:
            worker = pod % num_workers
            for node in topology.nodes():
                if node.pod == pod:
                    assignment[node.name] = worker
        cores = sorted(
            n.name for n in topology.nodes() if n.name not in assignment
        )
        for i, name in enumerate(cores):
            assignment[name] = i % num_workers
        return assignment
    return _chunked(sorted(topology.node_names()), num_workers)


def _imbalanced_scheme(
    names: Sequence[str], num_workers: int
) -> Dict[str, int]:
    """3/4 of all switches on worker 0; the rest spread evenly (§5.6)."""
    assignment = {}
    heavy = (len(names) * 3) // 4
    rest_workers = max(1, num_workers - 1)
    for i, name in enumerate(sorted(names)):
        if i < heavy:
            assignment[name] = 0
        else:
            assignment[name] = 1 + (i - heavy) % rest_workers
    return assignment


def _commheavy_scheme(
    snapshot: Snapshot, num_workers: int, seed: int
) -> Dict[str, int]:
    """Maximize the cut: separate adjacent layers (§5.6's second extreme).

    For FatTrees: cores and edges on the first half of the workers,
    aggregations on the other half — every single link crosses workers.
    """
    topology = snapshot.topology
    group_a: List[str] = []
    group_b: List[str] = []
    for node in sorted(topology.nodes(), key=lambda n: n.name):
        layer = node.layer if node.layer is not None else 0
        (group_b if layer % 2 else group_a).append(node.name)
    half = max(1, num_workers // 2)
    assignment = {}
    for i, name in enumerate(group_a):
        assignment[name] = i % half
    for i, name in enumerate(group_b):
        assignment[name] = half + i % max(1, num_workers - half)
    return assignment


# -- the multilevel (METIS-style) scheme -----------------------------------------


@dataclass
class _Graph:
    """A weighted multigraph for coarsening; vertices are ints."""

    weights: List[int]
    adjacency: List[Dict[int, int]]  # vertex -> {neighbor: edge weight}

    @property
    def size(self) -> int:
        return len(self.weights)


def _build_graph(
    topology: Topology, loads: Dict[str, int], names: Sequence[str]
) -> _Graph:
    index = {name: i for i, name in enumerate(names)}
    weights = [max(1, loads.get(name, 1)) for name in names]
    adjacency: List[Dict[int, int]] = [dict() for _ in names]
    for a, b in topology.edge_list():
        ia, ib = index[a], index[b]
        if ia == ib:
            continue
        adjacency[ia][ib] = adjacency[ia].get(ib, 0) + 1
        adjacency[ib][ia] = adjacency[ib].get(ia, 0) + 1
    return _Graph(weights, adjacency)


def _coarsen(graph: _Graph, rng: random.Random) -> Tuple[_Graph, List[int]]:
    """One heavy-edge-matching pass; returns (coarse graph, vertex map)."""
    order = list(range(graph.size))
    rng.shuffle(order)
    match = [-1] * graph.size
    for v in order:
        if match[v] != -1:
            continue
        best, best_weight = -1, -1
        for u, w in graph.adjacency[v].items():
            if match[u] == -1 and w > best_weight:
                best, best_weight = u, w
        if best != -1:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    coarse_of = [-1] * graph.size
    next_id = 0
    for v in range(graph.size):
        if coarse_of[v] != -1:
            continue
        coarse_of[v] = next_id
        if match[v] != v:
            coarse_of[match[v]] = next_id
        next_id += 1
    weights = [0] * next_id
    adjacency: List[Dict[int, int]] = [dict() for _ in range(next_id)]
    for v in range(graph.size):
        weights[coarse_of[v]] += graph.weights[v]
        for u, w in graph.adjacency[v].items():
            cu, cv = coarse_of[u], coarse_of[v]
            if cu != cv:
                adjacency[cv][cu] = adjacency[cv].get(cu, 0) + w
    return _Graph(weights, adjacency), coarse_of


def _greedy_initial(
    graph: _Graph, num_parts: int, rng: random.Random
) -> List[int]:
    """Seed partition: place vertices heaviest-first on the lightest part,
    preferring a part that already holds a neighbor when balance allows."""
    order = sorted(
        range(graph.size), key=lambda v: -graph.weights[v]
    )
    part = [-1] * graph.size
    part_load = [0] * num_parts
    target = sum(graph.weights) / num_parts
    for v in order:
        candidates = sorted(range(num_parts), key=lambda p: part_load[p])
        lightest = candidates[0]
        chosen = lightest
        best_gain = -1
        for p in candidates:
            if part_load[p] + graph.weights[v] > target * 1.05:
                continue
            gain = sum(
                w
                for u, w in graph.adjacency[v].items()
                if part[u] == p
            )
            if gain > best_gain:
                best_gain, chosen = gain, p
        part[v] = chosen
        part_load[chosen] += graph.weights[v]
    return part


def _refine(
    graph: _Graph, part: List[int], num_parts: int, passes: int = 4
) -> None:
    """Boundary refinement: move vertices when it reduces the cut without
    violating the balance constraint (balance is primary, per §4.1)."""
    part_load = [0] * num_parts
    for v in range(graph.size):
        part_load[part[v]] += graph.weights[v]
    target = sum(graph.weights) / num_parts
    limit = target * 1.03
    for _ in range(passes):
        moved = False
        for v in range(graph.size):
            home = part[v]
            gains: Dict[int, int] = {}
            for u, w in graph.adjacency[v].items():
                gains[part[u]] = gains.get(part[u], 0) + w
            internal = gains.get(home, 0)
            best_part, best_gain = home, 0
            for p, external in gains.items():
                if p == home:
                    continue
                if part_load[p] + graph.weights[v] > limit:
                    continue
                if part_load[home] - graph.weights[v] < target * 0.5:
                    continue
                gain = external - internal
                if gain > best_gain:
                    best_gain, best_part = gain, p
            if best_part != home:
                part_load[home] -= graph.weights[v]
                part_load[best_part] += graph.weights[v]
                part[v] = best_part
                moved = True
        if not moved:
            break


def _multilevel_scheme(
    topology: Topology,
    loads: Dict[str, int],
    num_workers: int,
    seed: int,
) -> Dict[str, int]:
    names = sorted(topology.node_names())
    graph = _build_graph(topology, loads, names)
    rng = random.Random(seed)
    # Coarsen until small (or no further contraction possible).
    levels: List[Tuple[_Graph, List[int]]] = []
    current = graph
    while current.size > max(4 * num_workers, 32):
        coarse, mapping = _coarsen(current, rng)
        if coarse.size >= current.size:
            break
        levels.append((current, mapping))
        current = coarse
    part = _greedy_initial(current, num_workers, rng)
    _refine(current, part, num_workers)
    # Uncoarsen, refining at every level.
    for fine_graph, mapping in reversed(levels):
        part = [part[mapping[v]] for v in range(fine_graph.size)]
        _refine(fine_graph, part, num_workers)
    return {name: part[i] for i, name in enumerate(names)}
