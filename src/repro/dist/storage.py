"""Per-shard route persistence (§3.1: "write it to persistent storage").

When a prefix shard finishes, each worker flushes the shard's selected
routes to disk and frees the in-memory RIBs, which is what caps peak
memory at one shard's footprint.  The store really writes pickle files
(one per worker × shard) under a spool directory, so the flush cost and
the reload path (the data-plane phase needs all shards back) are genuine.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

from ..net.ip import Prefix
from ..routing.route import BgpRoute

# node -> prefix -> selected ECMP routes
ShardRoutes = Dict[str, Dict[Prefix, Tuple[BgpRoute, ...]]]


class RouteStore:
    """Spool directory holding per-(worker, shard) route files."""

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = tempfile.mkdtemp(prefix="s2-routes-")
            self._owned = True
        else:
            os.makedirs(directory, exist_ok=True)
            self._owned = False
        self.directory = directory
        self._files: List[str] = []
        self.bytes_written = 0

    def _path(self, worker_id: int, shard_index: int) -> str:
        return os.path.join(
            self.directory, f"worker{worker_id:03d}-shard{shard_index:04d}.rib"
        )

    def write_shard(
        self, worker_id: int, shard_index: int, routes: ShardRoutes
    ) -> int:
        """Persist one worker's results for one shard; returns bytes."""
        path = self._path(worker_id, shard_index)
        payload = pickle.dumps(routes, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "wb") as handle:
            handle.write(payload)
        self._files.append(path)
        self.bytes_written += len(payload)
        return len(payload)

    def read_shard(self, worker_id: int, shard_index: int) -> ShardRoutes:
        path = self._path(worker_id, shard_index)
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def iter_worker_shards(self, worker_id: int) -> Iterator[ShardRoutes]:
        """All shard files of one worker, in shard order."""
        prefix = f"worker{worker_id:03d}-"
        for name in sorted(os.listdir(self.directory)):
            if name.startswith(prefix) and name.endswith(".rib"):
                with open(
                    os.path.join(self.directory, name), "rb"
                ) as handle:
                    yield pickle.load(handle)

    def merged_routes(self, worker_id: int) -> ShardRoutes:
        """Union of every shard's routes for one worker's nodes."""
        merged: ShardRoutes = {}
        for shard_routes in self.iter_worker_shards(worker_id):
            for node, routes in shard_routes.items():
                merged.setdefault(node, {}).update(routes)
        return merged

    def close(self) -> None:
        if self._owned and os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "RouteStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
