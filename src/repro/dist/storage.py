"""Per-shard route persistence (§3.1: "write it to persistent storage").

When a prefix shard finishes, each worker flushes the shard's selected
routes to disk and frees the in-memory RIBs, which is what caps peak
memory at one shard's footprint.  The store really writes pickle files
(one per worker × shard) under a spool directory, so the flush cost and
the reload path (the data-plane phase needs all shards back) are genuine.

The store doubles as the **checkpoint substrate** of the fault-tolerance
layer: every file is written to a temp name and :func:`os.replace`-d into
place (a worker killed mid-flush can never leave a torn shard pickle), a
:class:`RunManifest` records which shards have converged (so a killed run
can be resumed, skipping them), and per-worker OSPF state checkpoints let
a respawned worker rejoin without re-running the IGP fixed point.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..net.ip import Prefix
from ..routing.route import BgpRoute

# node -> prefix -> selected ECMP routes
ShardRoutes = Dict[str, Dict[Prefix, Tuple[BgpRoute, ...]]]

MANIFEST_NAME = "manifest.json"
EPOCH_TAG_NAME = "EPOCH"


class CorruptShardError(RuntimeError):
    """A persisted shard file failed to deserialize (torn/corrupt write)."""

    def __init__(self, path: str, cause: Exception) -> None:
        super().__init__(
            f"corrupt shard file {path}: {type(cause).__name__}: {cause}"
        )
        self.path = path


class EpochMismatchError(RuntimeError):
    """The store's epoch tag disagrees with its manifest.

    A serve session commits an epoch in two places — the manifest and the
    ``EPOCH`` tag file — written back to back.  A crash between the two
    writes (or a checkpoint restored from a different epoch's backup)
    leaves them disagreeing, and the RIB files cannot be trusted to all
    belong to either epoch.  Callers must treat the store as damaged and
    fall back to a cold start instead of serving mixed-epoch state.
    """

    def __init__(self, manifest_epoch: int, tag_epoch: Optional[int]) -> None:
        super().__init__(
            f"store epoch tag {tag_epoch!r} does not match manifest epoch "
            f"{manifest_epoch!r}; refusing to warm-boot from mixed-epoch "
            "state"
        )
        self.manifest_epoch = manifest_epoch
        self.tag_epoch = tag_epoch


@dataclass
class RunManifest:
    """Atomic record of a run's recovery state (one JSON file per store).

    Written after OSPF convergence and after every shard flush, so a
    restarted controller (:meth:`~repro.dist.controller.S2Controller.
    resume`) knows exactly which work survives.  ``options_hash`` guards
    against resuming with incompatible options or a different snapshot.
    """

    version: int = 1
    options_hash: str = ""
    seed: int = 0
    num_workers: int = 0
    num_shards: int = 0
    ospf_done: bool = False
    # str(flush index) -> {"status": "converged", "rounds": int}
    shards: Dict[str, Dict] = field(default_factory=dict)
    # Serving state: the committed epoch this manifest belongs to, and a
    # content fingerprint per flush index (hash of the shard's sorted
    # prefixes).  Fingerprints let a later epoch carry a clean shard's
    # files over even when the packer assigned it a different index.
    epoch: int = 0
    # str(flush index) -> fingerprint
    shard_fingerprints: Dict[str, str] = field(default_factory=dict)

    def mark_shard(self, flush_index: int, rounds: int = 0) -> None:
        self.shards[str(flush_index)] = {
            "status": "converged",
            "rounds": rounds,
        }

    def is_shard_done(self, flush_index: int) -> bool:
        entry = self.shards.get(str(flush_index))
        return bool(entry) and entry.get("status") == "converged"

    def completed_shards(self) -> List[int]:
        return sorted(
            int(index)
            for index, entry in self.shards.items()
            if entry.get("status") == "converged"
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.version,
                "options_hash": self.options_hash,
                "seed": self.seed,
                "num_workers": self.num_workers,
                "num_shards": self.num_shards,
                "ospf_done": self.ospf_done,
                "shards": self.shards,
                "epoch": self.epoch,
                "shard_fingerprints": self.shard_fingerprints,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        data = json.loads(text)
        return cls(
            version=data.get("version", 1),
            options_hash=data.get("options_hash", ""),
            seed=data.get("seed", 0),
            num_workers=data.get("num_workers", 0),
            num_shards=data.get("num_shards", 0),
            ospf_done=data.get("ospf_done", False),
            shards=data.get("shards", {}),
            epoch=data.get("epoch", 0),
            shard_fingerprints=data.get("shard_fingerprints", {}),
        )


class RouteStore:
    """Spool directory holding per-(worker, shard) route files."""

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = tempfile.mkdtemp(prefix="s2-routes-")
            self._owned = True
        else:
            os.makedirs(directory, exist_ok=True)
            self._owned = False
        self.directory = directory
        self._files: List[str] = []
        self.bytes_written = 0

    def _path(self, worker_id: int, shard_index: int) -> str:
        return os.path.join(
            self.directory, f"worker{worker_id:03d}-shard{shard_index:04d}.rib"
        )

    def _ospf_path(self, worker_id: int) -> str:
        return os.path.join(self.directory, f"worker{worker_id:03d}.ospf")

    def _atomic_write(self, path: str, payload: bytes) -> None:
        """Crash-safe write: temp file in the same directory, then rename.

        ``os.replace`` is atomic on POSIX, so readers (and a resumed run)
        either see the complete previous file or the complete new one —
        never a torn prefix.  The pid suffix keeps concurrent worker
        processes from clobbering each other's temp files.
        """
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)

    def _load(self, path: str) -> ShardRoutes:
        with open(path, "rb") as handle:
            try:
                return pickle.load(handle)
            except (
                pickle.UnpicklingError,
                EOFError,
                AttributeError,
                ImportError,
                IndexError,
                ValueError,
            ) as exc:
                raise CorruptShardError(path, exc) from exc

    # -- shard files -----------------------------------------------------

    def write_shard(
        self, worker_id: int, shard_index: int, routes: ShardRoutes
    ) -> int:
        """Persist one worker's results for one shard; returns bytes."""
        path = self._path(worker_id, shard_index)
        payload = pickle.dumps(routes, protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(path, payload)
        self._files.append(path)
        self.bytes_written += len(payload)
        return len(payload)

    def read_shard(self, worker_id: int, shard_index: int) -> ShardRoutes:
        return self._load(self._path(worker_id, shard_index))

    def read_shard_payload(
        self, worker_id: int, shard_index: int
    ) -> Optional[bytes]:
        """Raw bytes of one shard file, or None if it was never flushed.

        (A worker with no routes in a shard still flushes an empty dict,
        so post-convergence every (worker, shard) file exists; None only
        shows up for indices outside the run.)
        """
        try:
            with open(self._path(worker_id, shard_index), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def write_shard_payload(
        self, worker_id: int, shard_index: int, payload: bytes
    ) -> None:
        """Install pre-serialized shard bytes (epoch carry-over path).

        Used by the serving layer to move a *clean* shard's results to
        its index in the next epoch without deserializing them — the
        bytes are byte-identical to what a recompute would flush.
        """
        path = self._path(worker_id, shard_index)
        self._atomic_write(path, payload)
        self._files.append(path)
        self.bytes_written += len(payload)

    def clear_shard_files(self) -> None:
        """Remove only the RIB shard files (keep OSPF state + manifest).

        The between-epoch reset: OSPF checkpoints stay valid across an
        announce-only delta, but the shard layout may change, so every
        ``.rib`` file is either recomputed or explicitly carried over.
        """
        for name in os.listdir(self.directory):
            if name.endswith(".rib") or ".tmp." in name:
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    def iter_worker_shards(self, worker_id: int) -> Iterator[ShardRoutes]:
        """All shard files of one worker, in shard order."""
        prefix = f"worker{worker_id:03d}-"
        for name in sorted(os.listdir(self.directory)):
            if name.startswith(prefix) and name.endswith(".rib"):
                yield self._load(os.path.join(self.directory, name))

    def worker_shard_indices(self, worker_id: int) -> List[int]:
        """Flush indices of one worker's persisted shard files, sorted."""
        prefix = f"worker{worker_id:03d}-shard"
        suffix = ".rib"
        indices: List[int] = []
        for name in os.listdir(self.directory):
            if name.startswith(prefix) and name.endswith(suffix):
                indices.append(int(name[len(prefix):-len(suffix)]))
        return sorted(indices)

    def merge_into_shard(
        self, worker_id: int, shard_index: int, routes: ShardRoutes
    ) -> int:
        """Fold ``routes`` into one shard file (loss-migration path).

        Reads the existing file when present — mid-run the adopter may
        not have flushed this index yet — merges at node granularity,
        and rewrites atomically.  Returns bytes written.
        """
        try:
            merged = self.read_shard(worker_id, shard_index)
        except FileNotFoundError:
            merged = {}
        merged.update(routes)
        return self.write_shard(worker_id, shard_index, merged)

    def delete_worker_files(self, worker_id: int) -> None:
        """Drop every persisted file of one worker (it left the fleet).

        Without this, ``merged_routes`` over the surviving fleet would
        be fine, but a later rejoin's re-keying (and any full-directory
        scan) would resurrect the dead worker's stale shards.
        """
        prefix = f"worker{worker_id:03d}"
        for name in os.listdir(self.directory):
            if name.startswith(f"{prefix}-shard") or name == f"{prefix}.ospf":
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    def merged_routes(self, worker_id: int) -> ShardRoutes:
        """Union of every shard's routes for one worker's nodes."""
        merged: ShardRoutes = {}
        for shard_routes in self.iter_worker_shards(worker_id):
            for node, routes in shard_routes.items():
                merged.setdefault(node, {}).update(routes)
        return merged

    # -- run manifest ----------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def write_manifest(self, manifest: RunManifest) -> None:
        self._atomic_write(
            self.manifest_path, manifest.to_json().encode("utf-8")
        )

    def read_manifest(self) -> Optional[RunManifest]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                return RunManifest.from_json(handle.read())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, ValueError) as exc:
            raise CorruptShardError(self.manifest_path, exc) from exc

    # -- epoch tag -------------------------------------------------------

    @property
    def epoch_tag_path(self) -> str:
        return os.path.join(self.directory, EPOCH_TAG_NAME)

    def write_epoch_tag(self, epoch: int) -> None:
        """Stamp the store with its committed epoch (atomic).

        Written immediately after the committed manifest; the pair
        agreeing is what a warm boot verifies before trusting the RIB
        files (:class:`EpochMismatchError` otherwise).
        """
        self._atomic_write(
            self.epoch_tag_path,
            json.dumps({"epoch": epoch}).encode("utf-8"),
        )

    def read_epoch_tag(self) -> Optional[int]:
        try:
            with open(self.epoch_tag_path, "r", encoding="utf-8") as handle:
                data = json.loads(handle.read())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, ValueError) as exc:
            raise CorruptShardError(self.epoch_tag_path, exc) from exc
        epoch = data.get("epoch")
        if not isinstance(epoch, int):
            raise CorruptShardError(
                self.epoch_tag_path,
                ValueError(f"epoch tag holds {epoch!r}, expected an int"),
            )
        return epoch

    # -- OSPF checkpoints ------------------------------------------------

    def write_ospf_state(self, worker_id: int, state) -> int:
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(self._ospf_path(worker_id), payload)
        return len(payload)

    def read_ospf_state(self, worker_id: int):
        path = self._ospf_path(worker_id)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            try:
                return pickle.load(handle)
            except (pickle.UnpicklingError, EOFError, ValueError) as exc:
                raise CorruptShardError(path, exc) from exc

    # -- run lifecycle ---------------------------------------------------

    def clear_run_state(self) -> None:
        """Remove shard files, checkpoints, and temp leftovers.

        Called when a *fresh* (non-resume) run reuses a persistent store
        directory, so stale shards from an earlier run can't pollute
        ``merged_routes``.
        """
        for name in os.listdir(self.directory):
            if (
                name.endswith(".rib")
                or name.endswith(".ospf")
                or name == MANIFEST_NAME
                or name == EPOCH_TAG_NAME
                or ".tmp." in name
            ):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass
        self._files.clear()
        self.bytes_written = 0

    def close(self) -> None:
        if self._owned and os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "RouteStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
