"""Worker resource model: memory accounting and the wall-clock model.

The paper's headline results are resource phenomena: vanilla Batfish OOMs
at FatTree50 under a 100 GB ceiling, prefix sharding trades rounds for
peak memory, and per-worker time falls with the worker count until ~8
workers (Figures 4–9).  Those effects are arithmetic over route counts,
BDD sizes, capacities, and core counts — so we model them explicitly and
*measure* the inputs (candidate routes held, BDD operations performed,
bytes serialized) from the real computation.

Two outputs per run:

* **measured wall time** — the actual Python runtime (meaningful within a
  run, but Python-speed, not Java-speed);
* **modeled time/memory** — the cost model applied to measured work
  counts, with per-worker parallelism, GC pressure near the memory
  ceiling, and RPC overhead.  The benchmark figures report both.

Capacities default to a scaled-down "100 GB logical server" consistent
with the scaled-down topologies (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class SimulatedOOM(RuntimeError):
    """A worker exceeded its modeled memory capacity (the paper's OOM)."""

    def __init__(self, worker: str, used: int, capacity: int) -> None:
        super().__init__(
            f"worker {worker} out of memory: "
            f"{used / 1e6:.1f} MB used > {capacity / 1e6:.1f} MB capacity"
        )
        self.worker = worker
        self.used = used
        self.capacity = capacity


@dataclass(frozen=True)
class CostModel:
    """Constants translating measured work into modeled resources.

    The defaults are calibrated so that a FatTree with ``k`` pods consumes
    roughly the same *fraction* of a worker's capacity as the paper's
    FatTree``k`` does of a 100 GB logical server, keeping every OOM
    crossover at the same relative position in the sweeps.
    """

    # Scaled-model constants: routes are the dominant memory term at the
    # paper's scale, so the per-route cost is inflated to keep that true
    # at model scale (1000x fewer routes than the paper's networks).
    route_bytes: int = 2048         # one BGP candidate path in memory
    fib_entry_bytes: int = 256      # one compiled FIB entry (ECMP set)
    bdd_node_bytes: int = 24        # one BDD node table slot
    node_base_bytes: int = 4096     # fixed per switch model
    worker_base_bytes: int = 1 << 20

    cores_per_worker: int = 15      # the paper's logical-server core count
    route_update_cost: float = 1.0  # time units per processed candidate
    bdd_op_cost: float = 1.0        # time units per BDD apply step
    rpc_byte_cost: float = 0.0002   # time units per serialized byte
    rpc_message_cost: float = 5.0   # fixed per cross-worker message
    shard_overhead: float = 500.0   # per-shard setup + flush-to-disk

    # Garbage-collection pressure: time inflates as peak memory approaches
    # capacity (the paper's observed slowdown near the limit, §5.3/§5.7).
    gc_threshold: float = 0.5
    gc_max_penalty: float = 10.0

    def memory_bytes(
        self,
        candidate_routes: int,
        bdd_nodes: int,
        node_count: int,
        fib_entries: int = 0,
    ) -> int:
        return (
            self.worker_base_bytes
            + node_count * self.node_base_bytes
            + candidate_routes * self.route_bytes
            + fib_entries * self.fib_entry_bytes
            + bdd_nodes * self.bdd_node_bytes
        )

    def gc_factor(self, used: int, capacity: int) -> float:
        """Time inflation from GC pressure at ``used/capacity`` utilization.

        Quadratic above the threshold: collectors degrade gently at first
        and catastrophically near a full heap.
        """
        utilization = used / capacity if capacity else 0.0
        if utilization <= self.gc_threshold:
            return 1.0
        over = min(1.0, (utilization - self.gc_threshold) / (1 - self.gc_threshold))
        return 1.0 + over * over * (self.gc_max_penalty - 1.0)


#: Default modeled capacity of one logical server ("100 GB", scaled).
#: Benchmarks usually calibrate a tighter value via
#: :func:`repro.harness.scaling.capacity_for_sweep`.
DEFAULT_WORKER_CAPACITY = 256 << 20  # 256 MB of modeled state


@dataclass
class WorkerResources:
    """Per-worker resource tracking, updated by the worker as it runs."""

    name: str
    capacity: int = DEFAULT_WORKER_CAPACITY
    model: CostModel = field(default_factory=CostModel)
    node_count: int = 0

    candidate_routes: int = 0
    bdd_nodes: int = 0
    fib_entries: int = 0
    peak_bytes: int = 0
    current_bytes: int = 0

    route_work: float = 0.0       # Σ route updates (already ÷ by nothing)
    bdd_ops: int = 0
    rpc_bytes_sent: int = 0
    rpc_messages_sent: int = 0
    modeled_time: float = 0.0
    oom: bool = False
    retries: int = 0              # transient-RPC retries on this worker
    respawns: int = 0             # times this worker was respawned/reset

    def update_memory(
        self,
        candidate_routes: int,
        bdd_nodes: int,
        fib_entries: int = 0,
        enforce: bool = True,
    ) -> int:
        """Refresh the memory estimate; raises :class:`SimulatedOOM` when
        the capacity is exceeded and ``enforce`` is set."""
        self.candidate_routes = candidate_routes
        self.bdd_nodes = bdd_nodes
        self.fib_entries = fib_entries
        self.current_bytes = self.model.memory_bytes(
            candidate_routes, bdd_nodes, self.node_count, fib_entries
        )
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        if enforce and self.current_bytes > self.capacity:
            self.oom = True
            raise SimulatedOOM(self.name, self.current_bytes, self.capacity)
        return self.current_bytes

    def charge_route_round(self, updates_processed: int) -> float:
        """Model the time of one control-plane round on this worker."""
        base = (
            updates_processed
            * self.model.route_update_cost
            / self.model.cores_per_worker
        )
        elapsed = base * self.model.gc_factor(self.current_bytes, self.capacity)
        self.route_work += updates_processed
        self.modeled_time += elapsed
        return elapsed

    def charge_bdd_ops(self, ops: int) -> float:
        """Model the time of BDD work; ops on one engine serialize, so no
        per-core division (§2.2: a single shared node table blocks)."""
        elapsed = ops * self.model.bdd_op_cost * self.model.gc_factor(
            self.current_bytes, self.capacity
        )
        self.bdd_ops += ops
        self.modeled_time += elapsed
        return elapsed

    def charge_rpc(self, payload_bytes: int, messages: int = 1) -> float:
        elapsed = (
            payload_bytes * self.model.rpc_byte_cost
            + messages * self.model.rpc_message_cost
        )
        self.rpc_bytes_sent += payload_bytes
        self.rpc_messages_sent += messages
        self.modeled_time += elapsed
        return elapsed

    def charge_shard_overhead(self) -> float:
        self.modeled_time += self.model.shard_overhead
        return self.model.shard_overhead


@dataclass
class ClusterReport:
    """Aggregated resource view across all workers of a run."""

    workers: List[WorkerResources] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Modeled wall clock: the slowest worker bounds each phase; as a
        summary we report the max total (workers run the same rounds)."""
        return max((w.modeled_time for w in self.workers), default=0.0)

    @property
    def peak_worker_bytes(self) -> int:
        """The paper's reported metric: *per-worker* peak memory."""
        return max((w.peak_bytes for w in self.workers), default=0)

    @property
    def total_rpc_bytes(self) -> int:
        return sum(w.rpc_bytes_sent for w in self.workers)

    @property
    def total_rpc_messages(self) -> int:
        return sum(w.rpc_messages_sent for w in self.workers)

    @property
    def any_oom(self) -> bool:
        return any(w.oom for w in self.workers)

    @property
    def total_retries(self) -> int:
        """Transient-RPC retries absorbed by the supervision layer."""
        return sum(w.retries for w in self.workers)

    @property
    def total_respawns(self) -> int:
        """Workers respawned (process runtime) or reset (in-process)."""
        return sum(w.respawns for w in self.workers)

    def by_name(self) -> Dict[str, WorkerResources]:
        return {w.name: w for w in self.workers}
