"""The data plane orchestrator (DPO, §3.2, §4.3).

Workflow: (1) every worker builds the FIBs of its nodes from the route
store and compiles forwarding/ACL predicates into its *own* BDD engine;
(2) symbolic packets are injected at the query's sources and forwarded in
bulk-synchronous supersteps — each worker drains its local queue, packets
crossing a segment boundary are serialized, shipped by the sidecars, and
re-encoded into the receiving worker's engine.  Finals are collected back
into the controller's engine for property checking.

The per-step modeled time is the *maximum* of the workers' BDD-operation
counts: operations on one engine serialize against its node table, but
engines on different workers proceed in parallel — the §4.3 parallelism
argument, and the source of Figure 10's speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd.engine import BddEngine
from ..bdd.headerspace import HeaderEncoding
from ..bdd.serialize import deserialize, serialize
from ..config.loader import Snapshot
from ..dataplane.fib import NextHopResolver
from ..dataplane.forwarding import FinalPacket, FinalState
from ..dataplane.queries import PropertyChecker
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer, stopwatch
from .faults import RetryPolicy, WorkerFailure
from .runtime import Runtime, SequentialRuntime
from .sidecar import Sidecar
from .storage import RouteStore
from .worker import Worker


@dataclass
class DataPlaneStats:
    predicate_modeled_time: float = 0.0
    forward_modeled_time: float = 0.0
    predicate_seconds: float = 0.0
    forward_seconds: float = 0.0
    supersteps: int = 0
    packets_crossed: int = 0
    finals: int = 0
    # -- engine health ---------------------------------------------------
    peak_worker_nodes: int = 0     # max node_count any worker engine hit
    gc_reclaimed_nodes: int = 0    # nodes freed by between-query GCs
    dedup_bytes_saved: int = 0     # wire bytes saved by send-side dedup
    # -- fault tolerance -------------------------------------------------
    worker_failures: int = 0   # WorkerFailures seen during build/forward
    query_replays: int = 0     # queries rerun after a worker recovery

    @property
    def modeled_total(self) -> float:
        return self.predicate_modeled_time + self.forward_modeled_time


class DataPlaneOrchestrator:
    def __init__(
        self,
        workers: Sequence[Worker],
        sidecars: Sequence[Sidecar],
        snapshot: Snapshot,
        encoding: Optional[HeaderEncoding] = None,
        runtime: Optional[Runtime] = None,
        node_limit: int = 1 << 24,
        controller_node_limit: int = 1 << 24,
        bdd_kernel: str = "flat",
        supervisor=None,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.workers = list(workers)
        self.sidecars = list(sidecars)
        self.snapshot = snapshot
        self.encoding = encoding or HeaderEncoding()
        self.runtime = runtime or SequentialRuntime()
        self.node_limit = node_limit
        self.bdd_kernel = bdd_kernel
        self.engine: BddEngine = self.encoding.make_engine(
            node_limit=controller_node_limit, kernel=bdd_kernel
        )
        self.supervisor = supervisor
        self.retry_policy = retry_policy or RetryPolicy()
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        self.stats = DataPlaneStats()
        self._built = False
        self._store: Optional[RouteStore] = None
        self._transits: List[str] = []

    # -- fleet membership ------------------------------------------------

    def drop_worker(self, worker_id: int) -> None:
        """Remove a lost worker (loss migration).

        Worker and sidecar are dropped in tandem so the forward loop's
        ``zip(self.workers, self.sidecars, ...)`` stays aligned; the
        caller invalidates the build so the next query reloads the
        migrated routes from the store.
        """
        self.workers = [w for w in self.workers if w.worker_id != worker_id]
        self.sidecars = [
            s for s in self.sidecars if s.worker_id != worker_id
        ]
        self._built = False

    def set_fleet(
        self, workers: Sequence[Worker], sidecars: Sequence[Sidecar]
    ) -> None:
        """Rebind the active fleet (a healed worker rejoined)."""
        self.workers = list(workers)
        self.sidecars = list(sidecars)
        self._built = False

    # -- fault handling --------------------------------------------------

    def _recover(self, failure: WorkerFailure) -> None:
        self.stats.worker_failures += 1
        if self.supervisor is None:
            raise failure
        self.supervisor.recover(failure)

    # -- phase 1: FIBs + predicates --------------------------------------

    def build(self, store: RouteStore) -> None:
        """Build FIBs and predicates on every worker.

        Queries are the recovery unit of the DPV phase: a worker failure
        here (or mid-forward) resets ``_built``, the supervisor recovers
        the worker, and the whole build reruns — ``build_dataplane`` is
        idempotent (fresh engine per call), and a recovered worker's
        routes come back from the store plus its OSPF checkpoint.
        """
        self._store = store
        attempts = 0
        while True:
            try:
                self._build_once(store)
                return
            except WorkerFailure as failure:
                attempts += 1
                self._built = False
                if attempts > self.retry_policy.max_query_retries:
                    raise
                self._recover(failure)

    def invalidate(self, snapshot=None) -> None:
        """Force the next :meth:`build` to run (and optionally rebind the
        snapshot) — the serving path calls this after every committed
        delta so FIBs and predicates reflect the new routes."""
        if snapshot is not None:
            self.snapshot = snapshot
        self._built = False

    def _build_once(self, store: RouteStore) -> None:
        if self._built:
            return
        with stopwatch() as clock, self.tracer.span(
            "dpo.build", category="dpo"
        ) as span:
            resolver = NextHopResolver.from_snapshot(self.snapshot)
            ops_list = self.runtime.map(
                [
                    (
                        lambda w=w: w.build_dataplane(
                            store,
                            resolver,
                            self.encoding,
                            self.node_limit,
                            self.bdd_kernel,
                        )
                    )
                    for w in self.workers
                ]
            )
            deltas = []
            for worker, ops in zip(self.workers, ops_list):
                deltas.append(worker.resources.charge_bdd_ops(ops))
            if deltas:
                self.stats.predicate_modeled_time += max(deltas)
            span.set(bdd_ops=sum(ops_list))
        self.stats.predicate_seconds += clock.seconds
        self._built = True

    # -- waypoints ------------------------------------------------------------

    def install_waypoints(self, transits: Sequence[str]) -> None:
        # Remembered so a mid-query recovery (which rebuilds the data
        # plane from scratch) can re-install them before the replay.
        self._transits = list(transits)
        for worker in self.workers:
            worker.clear_waypoints()
            for index, transit in enumerate(transits):
                worker.set_waypoint_bit(transit, index)

    # -- phase 2: forwarding -----------------------------------------------------

    def forward(
        self, sources: Sequence[str], header_bdd: int, trace: bool = False
    ) -> List[FinalPacket]:
        """Distributed symbolic forwarding; finals land in ``self.engine``.

        ``header_bdd`` is a BDD in the *controller's* engine; it is
        serialized once and re-encoded by each worker hosting a source.
        A worker failure mid-query is recovered by respawning the worker,
        rebuilding the data plane (from the route store), and replaying
        the query from injection — queries are stateless between runs.
        """
        assert self._built, "call build() before forward()"
        attempts = 0
        while True:
            try:
                return self._forward_once(sources, header_bdd, trace)
            except WorkerFailure as failure:
                attempts += 1
                if attempts > self.retry_policy.max_query_retries:
                    raise
                self._recover(failure)
                self._built = False
                assert self._store is not None
                self.build(self._store)
                self.install_waypoints(self._transits)
                self.stats.query_replays += 1

    def _forward_once(
        self, sources: Sequence[str], header_bdd: int, trace: bool = False
    ) -> List[FinalPacket]:
        with stopwatch() as clock, self.tracer.span(
            "dpo.forward", category="dpo", sources=len(list(sources))
        ) as span:
            payload = serialize(self.engine, header_bdd)
            source_list = list(sources)
            for worker in self.workers:
                worker.reset_dataplane_run()
                worker.inject_header(source_list, payload, trace)
            superstep = 0
            while True:
                clocks_before = [
                    w.resources.modeled_time for w in self.workers
                ]
                with self.tracer.span(
                    "dpo.superstep", category="dpo", step=superstep
                ) as step_span:
                    results = self.runtime.map(
                        [w.drain for w in self.workers]
                    )
                    batch_count = 0
                    crossed = 0
                    for worker, sidecar, (_, batches, ops) in zip(
                        self.workers, self.sidecars, results
                    ):
                        worker.resources.charge_bdd_ops(ops)
                        for batch in batches.values():
                            crossed += len(batch.envelopes)
                            sidecar.send_packets(batch)
                            batch_count += 1
                    step_span.set(batches=batch_count, crossed=crossed)
                self.stats.packets_crossed += crossed
                superstep += 1
                deltas = [
                    w.resources.modeled_time - before
                    for w, before in zip(self.workers, clocks_before)
                ]
                if deltas:
                    self.stats.forward_modeled_time += max(deltas)
                self.stats.supersteps += 1
                if self.metrics is not None:
                    self.metrics.counter("dpo.supersteps").inc()
                    self.metrics.counter("dpo.packets_crossed").inc(crossed)
                if batch_count == 0 and not any(
                    w.pending_packets for w in self.workers
                ):
                    break
            with self.tracer.span("dpo.collect_finals", category="dpo"):
                finals = self._collect_finals()
            self.stats.finals += len(finals)
            span.set(supersteps=superstep, finals=len(finals))
        self.stats.forward_seconds += clock.seconds
        self._publish_engine_metrics()
        return finals

    def worker_engine_counters(self) -> List[Dict[str, float]]:
        """Per-worker engine health counters (post-build; may be empty)."""
        return [worker.engine_counters() for worker in self.workers]

    def _publish_engine_metrics(self) -> None:
        """Fold worker engine + sidecar dedup telemetry into the stats
        (and the metrics registry, when one is attached)."""
        nodes = 0
        peak = 0
        reclaimed = 0
        hits = 0.0
        misses = 0.0
        for counters in self.worker_engine_counters():
            if not counters:
                continue
            nodes += int(counters.get("node_count", 0))
            peak = max(peak, int(counters.get("peak_node_count", 0)))
            reclaimed += int(counters.get("gc_reclaimed_nodes", 0))
            hits += counters.get("cache_hits", 0)
            misses += counters.get("cache_misses", 0)
        saved = sum(
            sidecar.dedup_counters()["bytes_saved"]
            for sidecar in self.sidecars
        )
        self.stats.peak_worker_nodes = max(self.stats.peak_worker_nodes, peak)
        self.stats.gc_reclaimed_nodes = reclaimed
        self.stats.dedup_bytes_saved = saved
        if self.metrics is None:
            return
        self.metrics.gauge("bdd.node_count").set(nodes)
        self.metrics.gauge("bdd.peak_worker_node_count").set(peak)
        self.metrics.gauge("bdd.gc_reclaimed_nodes").set(reclaimed)
        self.metrics.gauge("rpc.dedup_bytes_saved").set(saved)
        lookups = hits + misses
        if lookups:
            self.metrics.gauge("bdd.cache_hit_rate").set(hits / lookups)

    def _collect_finals(self) -> List[FinalPacket]:
        finals: List[FinalPacket] = []
        for worker in self.workers:
            for record in worker.collect_finals():
                finals.append(
                    FinalPacket(
                        state=record["state"],
                        node=record["node"],
                        bdd=deserialize(self.engine, record["payload"]),
                        source=record["source"],
                        hops=record["hops"],
                        path=record["path"],
                        out_port=record["out_port"],
                    )
                )
        return finals

    # -- property checking ------------------------------------------------------------

    def checker(self) -> PropertyChecker:
        return PropertyChecker(
            self.engine,
            self.encoding,
            self.forward,
            install_waypoints=self.install_waypoints,
        )
