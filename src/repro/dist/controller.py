"""The S2 controller (§3.2): parser, partitioner, CPO, and DPO.

:class:`S2Controller` wires the whole distributed pipeline together for
one snapshot: partition the topology, instantiate workers and sidecars,
run the sharded control-plane fixed point, build the distributed data
plane, and hand out a property checker.  :mod:`repro.core` wraps this in
the high-level :class:`~repro.core.s2.S2Verifier` API.

The controller is also where fault tolerance comes together:

* a :class:`WorkerSupervisor` recovers failed workers (respawn in the
  process runtime, in-place reset in the in-process runtimes) and
  replays the OSPF checkpoint into them, so the CPO can rerun the
  interrupted shard;
* if recovery itself fails (:class:`~repro.dist.faults.RespawnError`) or
  the retry budget is exhausted, :meth:`S2Controller.run_control_plane`
  degrades to the monolithic :class:`~repro.routing.engine.
  SimulationEngine` and writes *bit-identical* per-shard results into
  the route store (the engines are equivalence-tested);
* with a persistent ``store_dir``, a :class:`~repro.dist.storage.
  RunManifest` records converged shards and the OSPF checkpoint, and
  :meth:`S2Controller.resume` restarts a killed run, skipping them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bdd.headerspace import HeaderEncoding
from ..config.loader import Snapshot
from ..net.ip import Prefix
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import TelemetryCollector, TelemetrySource
from ..obs.tracer import NULL_TRACER, Tracer
from ..obs.merge import merge_shards
from ..routing.engine import BgpResult
from ..routing.route import BgpRoute
from .cpo import ControlPlaneOrchestrator, ControlPlaneStats
from .dpo import DataPlaneOrchestrator, DataPlaneStats
from .faults import (
    FaultPlan,
    RespawnError,
    RetryPolicy,
    StaleEpochError,
    WorkerFailure,
)
from .partition import PartitionResult, partition
from .resources import (
    DEFAULT_WORKER_CAPACITY,
    ClusterReport,
    CostModel,
    WorkerResources,
)
from .runtime import Runtime, make_runtime
from .sharding import PrefixShard, make_shards, validate_shards
from .sidecar import Sidecar
from .storage import RouteStore, RunManifest
from .worker import Worker


@dataclass
class S2Options:
    """Tuning knobs of an S2 run (defaults mirror the paper's setup at
    model scale: METIS partitioning, 20 shards, 100GB-per-worker)."""

    num_workers: int = 4
    partition_scheme: str = "metis"
    num_shards: int = 0                  # 0 disables prefix sharding
    worker_capacity: int = DEFAULT_WORKER_CAPACITY
    cost_model: CostModel = field(default_factory=CostModel)
    encoding: HeaderEncoding = field(default_factory=HeaderEncoding)
    node_limit: int = 1 << 22            # per-worker BDD table capacity
    controller_node_limit: int = 1 << 24
    bdd_kernel: str = "flat"         # "flat" (array kernel) | "dict"
    #                                  (legacy fallback); excluded from
    #                                  the options fingerprint — both
    #                                  kernels are differential-tested to
    #                                  produce bit-identical results
    max_rounds: int = 200
    max_hops: int = 24
    runtime: str = "sequential"      # "sequential" | "threaded" |
    #                                  "process" | "socket"
    worker_hosts: Optional[Sequence[str]] = None  # socket runtime: dial
    #                                  these host:port listeners instead
    #                                  of forking local workers
    seed: int = 7
    store_dir: Optional[str] = None
    enforce_memory: bool = True
    refine_shards: bool = False      # §7 runtime dependency refinement
    # -- fault tolerance -------------------------------------------------
    fault_plan: Optional[FaultPlan] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint: bool = True          # manifest + OSPF checkpoint (needs
    #                                  a persistent store_dir to matter)
    # -- observability ---------------------------------------------------
    # Like the supervision knobs, these are excluded from the options
    # fingerprint: they change how a run is observed, never its results.
    trace_out: Optional[str] = None      # merged Chrome trace-event file
    trace_dir: Optional[str] = None      # per-participant JSONL shards
    metrics_out: Optional[str] = None    # metrics snapshot JSON
    telemetry: bool = True               # stream worker telemetry frames
    telemetry_interval: float = 0.25     # min seconds between frames


def options_fingerprint(options: S2Options, snapshot: Snapshot) -> str:
    """A digest of everything that shapes a run's *results*.

    Stored in the manifest and checked by :meth:`S2Controller.resume`:
    resuming with options that would change the computed RIBs (different
    sharding, partitioning, seed, or snapshot) is refused.  Supervision
    knobs (``fault_plan``, ``retry_policy``, ``runtime``) are excluded on
    purpose — they change *how* the run executes, never what it computes,
    so a crashed process-runtime run may be resumed sequentially.
    """
    payload = {
        "version": 1,
        "snapshot": snapshot.name,
        "nodes": sorted(snapshot.configs),
        "num_workers": options.num_workers,
        "partition_scheme": options.partition_scheme,
        "num_shards": options.num_shards,
        "seed": options.seed,
        "max_rounds": options.max_rounds,
        "refine_shards": options.refine_shards,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:16]


class WorkerSupervisor:
    """Recovers failed workers and replays checkpoints into them.

    One recovery has three steps: (1) give the worker a fresh execution
    context — :meth:`~repro.dist.process_runtime.ProcessWorkerPool.
    respawn` for process workers, :meth:`~repro.dist.worker.Worker.reset`
    in-process — keeping the proxy/worker *identity* so orchestrator and
    sidecar references stay valid; (2) replay the OSPF checkpoint taken
    after the IGP fixed point; (3) the caller (CPO/DPO) replays the
    interrupted unit of work (shard or query), which is idempotent.
    """

    def __init__(
        self,
        workers: Sequence[Any],
        store: RouteStore,
        pool=None,
        persistent: bool = False,
        sidecars: Optional[Sequence[Sidecar]] = None,
    ) -> None:
        self.workers = list(workers)
        self.store = store
        self.pool = pool
        self.persistent = persistent
        self.sidecars = list(sidecars) if sidecars else []
        self._ospf_states: Dict[int, Any] = {}
        self.recoveries = 0
        # Serving mode: the epoch a recovered worker must be re-seeded
        # to before it may rejoin the fixed point.  None outside serving.
        self.epoch: Optional[int] = None
        self.stale_epoch_rejections = 0
        # Serving mode: the session's event journal, when attached —
        # respawns and stale-epoch rejections become typed records.
        self.journal: Optional[Any] = None

    # -- OSPF checkpoint --------------------------------------------------

    def checkpoint_ospf(self) -> None:
        """Capture every worker's installed IGP routes (once, post-IGP)."""
        for worker in self.workers:
            state = worker.export_ospf_state()
            self._ospf_states[worker.worker_id] = state
            if self.persistent:
                self.store.write_ospf_state(worker.worker_id, state)

    def restore_ospf(self) -> bool:
        """Resume path: reload the IGP result from the store, skip rounds.

        Returns False when any worker's checkpoint is missing, in which
        case the caller falls back to re-running the IGP fixed point.
        """
        states: Dict[int, Any] = {}
        for worker in self.workers:
            state = self.store.read_ospf_state(worker.worker_id)
            if state is None:
                return False
            states[worker.worker_id] = state
        for worker in self.workers:
            worker.restore_ospf_state(states[worker.worker_id])
        self._ospf_states = states
        return True

    # -- recovery ---------------------------------------------------------

    def recover(self, failure: WorkerFailure) -> None:
        """Bring the failed worker back; raises RespawnError on failure."""
        worker_id = failure.worker_id
        if worker_id is None or not (0 <= worker_id < len(self.workers)):
            raise failure
        self.recoveries += 1
        if isinstance(failure, StaleEpochError):
            self.stale_epoch_rejections += 1
            if self.journal is not None:
                self.journal.record(
                    "stale_epoch_rejection",
                    worker=worker_id,
                    epoch=self.epoch,
                    command=failure.command,
                )
        if self.journal is not None:
            self.journal.record(
                "worker_respawn",
                worker=worker_id,
                reason=type(failure).__name__,
                epoch=self.epoch,
                recoveries=self.recoveries,
            )
        if self.pool is not None:
            self.pool.respawn(worker_id)
        else:
            worker = self.workers[worker_id]
            worker.reset()
            worker.resources.respawns += 1
        self.workers[worker_id].restore_ospf_state(
            self._ospf_states.get(worker_id)
        )
        if self.epoch is not None:
            # Fresh execution contexts come up at epoch -1 (stale by
            # construction); re-seed before the shard replay so the
            # fence admits the recovered worker.
            self.workers[worker_id].begin_epoch(self.epoch)
        # The respawned worker lost its receive-side memory: every
        # surviving sender's dedup cache toward it would under-charge
        # (and a real dedup transport would dangle), so invalidate on
        # the incarnation change.
        for sidecar in self.sidecars:
            sidecar.on_peer_respawn(worker_id)

    def forget_checkpoints(self) -> None:
        """Drop the in-memory OSPF checkpoints (full reconfigure: the
        old IGP result no longer describes the snapshot)."""
        self._ospf_states.clear()


class S2Controller:
    """Owns the workers, sidecars, orchestrators, and the route store."""

    def __init__(
        self,
        snapshot: Snapshot,
        options: Optional[S2Options] = None,
        resuming: bool = False,
    ) -> None:
        self.snapshot = snapshot
        self.options = options or S2Options()
        opts = self.options
        self.partition: PartitionResult = partition(
            snapshot,
            opts.num_workers,
            scheme=opts.partition_scheme,
            seed=opts.seed,
        )
        self.store = RouteStore(opts.store_dir)
        capacity = opts.worker_capacity if opts.enforce_memory else (1 << 62)
        # -- observability -------------------------------------------------
        # Tracing is on iff an output was requested; shards always live in
        # a directory (derived from trace_out when none was given) so the
        # process runtime and the merge step share one layout.
        self.trace_dir: Optional[str] = opts.trace_dir or (
            opts.trace_out + ".shards" if opts.trace_out else None
        )
        self.metrics = MetricsRegistry()
        # Streaming telemetry: every runtime pushes frames into this
        # collector (remote runtimes piggyback them on RPC responses;
        # in-process workers call the sink at phase boundaries).
        self.telemetry = TelemetryCollector(self.metrics)
        telemetry_interval = (
            opts.telemetry_interval if opts.telemetry else 0.0
        )
        if self.trace_dir:
            self.tracer: Tracer = Tracer(
                process="controller",
                sink=os.path.join(self.trace_dir, "controller.jsonl"),
            )
        else:
            self.tracer = NULL_TRACER
        self._worker_tracers: List[Tracer] = []
        if opts.fault_plan is not None:
            opts.fault_plan.observer = self._observe_fault
        self._pool = None
        if opts.runtime == "process":
            # Real OS processes, one per worker; phases run through a
            # thread pool whose threads block on the worker pipes, so the
            # worker processes execute concurrently.
            from .process_runtime import ProcessWorkerPool

            self._pool = ProcessWorkerPool(
                snapshot=snapshot,
                assignment=self.partition.assignment,
                num_workers=opts.num_workers,
                capacity=capacity,
                cost_model=opts.cost_model,
                max_hops=opts.max_hops,
                retry_policy=opts.retry_policy,
                fault_plan=opts.fault_plan,
                trace_dir=self.trace_dir,
                tracer=self.tracer,
                telemetry_interval=telemetry_interval,
                telemetry_sink=self.telemetry.ingest,
            )
            self.workers = self._pool.proxies
            self.runtime: Runtime = make_runtime("threaded")
        elif opts.runtime == "socket":
            # Workers behind TCP servers speaking the framed RPC protocol
            # (repro.dist.transport): localhost processes by default, or
            # remote listeners via worker_hosts.  Same threaded phase
            # dispatch as the process runtime.
            from .socket_runtime import SocketWorkerPool

            self._pool = SocketWorkerPool(
                snapshot=snapshot,
                assignment=self.partition.assignment,
                num_workers=opts.num_workers,
                capacity=capacity,
                cost_model=opts.cost_model,
                max_hops=opts.max_hops,
                retry_policy=opts.retry_policy,
                fault_plan=opts.fault_plan,
                trace_dir=self.trace_dir,
                tracer=self.tracer,
                metrics=self.metrics,
                worker_hosts=opts.worker_hosts,
                telemetry_interval=telemetry_interval,
                telemetry_sink=self.telemetry.ingest,
            )
            self.workers = self._pool.proxies
            self.runtime = make_runtime("threaded")
        else:
            if self.trace_dir:
                # In-process workers write their own shards too, so the
                # merged timeline has one track per worker regardless of
                # runtime.
                self._worker_tracers = [
                    Tracer(
                        process=f"worker{i}",
                        sink=os.path.join(
                            self.trace_dir, f"worker{i}.0.jsonl"
                        ),
                    )
                    for i in range(opts.num_workers)
                ]
            self.runtime = make_runtime(opts.runtime)
            self.workers: List[Worker] = [
                Worker(
                    worker_id=i,
                    snapshot=snapshot,
                    assignment=self.partition.assignment,
                    resources=WorkerResources(
                        name=f"worker{i}",
                        capacity=capacity,
                        model=opts.cost_model,
                    ),
                    max_hops=opts.max_hops,
                    tracer=(
                        self._worker_tracers[i]
                        if self._worker_tracers
                        else None
                    ),
                )
                for i in range(opts.num_workers)
            ]
            # In-process fault injection happens inside the worker phases
            # (the process runtime injects at the proxy call layer).
            for worker in self.workers:
                worker.fault_injector = opts.fault_plan
            if telemetry_interval > 0:
                for worker in self.workers:
                    worker.attach_telemetry(
                        TelemetrySource(
                            worker, interval=telemetry_interval
                        ),
                        sink=self.telemetry.ingest,
                    )
        self.sidecars = [
            Sidecar(worker, fault_plan=opts.fault_plan, metrics=self.metrics)
            for worker in self.workers
        ]
        for sidecar in self.sidecars:
            sidecar.register_peers(self.sidecars)
        self.shards: List[PrefixShard] = []
        if opts.num_shards and opts.num_shards > 1:
            self.shards = make_shards(snapshot, opts.num_shards, seed=opts.seed)
            problems = validate_shards(self.shards, snapshot)
            if problems:
                raise ValueError(f"invalid shards: {problems[:3]}")
        # -- checkpoint/resume state --------------------------------------
        self.manifest: Optional[RunManifest] = None
        fingerprint = options_fingerprint(opts, snapshot)
        persistent = opts.store_dir is not None and opts.checkpoint
        if persistent and resuming:
            manifest = self.store.read_manifest()
            if manifest is None:
                raise ValueError(
                    f"nothing to resume: no manifest in {self.store.directory}"
                )
            if manifest.options_hash != fingerprint:
                raise ValueError(
                    "refusing to resume: the store was written with "
                    f"incompatible options (manifest hash "
                    f"{manifest.options_hash}, current {fingerprint})"
                )
            self.manifest = manifest
        elif persistent:
            # A fresh run over a reused spool directory: stale shards
            # from an earlier (possibly killed) run must not pollute
            # merged_routes.
            self.store.clear_run_state()
            self.manifest = RunManifest(
                options_hash=fingerprint,
                seed=opts.seed,
                num_workers=opts.num_workers,
                num_shards=max(1, len(self.shards) or 1),
            )
            self.store.write_manifest(self.manifest)
        self.supervisor = WorkerSupervisor(
            self.workers,
            self.store,
            pool=self._pool,
            persistent=persistent,
            sidecars=self.sidecars,
        )
        self.cpo = ControlPlaneOrchestrator(
            self.workers,
            self.sidecars,
            self.store,
            runtime=self.runtime,
            max_rounds=opts.max_rounds,
            fault_plan=opts.fault_plan,
            supervisor=self.supervisor,
            retry_policy=opts.retry_policy,
            manifest=self.manifest,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.dpo = DataPlaneOrchestrator(
            self.workers,
            self.sidecars,
            snapshot,
            encoding=opts.encoding,
            runtime=self.runtime,
            node_limit=opts.node_limit,
            controller_node_limit=opts.controller_node_limit,
            bdd_kernel=opts.bdd_kernel,
            supervisor=self.supervisor,
            retry_policy=opts.retry_policy,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self._cp_done = False

    def _observe_fault(
        self, kind: str, worker_id: Optional[int], command: Optional[str]
    ) -> None:
        """FaultPlan observer: count injections and mark the timeline."""
        self.metrics.counter(f"faults.{kind}").inc()
        self.tracer.instant(
            "fault.injected", kind=kind, worker=worker_id, command=command
        )

    # -- resume -----------------------------------------------------------

    @classmethod
    def resume(
        cls, snapshot: Snapshot, options: S2Options
    ) -> "S2Controller":
        """Reattach to a killed run's persistent store and continue it.

        The next :meth:`run_control_plane` restores the OSPF checkpoint
        (if taken) and skips every shard the manifest records as
        converged; only the interrupted remainder is recomputed.
        """
        if options is None or options.store_dir is None:
            raise ValueError("resume() requires options.store_dir")
        if not options.checkpoint:
            raise ValueError("resume() requires options.checkpoint")
        return cls(snapshot, options, resuming=True)

    # -- serving support (epoch-fenced deltas) -----------------------------

    def _on_each_worker(self, fn) -> None:
        """Apply ``fn`` to every worker, healing one failure per worker.

        A worker that died *between* epochs (no shard in flight, so the
        CPO's replay machinery never sees it) first surfaces here when
        the next delta fans out.  Route the failure through supervisor
        recovery — respawn from the pool's current configure args, OSPF
        checkpoint restore, epoch re-seed — then retry once on the
        recovered worker; a second failure propagates to the caller.
        """
        for index in range(len(self.workers)):
            try:
                fn(self.workers[index])
            except WorkerFailure as failure:
                if failure.worker_id is None:
                    failure.worker_id = index
                self.supervisor.recover(failure)
                fn(self.workers[index])

    def begin_epoch(self, epoch: int) -> None:
        """Seed every worker — and the fence plumbing — with ``epoch``.

        From here on, ``begin_shard`` carries the epoch and any worker
        at a different one (a respawn that missed the delta, a healed
        partition survivor) raises :class:`StaleEpochError` and goes
        through supervisor recovery before touching the shard.
        """
        self.supervisor.epoch = epoch
        self.cpo.epoch = epoch
        self._on_each_worker(lambda worker: worker.begin_epoch(epoch))

    def make_cpo(
        self, manifest: Optional[RunManifest], epoch: Optional[int] = None
    ) -> ControlPlaneOrchestrator:
        """Bind a fresh orchestrator (and manifest) for one recompute.

        Serving reruns the control plane once per committed delta and
        wants per-epoch stats, so each recompute gets its own CPO while
        the workers, sidecars, runtime, and supervisor carry over.
        """
        opts = self.options
        self.manifest = manifest
        self.cpo = ControlPlaneOrchestrator(
            self.workers,
            self.sidecars,
            self.store,
            runtime=self.runtime,
            max_rounds=opts.max_rounds,
            fault_plan=opts.fault_plan,
            supervisor=self.supervisor,
            retry_policy=opts.retry_policy,
            manifest=manifest,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        if epoch is not None:
            self.cpo.epoch = epoch
            self.supervisor.epoch = epoch
        self._cp_done = False
        return self.cpo

    def rebind_snapshot(
        self,
        snapshot: Snapshot,
        changed_hosts: Sequence[str] = (),
        epoch: Optional[int] = None,
    ) -> None:
        """Incremental rebind for announce-only deltas.

        Topology, partition, and the IGP result are unchanged, so only
        the changed hosts' router models are rebuilt (their installed
        OSPF routes replayed from the worker's live checkpoint); the
        caller then recomputes just the dirty shards.
        """
        self.snapshot = snapshot
        changed = tuple(changed_hosts)
        if self._pool is not None:
            # A worker respawned mid-epoch is re-seeded from the pool's
            # spawn args; those must describe the *current* snapshot.
            self._pool.update_snapshot(snapshot)
        self._on_each_worker(
            lambda worker: worker.rebind_snapshot(snapshot, changed, epoch)
        )
        if epoch is not None:
            self.supervisor.epoch = epoch
            self.cpo.epoch = epoch
        self.dpo.invalidate(snapshot)
        self._cp_done = False

    def reconfigure(
        self, snapshot: Snapshot, epoch: Optional[int] = None
    ) -> None:
        """Full rebind for topology/policy deltas.

        Repartitions the new snapshot and logically respawns every
        worker on it; the IGP fixed point and all shards recompute.
        """
        opts = self.options
        self.snapshot = snapshot
        self.partition = partition(
            snapshot,
            opts.num_workers,
            scheme=opts.partition_scheme,
            seed=opts.seed,
        )
        assignment = self.partition.assignment
        # Old-snapshot IGP checkpoints are meaningless for the new one;
        # drop them *before* any recovery so a respawn mid-reconfigure
        # doesn't restore stale OSPF state.
        self.supervisor.forget_checkpoints()
        if self._pool is not None:
            attempts = 0
            while True:
                try:
                    self._pool.reconfigure(snapshot, assignment)
                    break
                except WorkerFailure as failure:
                    attempts += 1
                    if attempts > len(self.workers):
                        raise
                    self.supervisor.recover(failure)
        else:
            for worker in self.workers:
                worker.snapshot = snapshot
                worker.assignment = assignment
                worker.reset()
        # Every worker was logically respawned: receive-side sequence
        # and dedup state is gone everywhere, so every sender's caches
        # must go too.
        for sidecar in self.sidecars:
            sidecar.invalidate_send_caches()
        if opts.num_shards and opts.num_shards > 1:
            self.shards = make_shards(
                snapshot, opts.num_shards, seed=opts.seed
            )
            problems = validate_shards(self.shards, snapshot)
            if problems:
                raise ValueError(f"invalid shards: {problems[:3]}")
        if epoch is not None:
            self.begin_epoch(epoch)
        self.dpo.invalidate(snapshot)
        self._cp_done = False

    def rebuild_data_plane(self) -> DataPlaneStats:
        """Force a fresh distributed data plane from the current store."""
        self.dpo.invalidate()
        self.dpo.build(self.store)
        return self.dpo.stats

    # -- pipeline ---------------------------------------------------------

    def run_control_plane(self) -> ControlPlaneStats:
        """The sharded fixed point, with graceful degradation.

        A :class:`WorkerFailure` escaping the CPO means supervision is
        out of options (respawn failed, or the shard retry budget is
        spent); rather than abandon the run, the controller recomputes
        the remaining shards on the monolithic engine — slower, but
        bit-identical (the engines are equivalence-tested) — and the
        stats record the degradation.
        """
        try:
            stats = self.cpo.run(
                self.shards if self.shards else None,
                refine=self.options.refine_shards,
            )
        except WorkerFailure:
            stats = self._sequential_fallback()
        self._cp_done = True
        return stats

    def _sequential_fallback(self) -> ControlPlaneStats:
        """Recompute unfinished shards on the monolithic engine."""
        from ..routing.engine import SimulationEngine

        stats = self.cpo.stats
        stats.sequential_fallback = True
        engine = SimulationEngine(
            self.snapshot, max_rounds=self.options.max_rounds
        )
        engine.run_ospf()
        shard_list: List[Optional[PrefixShard]] = (
            list(self.shards) if self.shards else [None]
        )
        for shard in shard_list:
            flush_index = shard.index if shard is not None else 0
            if self.manifest is not None and self.manifest.is_shard_done(
                flush_index
            ):
                continue
            result = engine.run_bgp_shard(
                shard.prefixes if shard is not None else None
            )
            per_worker: Dict[int, Dict] = {
                worker_id: {}
                for worker_id in range(self.options.num_workers)
            }
            selected_total = 0
            for hostname, selected in result.items():
                if not selected:
                    continue  # the workers' flush omits empty nodes too
                owner = self.partition.assignment[hostname]
                per_worker[owner][hostname] = selected
                selected_total += sum(
                    len(routes) for routes in selected.values()
                )
            for worker_id, routes in per_worker.items():
                stats.route_flush_bytes += self.store.write_shard(
                    worker_id, flush_index, routes
                )
            stats.total_selected_routes += selected_total
            stats.shards_run += 1
            if self.manifest is not None:
                self.manifest.mark_shard(flush_index)
                self.store.write_manifest(self.manifest)
        stats.bgp_rounds += engine.stats.bgp_rounds
        stats.ospf_rounds += engine.stats.ospf_rounds
        return stats

    def build_data_plane(self) -> DataPlaneStats:
        if not self._cp_done:
            self.run_control_plane()
        self.dpo.build(self.store)
        return self.dpo.stats

    def checker(self):
        self.build_data_plane()
        return self.dpo.checker()

    # -- results ------------------------------------------------------------

    def report(self) -> ClusterReport:
        return ClusterReport(workers=[w.resources for w in self.workers])

    def collected_ribs(self) -> BgpResult:
        """Merge every worker's stored shards: the network-wide RIBs.

        This is the oracle interface the equivalence tests compare against
        the monolithic engine.
        """
        merged: BgpResult = {}
        for worker in self.workers:
            for node, routes in self.store.merged_routes(
                worker.worker_id
            ).items():
                merged[node] = dict(routes)
        for name in self.snapshot.configs:
            merged.setdefault(name, {})
        return merged

    def total_route_count(self) -> int:
        return sum(
            len(routes)
            for node_routes in self.collected_ribs().values()
            for routes in node_routes.values()
        )

    def prefix_holders(self) -> List[str]:
        holders = []
        for hostname, config in sorted(self.snapshot.configs.items()):
            if config.bgp is not None and config.bgp.networks:
                holders.append(hostname)
        return holders

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry snapshot plus folded pipeline/worker telemetry.

        Safe to take mid-run: instruments are live, the stats dataclasses
        are whatever the orchestrators have accumulated so far.
        """
        snapshot = self.metrics.snapshot()
        snapshot["control_plane"] = asdict(self.cpo.stats)
        snapshot["data_plane"] = asdict(self.dpo.stats)
        snapshot["workers"] = [
            {
                "name": r.name,
                "candidate_routes": r.candidate_routes,
                "bdd_nodes": r.bdd_nodes,
                "fib_entries": r.fib_entries,
                "peak_bytes": r.peak_bytes,
                "current_bytes": r.current_bytes,
                "route_work": r.route_work,
                "bdd_ops": r.bdd_ops,
                "rpc_bytes_sent": r.rpc_bytes_sent,
                "rpc_messages_sent": r.rpc_messages_sent,
                "modeled_time": r.modeled_time,
                "retries": r.retries,
                "respawns": r.respawns,
                "oom": r.oom,
            }
            for r in (w.resources for w in self.workers)
        ]
        if self.options.fault_plan is not None:
            snapshot["faults_fired"] = dict(
                self.options.fault_plan.fired_by_kind
            )
        snapshot["recoveries"] = self.supervisor.recoveries
        snapshot["telemetry"] = self.telemetry.summary()
        if self._pool is not None and hasattr(
            self._pool, "transport_counters"
        ):
            snapshot["transport"] = self._pool.transport_counters()
        return snapshot

    def _finalize_observability(self) -> None:
        """Flush tracers, merge trace shards, write the metrics file.

        Runs as the innermost step of :meth:`close`, after the worker
        pool is down — process-runtime shards are complete only once
        their writers have exited.
        """
        opts = self.options
        for tracer in self._worker_tracers:
            tracer.finish()
        if self.tracer.enabled:
            with self.tracer.span("controller.finalize"):
                pass
            self.tracer.finish()
            if opts.trace_out and self.trace_dir:
                merge_shards(
                    self.trace_dir,
                    opts.trace_out,
                    run_metadata={
                        "snapshot": self.snapshot.name,
                        "runtime": opts.runtime,
                        "num_workers": opts.num_workers,
                        "num_shards": opts.num_shards,
                    },
                )
        if opts.metrics_out:
            folded = self.metrics_snapshot()
            self.metrics.write_json(
                opts.metrics_out,
                extra={
                    key: value
                    for key, value in folded.items()
                    if key not in ("counters", "gauges", "histograms")
                },
            )

    def close(self) -> None:
        """Tear everything down; no step may mask another's cleanup."""
        try:
            if self._pool is not None:
                self._pool.close()
        finally:
            try:
                self.store.close()
            finally:
                try:
                    self.runtime.close()
                finally:
                    self._finalize_observability()

    def __enter__(self) -> "S2Controller":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
