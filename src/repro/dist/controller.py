"""The S2 controller (§3.2): parser, partitioner, CPO, and DPO.

:class:`S2Controller` wires the whole distributed pipeline together for
one snapshot: partition the topology, instantiate workers and sidecars,
run the sharded control-plane fixed point, build the distributed data
plane, and hand out a property checker.  :mod:`repro.core` wraps this in
the high-level :class:`~repro.core.s2.S2Verifier` API.

The controller is also where fault tolerance comes together:

* a :class:`WorkerSupervisor` recovers failed workers (respawn in the
  process runtime, in-place reset in the in-process runtimes) and
  replays the OSPF checkpoint into them, so the CPO can rerun the
  interrupted shard;
* if recovery itself fails (:class:`~repro.dist.faults.RespawnError`) or
  the retry budget is exhausted, :meth:`S2Controller.run_control_plane`
  degrades to the monolithic :class:`~repro.routing.engine.
  SimulationEngine` and writes *bit-identical* per-shard results into
  the route store (the engines are equivalence-tested);
* with a persistent ``store_dir``, a :class:`~repro.dist.storage.
  RunManifest` records converged shards and the OSPF checkpoint, and
  :meth:`S2Controller.resume` restarts a killed run, skipping them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bdd.headerspace import HeaderEncoding
from ..config.loader import Snapshot
from ..net.ip import Prefix
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import TelemetryCollector, TelemetrySource
from ..obs.tracer import NULL_TRACER, Tracer
from ..obs.merge import merge_shards
from ..routing.engine import BgpResult
from ..routing.route import BgpRoute
from .cpo import ControlPlaneOrchestrator, ControlPlaneStats
from .dpo import DataPlaneOrchestrator, DataPlaneStats
from .faults import (
    FaultPlan,
    RespawnError,
    RetryPolicy,
    StaleEpochError,
    WorkerFailure,
)
from .partition import (
    PartitionResult,
    estimate_loads,
    partition,
    plan_reassignment,
)
from .resources import (
    DEFAULT_WORKER_CAPACITY,
    ClusterReport,
    CostModel,
    WorkerResources,
)
from .runtime import Runtime, make_runtime
from .sharding import PrefixShard, make_shards, validate_shards
from .sidecar import Sidecar
from .storage import RouteStore, RunManifest, ShardRoutes
from .worker import Worker


@dataclass
class S2Options:
    """Tuning knobs of an S2 run (defaults mirror the paper's setup at
    model scale: METIS partitioning, 20 shards, 100GB-per-worker)."""

    num_workers: int = 4
    partition_scheme: str = "metis"
    num_shards: int = 0                  # 0 disables prefix sharding
    worker_capacity: int = DEFAULT_WORKER_CAPACITY
    cost_model: CostModel = field(default_factory=CostModel)
    encoding: HeaderEncoding = field(default_factory=HeaderEncoding)
    node_limit: int = 1 << 22            # per-worker BDD table capacity
    controller_node_limit: int = 1 << 24
    bdd_kernel: str = "flat"         # "flat" (array kernel) | "dict"
    #                                  (legacy fallback); excluded from
    #                                  the options fingerprint — both
    #                                  kernels are differential-tested to
    #                                  produce bit-identical results
    max_rounds: int = 200
    max_hops: int = 24
    runtime: str = "sequential"      # "sequential" | "threaded" |
    #                                  "process" | "socket"
    worker_hosts: Optional[Sequence[str]] = None  # socket runtime: dial
    #                                  these host:port listeners instead
    #                                  of forking local workers
    seed: int = 7
    store_dir: Optional[str] = None
    enforce_memory: bool = True
    refine_shards: bool = False      # §7 runtime dependency refinement
    # -- fault tolerance -------------------------------------------------
    fault_plan: Optional[FaultPlan] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint: bool = True          # manifest + OSPF checkpoint (needs
    #                                  a persistent store_dir to matter)
    # -- observability ---------------------------------------------------
    # Like the supervision knobs, these are excluded from the options
    # fingerprint: they change how a run is observed, never its results.
    trace_out: Optional[str] = None      # merged Chrome trace-event file
    trace_dir: Optional[str] = None      # per-participant JSONL shards
    metrics_out: Optional[str] = None    # metrics snapshot JSON
    telemetry: bool = True               # stream worker telemetry frames
    telemetry_interval: float = 0.25     # min seconds between frames


def options_fingerprint(options: S2Options, snapshot: Snapshot) -> str:
    """A digest of everything that shapes a run's *results*.

    Stored in the manifest and checked by :meth:`S2Controller.resume`:
    resuming with options that would change the computed RIBs (different
    sharding, partitioning, seed, or snapshot) is refused.  Supervision
    knobs (``fault_plan``, ``retry_policy``, ``runtime``) are excluded on
    purpose — they change *how* the run executes, never what it computes,
    so a crashed process-runtime run may be resumed sequentially.
    """
    payload = {
        "version": 1,
        "snapshot": snapshot.name,
        "nodes": sorted(snapshot.configs),
        "num_workers": options.num_workers,
        "partition_scheme": options.partition_scheme,
        "num_shards": options.num_shards,
        "seed": options.seed,
        "max_rounds": options.max_rounds,
        "refine_shards": options.refine_shards,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:16]


class WorkerSupervisor:
    """Recovers failed workers and replays checkpoints into them.

    One recovery has three steps: (1) give the worker a fresh execution
    context — :meth:`~repro.dist.process_runtime.ProcessWorkerPool.
    respawn` for process workers, :meth:`~repro.dist.worker.Worker.reset`
    in-process — keeping the proxy/worker *identity* so orchestrator and
    sidecar references stay valid; (2) replay the OSPF checkpoint taken
    after the IGP fixed point; (3) the caller (CPO/DPO) replays the
    interrupted unit of work (shard or query), which is idempotent.

    Respawn itself can fail (dead host, ``respawn_fail``/``host_loss``
    injection).  Each recovery retries up to ``policy.respawn_budget``
    times — except against an *unmanaged* pool (connect-mode socket
    hosts), where a refused re-dial means the host is gone and the
    budget is one.  A worker whose budget is spent is declared **lost**:
    journaled, then handed to :attr:`on_loss` (the controller's shard
    migration hook) so the run continues on the survivors.  Without a
    hook the :class:`RespawnError` propagates — the legacy
    all-or-nothing degradation.
    """

    def __init__(
        self,
        workers: Sequence[Any],
        store: RouteStore,
        pool=None,
        persistent: bool = False,
        sidecars: Optional[Sequence[Sidecar]] = None,
        policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.workers = list(workers)
        self.store = store
        self.pool = pool
        self.persistent = persistent
        self.sidecars = list(sidecars) if sidecars else []
        self.policy = policy or RetryPolicy()
        self.fault_plan = fault_plan
        self._ospf_states: Dict[int, Any] = {}
        self.recoveries = 0
        self.losses = 0
        # Loss migration hook: ``on_loss(worker_id, cause)`` must either
        # remove the worker from the fleet (migrating its state) or
        # raise; installed by :class:`S2Controller`.
        self.on_loss: Optional[Any] = None
        # Serving mode: the epoch a recovered worker must be re-seeded
        # to before it may rejoin the fixed point.  None outside serving.
        self.epoch: Optional[int] = None
        self.stale_epoch_rejections = 0
        # Serving mode: the session's event journal, when attached —
        # respawns and stale-epoch rejections become typed records.
        self.journal: Optional[Any] = None

    # -- OSPF checkpoint --------------------------------------------------

    def checkpoint_ospf(self) -> None:
        """Capture every worker's installed IGP routes (once, post-IGP)."""
        for worker in self.workers:
            state = worker.export_ospf_state()
            self._ospf_states[worker.worker_id] = state
            if self.persistent:
                self.store.write_ospf_state(worker.worker_id, state)

    def restore_ospf(self) -> bool:
        """Resume path: reload the IGP result from the store, skip rounds.

        Returns False when any worker's checkpoint is missing, in which
        case the caller falls back to re-running the IGP fixed point.
        """
        states: Dict[int, Any] = {}
        for worker in self.workers:
            state = self.store.read_ospf_state(worker.worker_id)
            if state is None:
                return False
            states[worker.worker_id] = state
        for worker in self.workers:
            worker.restore_ospf_state(states[worker.worker_id])
        self._ospf_states = states
        return True

    # -- recovery ---------------------------------------------------------

    def _worker_by_id(self, worker_id: int):
        """The active worker with this id, or None (lists shrink on loss,
        so positional indexing stopped being valid)."""
        for worker in self.workers:
            if worker.worker_id == worker_id:
                return worker
        return None

    def _respawn_once(self, worker_id: int) -> None:
        """One respawn attempt; raises :class:`RespawnError` on failure.

        In-process runtimes have no pool, but a host-down injection must
        still be honoured there — otherwise ``host_loss`` plans would be
        untestable under the sequential/threaded runtimes.
        """
        if self.pool is not None:
            self.pool.respawn(worker_id)
            return
        worker = self._worker_by_id(worker_id)
        if worker is None:
            raise RespawnError(
                f"worker {worker_id} is not in the active set",
                worker_id=worker_id,
            )
        if (
            self.fault_plan is not None
            and self.fault_plan.should_fail_respawn(worker_id)
        ):
            raise RespawnError(
                f"respawn of worker {worker_id} failed (injected)",
                worker_id=worker_id,
            )
        worker.reset()
        worker.resources.respawns += 1

    def recover(self, failure: WorkerFailure) -> None:
        """Bring the failed worker back; raises RespawnError on failure.

        When the respawn budget is spent the worker is declared lost and
        :attr:`on_loss` migrates its shards instead — returning normally
        so the caller's retry loop replays the unit on the survivors.
        """
        worker_id = failure.worker_id
        if worker_id is None or self._worker_by_id(worker_id) is None:
            raise failure
        self.recoveries += 1
        if isinstance(failure, StaleEpochError):
            self.stale_epoch_rejections += 1
            if self.journal is not None:
                self.journal.record(
                    "stale_epoch_rejection",
                    worker=worker_id,
                    epoch=self.epoch,
                    command=failure.command,
                )
        if self.journal is not None:
            self.journal.record(
                "worker_respawn",
                worker=worker_id,
                reason=type(failure).__name__,
                epoch=self.epoch,
                recoveries=self.recoveries,
            )
        budget = max(1, self.policy.respawn_budget)
        if self.pool is not None and not getattr(self.pool, "managed", True):
            # Connect-mode socket host: respawn re-dials the same
            # address, so one refused attempt means the host is gone.
            budget = 1
        attempts = 0
        while True:
            try:
                self._respawn_once(worker_id)
                break
            except RespawnError as exc:
                attempts += 1
                if attempts < budget:
                    continue
                self.declare_lost(worker_id, exc)
                return
        worker = self._worker_by_id(worker_id)
        worker.restore_ospf_state(self._ospf_states.get(worker_id))
        if self.epoch is not None:
            # Fresh execution contexts come up at epoch -1 (stale by
            # construction); re-seed before the shard replay so the
            # fence admits the recovered worker.
            worker.begin_epoch(self.epoch)
        # The respawned worker lost its receive-side memory: every
        # surviving sender's dedup cache toward it would under-charge
        # (and a real dedup transport would dangle), so invalidate on
        # the incarnation change.
        for sidecar in self.sidecars:
            sidecar.on_peer_respawn(worker_id)

    def declare_lost(self, worker_id: int, cause: RespawnError) -> None:
        """Budget spent: journal the loss and hand off to the migration
        hook.  Without a hook (standalone supervisor) the RespawnError
        propagates and the caller degrades as before."""
        if self.journal is not None:
            self.journal.record(
                "worker_lost",
                worker=worker_id,
                reason=str(cause),
                epoch=self.epoch,
                survivors=max(0, len(self.workers) - 1),
            )
        if self.on_loss is None:
            raise cause
        self.on_loss(worker_id, cause)
        self.losses += 1

    def merge_ospf_checkpoints(self) -> None:
        """Install the union of every checkpoint on every active worker.

        After a loss migration a survivor owns nodes whose IGP state was
        checkpointed by the dead worker; ``restore_ospf_state`` ignores
        hostnames the worker doesn't own, so the union is safe to replay
        everywhere — and it keeps each per-worker checkpoint
        self-sufficient for the *next* recovery.
        """
        union: Dict[str, Any] = {}
        for state in self._ospf_states.values():
            if state:
                union.update(state)
        if not union:
            return
        for worker in self.workers:
            worker.restore_ospf_state(dict(union))
            self._ospf_states[worker.worker_id] = dict(union)
            if self.persistent:
                self.store.write_ospf_state(worker.worker_id, dict(union))

    def forget_checkpoints(self) -> None:
        """Drop the in-memory OSPF checkpoints (full reconfigure: the
        old IGP result no longer describes the snapshot)."""
        self._ospf_states.clear()


class S2Controller:
    """Owns the workers, sidecars, orchestrators, and the route store."""

    def __init__(
        self,
        snapshot: Snapshot,
        options: Optional[S2Options] = None,
        resuming: bool = False,
    ) -> None:
        self.snapshot = snapshot
        self.options = options or S2Options()
        opts = self.options
        self.partition: PartitionResult = partition(
            snapshot,
            opts.num_workers,
            scheme=opts.partition_scheme,
            seed=opts.seed,
        )
        self.store = RouteStore(opts.store_dir)
        capacity = opts.worker_capacity if opts.enforce_memory else (1 << 62)
        # -- observability -------------------------------------------------
        # Tracing is on iff an output was requested; shards always live in
        # a directory (derived from trace_out when none was given) so the
        # process runtime and the merge step share one layout.
        self.trace_dir: Optional[str] = opts.trace_dir or (
            opts.trace_out + ".shards" if opts.trace_out else None
        )
        self.metrics = MetricsRegistry()
        # Streaming telemetry: every runtime pushes frames into this
        # collector (remote runtimes piggyback them on RPC responses;
        # in-process workers call the sink at phase boundaries).
        self.telemetry = TelemetryCollector(self.metrics)
        telemetry_interval = (
            opts.telemetry_interval if opts.telemetry else 0.0
        )
        if self.trace_dir:
            self.tracer: Tracer = Tracer(
                process="controller",
                sink=os.path.join(self.trace_dir, "controller.jsonl"),
            )
        else:
            self.tracer = NULL_TRACER
        self._worker_tracers: List[Tracer] = []
        if opts.fault_plan is not None:
            opts.fault_plan.observer = self._observe_fault
        self._pool = None
        if opts.runtime == "process":
            # Real OS processes, one per worker; phases run through a
            # thread pool whose threads block on the worker pipes, so the
            # worker processes execute concurrently.
            from .process_runtime import ProcessWorkerPool

            self._pool = ProcessWorkerPool(
                snapshot=snapshot,
                assignment=self.partition.assignment,
                num_workers=opts.num_workers,
                capacity=capacity,
                cost_model=opts.cost_model,
                max_hops=opts.max_hops,
                retry_policy=opts.retry_policy,
                fault_plan=opts.fault_plan,
                trace_dir=self.trace_dir,
                tracer=self.tracer,
                telemetry_interval=telemetry_interval,
                telemetry_sink=self.telemetry.ingest,
            )
            self.workers = self._pool.proxies
            self.runtime: Runtime = make_runtime("threaded")
        elif opts.runtime == "socket":
            # Workers behind TCP servers speaking the framed RPC protocol
            # (repro.dist.transport): localhost processes by default, or
            # remote listeners via worker_hosts.  Same threaded phase
            # dispatch as the process runtime.
            from .socket_runtime import SocketWorkerPool

            self._pool = SocketWorkerPool(
                snapshot=snapshot,
                assignment=self.partition.assignment,
                num_workers=opts.num_workers,
                capacity=capacity,
                cost_model=opts.cost_model,
                max_hops=opts.max_hops,
                retry_policy=opts.retry_policy,
                fault_plan=opts.fault_plan,
                trace_dir=self.trace_dir,
                tracer=self.tracer,
                metrics=self.metrics,
                worker_hosts=opts.worker_hosts,
                telemetry_interval=telemetry_interval,
                telemetry_sink=self.telemetry.ingest,
            )
            self.workers = self._pool.proxies
            self.runtime = make_runtime("threaded")
        else:
            if self.trace_dir:
                # In-process workers write their own shards too, so the
                # merged timeline has one track per worker regardless of
                # runtime.
                self._worker_tracers = [
                    Tracer(
                        process=f"worker{i}",
                        sink=os.path.join(
                            self.trace_dir, f"worker{i}.0.jsonl"
                        ),
                    )
                    for i in range(opts.num_workers)
                ]
            self.runtime = make_runtime(opts.runtime)
            self.workers: List[Worker] = [
                Worker(
                    worker_id=i,
                    snapshot=snapshot,
                    assignment=self.partition.assignment,
                    resources=WorkerResources(
                        name=f"worker{i}",
                        capacity=capacity,
                        model=opts.cost_model,
                    ),
                    max_hops=opts.max_hops,
                    tracer=(
                        self._worker_tracers[i]
                        if self._worker_tracers
                        else None
                    ),
                )
                for i in range(opts.num_workers)
            ]
            # In-process fault injection happens inside the worker phases
            # (the process runtime injects at the proxy call layer).
            for worker in self.workers:
                worker.fault_injector = opts.fault_plan
            if telemetry_interval > 0:
                for worker in self.workers:
                    worker.attach_telemetry(
                        TelemetrySource(
                            worker, interval=telemetry_interval
                        ),
                        sink=self.telemetry.ingest,
                    )
        self.sidecars = [
            Sidecar(worker, fault_plan=opts.fault_plan, metrics=self.metrics)
            for worker in self.workers
        ]
        for sidecar in self.sidecars:
            sidecar.register_peers(self.sidecars)
        self.shards: List[PrefixShard] = []
        if opts.num_shards and opts.num_shards > 1:
            self.shards = make_shards(snapshot, opts.num_shards, seed=opts.seed)
            problems = validate_shards(self.shards, snapshot)
            if problems:
                raise ValueError(f"invalid shards: {problems[:3]}")
        # -- checkpoint/resume state --------------------------------------
        self.manifest: Optional[RunManifest] = None
        fingerprint = options_fingerprint(opts, snapshot)
        persistent = opts.store_dir is not None and opts.checkpoint
        if persistent and resuming:
            manifest = self.store.read_manifest()
            if manifest is None:
                raise ValueError(
                    f"nothing to resume: no manifest in {self.store.directory}"
                )
            if manifest.options_hash != fingerprint:
                raise ValueError(
                    "refusing to resume: the store was written with "
                    f"incompatible options (manifest hash "
                    f"{manifest.options_hash}, current {fingerprint})"
                )
            self.manifest = manifest
        elif persistent:
            # A fresh run over a reused spool directory: stale shards
            # from an earlier (possibly killed) run must not pollute
            # merged_routes.
            self.store.clear_run_state()
            self.manifest = RunManifest(
                options_hash=fingerprint,
                seed=opts.seed,
                num_workers=opts.num_workers,
                num_shards=max(1, len(self.shards) or 1),
            )
            self.store.write_manifest(self.manifest)
        self.supervisor = WorkerSupervisor(
            self.workers,
            self.store,
            pool=self._pool,
            persistent=persistent,
            sidecars=self.sidecars,
            policy=opts.retry_policy,
            fault_plan=opts.fault_plan,
        )
        # Permanently lost workers: worker_id -> (worker, sidecar), kept
        # so their final stats stay reportable and a healed host can
        # rejoin with its original identity.
        self.lost: Dict[int, Tuple[Any, Sidecar]] = {}
        self.lost_reasons: Dict[int, str] = {}
        self.supervisor.on_loss = self._handle_worker_loss
        self.cpo = ControlPlaneOrchestrator(
            self.workers,
            self.sidecars,
            self.store,
            runtime=self.runtime,
            max_rounds=opts.max_rounds,
            fault_plan=opts.fault_plan,
            supervisor=self.supervisor,
            retry_policy=opts.retry_policy,
            manifest=self.manifest,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.dpo = DataPlaneOrchestrator(
            self.workers,
            self.sidecars,
            snapshot,
            encoding=opts.encoding,
            runtime=self.runtime,
            node_limit=opts.node_limit,
            controller_node_limit=opts.controller_node_limit,
            bdd_kernel=opts.bdd_kernel,
            supervisor=self.supervisor,
            retry_policy=opts.retry_policy,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self._cp_done = False

    def _observe_fault(
        self, kind: str, worker_id: Optional[int], command: Optional[str]
    ) -> None:
        """FaultPlan observer: count injections and mark the timeline."""
        self.metrics.counter(f"faults.{kind}").inc()
        self.tracer.instant(
            "fault.injected", kind=kind, worker=worker_id, command=command
        )

    # -- resume -----------------------------------------------------------

    @classmethod
    def resume(
        cls, snapshot: Snapshot, options: S2Options
    ) -> "S2Controller":
        """Reattach to a killed run's persistent store and continue it.

        The next :meth:`run_control_plane` restores the OSPF checkpoint
        (if taken) and skips every shard the manifest records as
        converged; only the interrupted remainder is recomputed.
        """
        if options is None or options.store_dir is None:
            raise ValueError("resume() requires options.store_dir")
        if not options.checkpoint:
            raise ValueError("resume() requires options.checkpoint")
        return cls(snapshot, options, resuming=True)

    # -- serving support (epoch-fenced deltas) -----------------------------

    def _on_each_worker(self, fn) -> None:
        """Apply ``fn`` to every worker, healing one failure per worker.

        A worker that died *between* epochs (no shard in flight, so the
        CPO's replay machinery never sees it) first surfaces here when
        the next delta fans out.  Route the failure through supervisor
        recovery — respawn from the pool's current configure args, OSPF
        checkpoint restore, epoch re-seed — then retry once on the
        recovered worker; a second failure propagates to the caller.
        A worker declared *lost* during recovery needs no retry — the
        migration already rebuilt the survivors.
        """
        for worker in list(self.workers):
            worker_id = worker.worker_id
            try:
                fn(worker)
            except WorkerFailure as failure:
                if failure.worker_id is None:
                    failure.worker_id = worker_id
                self.supervisor.recover(failure)
                if any(w.worker_id == worker_id for w in self.workers):
                    fn(worker)

    def begin_epoch(self, epoch: int) -> None:
        """Seed every worker — and the fence plumbing — with ``epoch``.

        From here on, ``begin_shard`` carries the epoch and any worker
        at a different one (a respawn that missed the delta, a healed
        partition survivor) raises :class:`StaleEpochError` and goes
        through supervisor recovery before touching the shard.
        """
        self.supervisor.epoch = epoch
        self.cpo.epoch = epoch
        self._on_each_worker(lambda worker: worker.begin_epoch(epoch))

    def make_cpo(
        self, manifest: Optional[RunManifest], epoch: Optional[int] = None
    ) -> ControlPlaneOrchestrator:
        """Bind a fresh orchestrator (and manifest) for one recompute.

        Serving reruns the control plane once per committed delta and
        wants per-epoch stats, so each recompute gets its own CPO while
        the workers, sidecars, runtime, and supervisor carry over.
        """
        opts = self.options
        self.manifest = manifest
        self.cpo = ControlPlaneOrchestrator(
            self.workers,
            self.sidecars,
            self.store,
            runtime=self.runtime,
            max_rounds=opts.max_rounds,
            fault_plan=opts.fault_plan,
            supervisor=self.supervisor,
            retry_policy=opts.retry_policy,
            manifest=manifest,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        if epoch is not None:
            self.cpo.epoch = epoch
            self.supervisor.epoch = epoch
        self._cp_done = False
        return self.cpo

    def rebind_snapshot(
        self,
        snapshot: Snapshot,
        changed_hosts: Sequence[str] = (),
        epoch: Optional[int] = None,
    ) -> None:
        """Incremental rebind for announce-only deltas.

        Topology, partition, and the IGP result are unchanged, so only
        the changed hosts' router models are rebuilt (their installed
        OSPF routes replayed from the worker's live checkpoint); the
        caller then recomputes just the dirty shards.
        """
        self.snapshot = snapshot
        changed = tuple(changed_hosts)
        if self._pool is not None:
            # A worker respawned mid-epoch is re-seeded from the pool's
            # spawn args; those must describe the *current* snapshot.
            self._pool.update_snapshot(snapshot)
        self._on_each_worker(
            lambda worker: worker.rebind_snapshot(snapshot, changed, epoch)
        )
        if epoch is not None:
            self.supervisor.epoch = epoch
            self.cpo.epoch = epoch
        self.dpo.invalidate(snapshot)
        self._cp_done = False

    def reconfigure(
        self, snapshot: Snapshot, epoch: Optional[int] = None
    ) -> None:
        """Full rebind for topology/policy deltas.

        Repartitions the new snapshot and logically respawns every
        worker on it; the IGP fixed point and all shards recompute.
        """
        opts = self.options
        self.snapshot = snapshot
        self.partition = partition(
            snapshot,
            opts.num_workers,
            scheme=opts.partition_scheme,
            seed=opts.seed,
        )
        # A shrunken fleet keeps its reassignment overlay across deltas:
        # re-plan the canonical partition around the workers still lost.
        if self.lost:
            loads = estimate_loads(snapshot)
            active_ids = [w.worker_id for w in self.workers]
            for lost_id in sorted(self.lost):
                self.partition = PartitionResult(
                    assignment=plan_reassignment(
                        self.partition.assignment,
                        lost_id,
                        active_ids,
                        node_loads=loads,
                    ),
                    num_workers=self.partition.num_workers,
                    scheme=self.partition.scheme,
                )
        # Old-snapshot IGP checkpoints are meaningless for the new one;
        # drop them *before* any recovery so a respawn mid-reconfigure
        # doesn't restore stale OSPF state.
        self.supervisor.forget_checkpoints()
        if self._pool is not None:
            attempts = 0
            while True:
                try:
                    # Refetched every attempt: a recovery that declared a
                    # worker lost re-planned the assignment under us.
                    self._pool.reconfigure(
                        snapshot, self.partition.assignment
                    )
                    break
                except WorkerFailure as failure:
                    attempts += 1
                    if attempts > len(self.workers):
                        raise
                    self.supervisor.recover(failure)
        else:
            for worker in self.workers:
                worker.snapshot = snapshot
                worker.assignment = self.partition.assignment
                worker.reset()
        # Every worker was logically respawned: receive-side sequence
        # and dedup state is gone everywhere, so every sender's caches
        # must go too.
        for sidecar in self.sidecars:
            sidecar.invalidate_send_caches()
        if opts.num_shards and opts.num_shards > 1:
            self.shards = make_shards(
                snapshot, opts.num_shards, seed=opts.seed
            )
            problems = validate_shards(self.shards, snapshot)
            if problems:
                raise ValueError(f"invalid shards: {problems[:3]}")
        if epoch is not None:
            self.begin_epoch(epoch)
        self.dpo.invalidate(snapshot)
        self._cp_done = False

    def rebuild_data_plane(self) -> DataPlaneStats:
        """Force a fresh distributed data plane from the current store."""
        self.dpo.invalidate()
        self.dpo.build(self.store)
        return self.dpo.stats

    # -- permanent loss: shard reassignment --------------------------------

    def capacity(self) -> Dict[str, Any]:
        """Degraded-capacity summary (serving surfaces re-export this)."""
        active = len(self.workers)
        lost = len(self.lost)
        total = active + lost
        return {
            "active_workers": active,
            "lost_workers": lost,
            "capacity_ratio": (active / total) if total else 0.0,
            "lost": {
                str(worker_id): self.lost_reasons.get(worker_id, "")
                for worker_id in sorted(self.lost)
            },
        }

    def _handle_worker_loss(
        self, worker_id: int, cause: WorkerFailure
    ) -> None:
        """Migrate a dead worker's shards to the survivors.

        Installed as the supervisor's ``on_loss`` hook.  The run stays
        *distributed*: the lost worker's nodes are reassigned across the
        survivors (heaviest first), its persisted shard files merge into
        the adopters', the union OSPF checkpoint replays everywhere, and
        the caller's retry loop replays the interrupted unit on the
        shrunken fleet.  Raises :class:`RespawnError` when no survivors
        remain — the sequential fallback's cue.
        """
        survivors = [w for w in self.workers if w.worker_id != worker_id]
        if not survivors:
            raise RespawnError(
                f"worker {worker_id} is lost and no survivors remain",
                worker_id=worker_id,
            )
        lost_worker = next(
            w for w in self.workers if w.worker_id == worker_id
        )
        lost_sidecar = next(
            s for s in self.sidecars if s.worker_id == worker_id
        )
        orphans = [
            node
            for node, owner in self.partition.assignment.items()
            if owner == worker_id
        ]
        new_assignment = plan_reassignment(
            self.partition.assignment,
            worker_id,
            [w.worker_id for w in survivors],
            node_loads=estimate_loads(self.snapshot),
        )
        self.partition = PartitionResult(
            assignment=new_assignment,
            num_workers=self.partition.num_workers,
            scheme=self.partition.scheme,
        )
        # Quarantine the dead worker: freeze its identity + stats, and
        # drop it from every holder.  Pool proxy lists stay full-length
        # (respawn indexes positionally); the pool just marks it lost.
        self.lost[worker_id] = (lost_worker, lost_sidecar)
        self.lost_reasons[worker_id] = f"{type(cause).__name__}: {cause}"
        self.workers = survivors
        self.sidecars = [
            s for s in self.sidecars if s.worker_id != worker_id
        ]
        for sidecar in self.sidecars:
            sidecar.register_peers(self.sidecars)
        self.supervisor.workers = list(self.workers)
        self.supervisor.sidecars = list(self.sidecars)
        self.cpo.drop_worker(worker_id)
        self.dpo.drop_worker(worker_id)
        if self._pool is not None:
            self._pool.mark_lost(worker_id)
        migrated = self._migrate_store_files(worker_id, new_assignment)
        # Account the loss *before* rebuilding the survivors: a cascade
        # (another worker dying during the rebuild) must not erase the
        # record of this one.
        self.cpo.stats.workers_lost += 1
        self.cpo.stats.shards_reassigned += migrated
        self.metrics.counter("cluster.workers_lost").inc()
        self.metrics.gauge("cluster.active_workers").set(len(self.workers))
        self.tracer.instant(
            "worker.lost",
            worker=worker_id,
            survivors=len(self.workers),
            shards=migrated,
        )
        if self.supervisor.journal is not None:
            self.supervisor.journal.record(
                "shard_reassigned",
                worker=worker_id,
                shards=migrated,
                nodes=len(orphans),
                survivors=len(self.workers),
            )
        # The survivors' node sets changed: logically respawn them on
        # the new assignment, replay the merged IGP checkpoint, and
        # re-seed the serving epoch so the fence admits them.
        self._reconfigure_active()
        self.supervisor.merge_ospf_checkpoints()
        self.supervisor._ospf_states.pop(worker_id, None)
        if self.supervisor.epoch is not None:
            for worker in self.workers:
                worker.begin_epoch(self.supervisor.epoch)
        self.dpo.invalidate()

    def _reconfigure_active(self) -> None:
        """Logically respawn every *active* worker on the current
        snapshot + assignment (their node sets changed)."""
        if self._pool is not None:
            attempts = 0
            while True:
                try:
                    self._pool.reconfigure(
                        self.snapshot, self.partition.assignment
                    )
                    break
                except WorkerFailure as failure:
                    attempts += 1
                    if attempts > len(self.workers):
                        raise
                    self.supervisor.recover(failure)
        else:
            for worker in list(self.workers):
                worker.snapshot = self.snapshot
                worker.assignment = self.partition.assignment
                worker.reset()
        # Every active worker was rebuilt: receive-side sequence and
        # dedup memory is gone everywhere, so every sender's caches go.
        for sidecar in self.sidecars:
            sidecar.invalidate_send_caches()

    def _migrate_store_files(
        self, worker_id: int, assignment: Dict[str, int]
    ) -> int:
        """Merge the lost worker's flushed shard files into the adopters'.

        ``collected_ribs`` and ``build_dataplane`` read per-worker merged
        stores, so after migration the survivors' files must jointly
        cover every node the dead worker owned.  Returns the number of
        shard files migrated.
        """
        migrated = 0
        for shard_index in self.store.worker_shard_indices(worker_id):
            routes = self.store.read_shard(worker_id, shard_index)
            adopted: Dict[int, ShardRoutes] = {}
            for node, prefixes in routes.items():
                owner = assignment.get(node)
                if owner is None or owner == worker_id:
                    continue
                adopted.setdefault(owner, {})[node] = prefixes
            for owner, nodes in sorted(adopted.items()):
                self.store.merge_into_shard(owner, shard_index, nodes)
            migrated += 1
        self.store.delete_worker_files(worker_id)
        return migrated

    def rejoin_worker(
        self, worker_id: int, epoch: Optional[int] = None
    ) -> bool:
        """Probe a lost worker's host and rebalance shards back onto it.

        Returns False while the host is still down (the caller re-arms
        its backoff timer).  On success the canonical partition for the
        now-larger fleet is restored (re-planned around any *still*-lost
        workers), the store's shard files are re-keyed to it, and the
        rejoined worker comes back epoch-fenced like any respawn.
        """
        entry = self.lost.get(worker_id)
        if entry is None:
            raise ValueError(f"worker {worker_id} is not lost")
        worker, sidecar = entry
        try:
            if self._pool is not None:
                self._pool.respawn(worker_id)
            else:
                plan = self.options.fault_plan
                if plan is not None and plan.should_fail_respawn(worker_id):
                    raise RespawnError(
                        f"respawn of worker {worker_id} failed (injected)",
                        worker_id=worker_id,
                    )
                worker.reset()
                worker.resources.respawns += 1
        except RespawnError:
            return False
        del self.lost[worker_id]
        self.lost_reasons.pop(worker_id, None)
        self.workers = sorted(
            self.workers + [worker], key=lambda w: w.worker_id
        )
        self.sidecars = sorted(
            self.sidecars + [sidecar], key=lambda s: s.worker_id
        )
        for peer in self.sidecars:
            peer.register_peers(self.sidecars)
        self.supervisor.workers = list(self.workers)
        self.supervisor.sidecars = list(self.sidecars)
        self.cpo.set_fleet(self.workers, self.sidecars)
        self.dpo.set_fleet(self.workers, self.sidecars)
        opts = self.options
        base = partition(
            self.snapshot,
            opts.num_workers,
            scheme=opts.partition_scheme,
            seed=opts.seed,
        )
        assignment = dict(base.assignment)
        active_ids = [w.worker_id for w in self.workers]
        loads = estimate_loads(self.snapshot)
        for still_lost in sorted(self.lost):
            assignment = plan_reassignment(
                assignment, still_lost, active_ids, node_loads=loads
            )
        self.partition = PartitionResult(
            assignment=assignment,
            num_workers=base.num_workers,
            scheme=base.scheme,
        )
        self._repartition_store(assignment)
        self._reconfigure_active()
        self.supervisor.merge_ospf_checkpoints()
        if epoch is None:
            epoch = self.supervisor.epoch
        if epoch is not None:
            self.supervisor.epoch = epoch
            self.cpo.epoch = epoch
            for active in self.workers:
                active.begin_epoch(epoch)
        self.dpo.invalidate()
        self.metrics.gauge("cluster.active_workers").set(len(self.workers))
        self.tracer.instant(
            "worker.rejoined", worker=worker_id, active=len(self.workers)
        )
        if self.supervisor.journal is not None:
            self.supervisor.journal.record(
                "worker_rejoined",
                worker=worker_id,
                epoch=epoch,
                active=len(self.workers),
            )
        return True

    def _repartition_store(self, assignment: Dict[str, int]) -> int:
        """Re-key every persisted shard file to ``assignment``'s owners.

        Content is untouched — the same (node, prefix) routes land in
        the owning worker's file at the same flush index, so the merged
        RIBs stay bit-identical across the rebalance.
        """
        active = [w.worker_id for w in self.workers]
        indices = sorted(
            {
                index
                for wid in active
                for index in self.store.worker_shard_indices(wid)
            }
        )
        for shard_index in indices:
            combined: ShardRoutes = {}
            for wid in active:
                try:
                    combined.update(self.store.read_shard(wid, shard_index))
                except FileNotFoundError:
                    continue
            per_worker: Dict[int, ShardRoutes] = {wid: {} for wid in active}
            for node, prefixes in combined.items():
                owner = assignment.get(node)
                if owner in per_worker:
                    per_worker[owner][node] = prefixes
            for wid, routes in per_worker.items():
                self.store.write_shard(wid, shard_index, routes)
        return len(indices)

    # -- pipeline ---------------------------------------------------------

    def run_control_plane(self) -> ControlPlaneStats:
        """The sharded fixed point, with graceful degradation.

        A :class:`WorkerFailure` escaping the CPO means supervision is
        out of options (respawn failed, or the shard retry budget is
        spent); rather than abandon the run, the controller recomputes
        the remaining shards on the monolithic engine — slower, but
        bit-identical (the engines are equivalence-tested) — and the
        stats record the degradation.
        """
        try:
            stats = self.cpo.run(
                self.shards if self.shards else None,
                refine=self.options.refine_shards,
            )
        except WorkerFailure:
            stats = self._sequential_fallback()
        self._cp_done = True
        return stats

    def _sequential_fallback(self) -> ControlPlaneStats:
        """Recompute unfinished shards on the monolithic engine."""
        from ..routing.engine import SimulationEngine

        stats = self.cpo.stats
        stats.sequential_fallback = True
        engine = SimulationEngine(
            self.snapshot, max_rounds=self.options.max_rounds
        )
        engine.run_ospf()
        shard_list: List[Optional[PrefixShard]] = (
            list(self.shards) if self.shards else [None]
        )
        for shard in shard_list:
            flush_index = shard.index if shard is not None else 0
            if self.manifest is not None and self.manifest.is_shard_done(
                flush_index
            ):
                continue
            result = engine.run_bgp_shard(
                shard.prefixes if shard is not None else None
            )
            # Keyed by the *current* assignment's owners: after a loss
            # migration only the survivors exist, and collected_ribs()
            # reads exactly their files.
            per_worker: Dict[int, Dict] = {
                worker_id: {}
                for worker_id in sorted(set(self.partition.assignment.values()))
            }
            selected_total = 0
            for hostname, selected in result.items():
                if not selected:
                    continue  # the workers' flush omits empty nodes too
                owner = self.partition.assignment[hostname]
                per_worker[owner][hostname] = selected
                selected_total += sum(
                    len(routes) for routes in selected.values()
                )
            for worker_id, routes in per_worker.items():
                stats.route_flush_bytes += self.store.write_shard(
                    worker_id, flush_index, routes
                )
            stats.total_selected_routes += selected_total
            stats.shards_run += 1
            if self.manifest is not None:
                self.manifest.mark_shard(flush_index)
                self.store.write_manifest(self.manifest)
        stats.bgp_rounds += engine.stats.bgp_rounds
        stats.ospf_rounds += engine.stats.ospf_rounds
        return stats

    def build_data_plane(self) -> DataPlaneStats:
        if not self._cp_done:
            self.run_control_plane()
        self.dpo.build(self.store)
        return self.dpo.stats

    def checker(self):
        self.build_data_plane()
        return self.dpo.checker()

    # -- results ------------------------------------------------------------

    def report(self) -> ClusterReport:
        # Lost workers' stats are frozen at their last observed values
        # and stay in the report: dropping them would make totals like
        # total_respawns go *down* when a worker is declared lost.
        resources = [w.resources for w in self.workers]
        resources += [
            self.lost[worker_id][0].resources
            for worker_id in sorted(self.lost)
        ]
        return ClusterReport(workers=resources)

    def collected_ribs(self) -> BgpResult:
        """Merge every worker's stored shards: the network-wide RIBs.

        This is the oracle interface the equivalence tests compare against
        the monolithic engine.
        """
        merged: BgpResult = {}
        for worker in self.workers:
            for node, routes in self.store.merged_routes(
                worker.worker_id
            ).items():
                merged[node] = dict(routes)
        for name in self.snapshot.configs:
            merged.setdefault(name, {})
        return merged

    def total_route_count(self) -> int:
        return sum(
            len(routes)
            for node_routes in self.collected_ribs().values()
            for routes in node_routes.values()
        )

    def prefix_holders(self) -> List[str]:
        holders = []
        for hostname, config in sorted(self.snapshot.configs.items()):
            if config.bgp is not None and config.bgp.networks:
                holders.append(hostname)
        return holders

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry snapshot plus folded pipeline/worker telemetry.

        Safe to take mid-run: instruments are live, the stats dataclasses
        are whatever the orchestrators have accumulated so far.
        """
        snapshot = self.metrics.snapshot()
        snapshot["control_plane"] = asdict(self.cpo.stats)
        snapshot["data_plane"] = asdict(self.dpo.stats)
        def _worker_entry(r: WorkerResources, lost: bool) -> Dict[str, Any]:
            return {
                "name": r.name,
                "candidate_routes": r.candidate_routes,
                "bdd_nodes": r.bdd_nodes,
                "fib_entries": r.fib_entries,
                "peak_bytes": r.peak_bytes,
                "current_bytes": r.current_bytes,
                "route_work": r.route_work,
                "bdd_ops": r.bdd_ops,
                "rpc_bytes_sent": r.rpc_bytes_sent,
                "rpc_messages_sent": r.rpc_messages_sent,
                "modeled_time": r.modeled_time,
                "retries": r.retries,
                "respawns": r.respawns,
                "oom": r.oom,
                "lost": lost,
            }

        snapshot["workers"] = [
            _worker_entry(w.resources, False) for w in self.workers
        ] + [
            _worker_entry(self.lost[worker_id][0].resources, True)
            for worker_id in sorted(self.lost)
        ]
        if self.options.fault_plan is not None:
            snapshot["faults_fired"] = dict(
                self.options.fault_plan.fired_by_kind
            )
        snapshot["recoveries"] = self.supervisor.recoveries
        snapshot["capacity"] = self.capacity()
        snapshot["telemetry"] = self.telemetry.summary()
        if self._pool is not None and hasattr(
            self._pool, "transport_counters"
        ):
            snapshot["transport"] = self._pool.transport_counters()
        return snapshot

    def _finalize_observability(self) -> None:
        """Flush tracers, merge trace shards, write the metrics file.

        Runs as the innermost step of :meth:`close`, after the worker
        pool is down — process-runtime shards are complete only once
        their writers have exited.
        """
        opts = self.options
        for tracer in self._worker_tracers:
            tracer.finish()
        if self.tracer.enabled:
            with self.tracer.span("controller.finalize"):
                pass
            self.tracer.finish()
            if opts.trace_out and self.trace_dir:
                merge_shards(
                    self.trace_dir,
                    opts.trace_out,
                    run_metadata={
                        "snapshot": self.snapshot.name,
                        "runtime": opts.runtime,
                        "num_workers": opts.num_workers,
                        "num_shards": opts.num_shards,
                    },
                )
        if opts.metrics_out:
            folded = self.metrics_snapshot()
            self.metrics.write_json(
                opts.metrics_out,
                extra={
                    key: value
                    for key, value in folded.items()
                    if key not in ("counters", "gauges", "histograms")
                },
            )

    def close(self) -> None:
        """Tear everything down; no step may mask another's cleanup."""
        try:
            if self._pool is not None:
                self._pool.close()
        finally:
            try:
                self.store.close()
            finally:
                try:
                    self.runtime.close()
                finally:
                    self._finalize_observability()

    def __enter__(self) -> "S2Controller":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
