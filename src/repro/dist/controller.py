"""The S2 controller (§3.2): parser, partitioner, CPO, and DPO.

:class:`S2Controller` wires the whole distributed pipeline together for
one snapshot: partition the topology, instantiate workers and sidecars,
run the sharded control-plane fixed point, build the distributed data
plane, and hand out a property checker.  :mod:`repro.core` wraps this in
the high-level :class:`~repro.core.s2.S2Verifier` API.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd.headerspace import HeaderEncoding
from ..config.loader import Snapshot
from ..net.ip import Prefix
from ..routing.engine import BgpResult
from ..routing.route import BgpRoute
from .cpo import ControlPlaneOrchestrator, ControlPlaneStats
from .dpo import DataPlaneOrchestrator, DataPlaneStats
from .partition import PartitionResult, partition
from .resources import (
    DEFAULT_WORKER_CAPACITY,
    ClusterReport,
    CostModel,
    WorkerResources,
)
from .runtime import Runtime, make_runtime
from .sharding import PrefixShard, make_shards, validate_shards
from .sidecar import Sidecar
from .storage import RouteStore
from .worker import Worker


@dataclass
class S2Options:
    """Tuning knobs of an S2 run (defaults mirror the paper's setup at
    model scale: METIS partitioning, 20 shards, 100GB-per-worker)."""

    num_workers: int = 4
    partition_scheme: str = "metis"
    num_shards: int = 0                  # 0 disables prefix sharding
    worker_capacity: int = DEFAULT_WORKER_CAPACITY
    cost_model: CostModel = field(default_factory=CostModel)
    encoding: HeaderEncoding = field(default_factory=HeaderEncoding)
    node_limit: int = 1 << 22            # per-worker BDD table capacity
    controller_node_limit: int = 1 << 24
    max_rounds: int = 200
    max_hops: int = 24
    runtime: str = "sequential"      # "sequential" | "threaded" | "process"
    seed: int = 7
    store_dir: Optional[str] = None
    enforce_memory: bool = True
    refine_shards: bool = False      # §7 runtime dependency refinement


class S2Controller:
    """Owns the workers, sidecars, orchestrators, and the route store."""

    def __init__(self, snapshot: Snapshot, options: Optional[S2Options] = None) -> None:
        self.snapshot = snapshot
        self.options = options or S2Options()
        opts = self.options
        self.partition: PartitionResult = partition(
            snapshot,
            opts.num_workers,
            scheme=opts.partition_scheme,
            seed=opts.seed,
        )
        self.store = RouteStore(opts.store_dir)
        capacity = opts.worker_capacity if opts.enforce_memory else (1 << 62)
        self._pool = None
        if opts.runtime == "process":
            # Real OS processes, one per worker; phases run through a
            # thread pool whose threads block on the worker pipes, so the
            # worker processes execute concurrently.
            from .process_runtime import ProcessWorkerPool

            self._pool = ProcessWorkerPool(
                snapshot=snapshot,
                assignment=self.partition.assignment,
                num_workers=opts.num_workers,
                capacity=capacity,
                cost_model=opts.cost_model,
                max_hops=opts.max_hops,
            )
            self.workers = self._pool.proxies
            self.runtime: Runtime = make_runtime("threaded")
        else:
            self.runtime = make_runtime(opts.runtime)
            self.workers: List[Worker] = [
                Worker(
                    worker_id=i,
                    snapshot=snapshot,
                    assignment=self.partition.assignment,
                    resources=WorkerResources(
                        name=f"worker{i}",
                        capacity=capacity,
                        model=opts.cost_model,
                    ),
                    max_hops=opts.max_hops,
                )
                for i in range(opts.num_workers)
            ]
        self.sidecars = [Sidecar(worker) for worker in self.workers]
        for sidecar in self.sidecars:
            sidecar.register_peers(self.sidecars)
        self.shards: List[PrefixShard] = []
        if opts.num_shards and opts.num_shards > 1:
            self.shards = make_shards(snapshot, opts.num_shards, seed=opts.seed)
            problems = validate_shards(self.shards, snapshot)
            if problems:
                raise ValueError(f"invalid shards: {problems[:3]}")
        self.cpo = ControlPlaneOrchestrator(
            self.workers,
            self.sidecars,
            self.store,
            runtime=self.runtime,
            max_rounds=opts.max_rounds,
        )
        self.dpo = DataPlaneOrchestrator(
            self.workers,
            self.sidecars,
            snapshot,
            encoding=opts.encoding,
            runtime=self.runtime,
            node_limit=opts.node_limit,
            controller_node_limit=opts.controller_node_limit,
        )
        self._cp_done = False

    # -- pipeline ---------------------------------------------------------

    def run_control_plane(self) -> ControlPlaneStats:
        stats = self.cpo.run(
            self.shards if self.shards else None,
            refine=self.options.refine_shards,
        )
        self._cp_done = True
        return stats

    def build_data_plane(self) -> DataPlaneStats:
        if not self._cp_done:
            self.run_control_plane()
        self.dpo.build(self.store)
        return self.dpo.stats

    def checker(self):
        self.build_data_plane()
        return self.dpo.checker()

    # -- results ------------------------------------------------------------

    def report(self) -> ClusterReport:
        return ClusterReport(workers=[w.resources for w in self.workers])

    def collected_ribs(self) -> BgpResult:
        """Merge every worker's stored shards: the network-wide RIBs.

        This is the oracle interface the equivalence tests compare against
        the monolithic engine.
        """
        merged: BgpResult = {}
        for worker in self.workers:
            for node, routes in self.store.merged_routes(
                worker.worker_id
            ).items():
                merged[node] = dict(routes)
        for name in self.snapshot.configs:
            merged.setdefault(name, {})
        return merged

    def total_route_count(self) -> int:
        return sum(
            len(routes)
            for node_routes in self.collected_ribs().values()
            for routes in node_routes.values()
        )

    def prefix_holders(self) -> List[str]:
        holders = []
        for hostname, config in sorted(self.snapshot.configs.items()):
            if config.bgp is not None and config.bgp.networks:
                holders.append(hostname)
        return holders

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
        self.store.close()
        self.runtime.close()

    def __enter__(self) -> "S2Controller":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
