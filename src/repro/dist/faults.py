"""Fault injection and the failure taxonomy of the distributed pipeline.

At the paper's scale worker crashes, stalled RPCs, and lost sidecar
batches are routine, so the reproduction needs a way to *provoke* them
deterministically.  A :class:`FaultPlan` — attachable to
:class:`~repro.dist.controller.S2Options` (``fault_plan=``) or built from
the CLI's ``--inject-fault`` specs — matches injection *sites* against a
list of :class:`FaultSpec` rules and fires seeded, bounded faults:

========== ===================================================================
kind        effect
========== ===================================================================
``crash``   kill the worker process (process runtime) or raise
            :class:`InjectedWorkerCrash` inside the worker (in-process
            runtimes); recovery respawns/resets the worker and replays
            the shard from its last checkpoint
``delay``   sleep ``delay`` seconds at the matched call/phase
``error``   raise :class:`TransientRpcError` before the call is issued —
            exercised by the proxy's exponential-backoff retry loop
``drop``    discard a sidecar route batch (the CPO detects the gap and
            forces an extra round, so the resent batch heals the state)
``duplicate`` deliver a sidecar route batch twice (receivers dedupe by
            sequence number)
``respawn_fail`` make the next respawn of the matched worker fail, which
            exercises the loss-migration (and, when every worker is gone,
            the sequential-fallback) degradation path
``host_loss`` kill the worker like ``crash`` **and** fail every respawn
            attempt for the next ``heal_after`` tries — a permanently
            dead host.  The supervisor exhausts its respawn budget,
            declares the worker lost, and migrates its shards to the
            survivors; once the budget drains the host "heals" and a
            serve session's prober can rebalance work back onto it
``partition`` cut the link to the matched worker in one direction
            (``where=request`` blocks requests from reaching it,
            ``where=response`` lets the request execute but severs the
            answer); the partition heals after ``heal_after`` blocked
            transmissions, and the channel's idempotent retries — or the
            supervisor's respawn path if the retry budget runs out —
            carry the run through (socket runtime only)
``reorder`` hold a request frame on the wire until the next frame
            passes it (RPC is synchronous, so phase barriers are
            unaffected; this stresses the demultiplexer)
``slow_link`` sleep ``delay`` seconds before the frame is written —
            a congested or high-latency link
``torn_frame`` transmit only a prefix of the frame and drop the
            connection mid-frame; the receiver must detect the tear via
            the framing layer and never deserialize garbage
========== ===================================================================

Matching is deterministic: a spec constrains worker id, BGP round, shard
index, and call/phase name (``command``), fires at most ``times`` times,
and (optionally) gates on a seeded coin flip, so a seeded plan replays
identically across runs — the property the fault-matrix equivalence
tests rely on.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


# -- failure taxonomy -------------------------------------------------------


class WorkerFailure(RuntimeError):
    """Base class for infrastructure failures of one worker.

    Distinct from *result* exceptions (:class:`~repro.dist.resources.
    SimulatedOOM`, :class:`~repro.bdd.engine.BddOverflowError`): a
    ``WorkerFailure`` means the worker itself broke, and the supervisor
    may recover by respawning it and replaying from the last checkpoint.
    """

    def __init__(
        self,
        message: str,
        worker_id: Optional[int] = None,
        command: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.command = command


class WorkerDiedError(WorkerFailure):
    """The worker process died (EOF/broken pipe, or failed heartbeat)."""


class WorkerTimeoutError(WorkerFailure):
    """The worker did not answer a call within the configured timeout."""


class TransientRpcError(WorkerFailure):
    """A (possibly injected) transient RPC failure; safe to retry."""


class InjectedWorkerCrash(WorkerDiedError):
    """An in-process worker 'crashed' under fault injection."""


class RespawnError(WorkerFailure):
    """Respawning a dead worker failed; callers degrade gracefully."""


class StaleEpochError(WorkerFailure):
    """A worker presented (or was asked to act at) an out-of-date epoch.

    The serving layer (:mod:`repro.serve`) stamps every delta with a
    monotonically increasing epoch and fences shard work on it: a worker
    that was respawned from stale configure args, or that sat out an
    epoch bump behind a partition, fails the fence instead of silently
    computing against the wrong snapshot.  The supervisor treats it like
    any other :class:`WorkerFailure` — recover, re-seed the checkpoint
    *and the current epoch*, replay the shard.
    """


# -- supervision policy -----------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Budgets for supervision: call retries, shard reruns, heartbeats."""

    call_timeout: float = 120.0      # seconds to wait for one proxy call
    max_call_retries: int = 3        # transient-RPC retries per call
    backoff_base: float = 0.05       # first backoff sleep (seconds)
    backoff_factor: float = 2.0      # exponential growth per retry
    max_shard_retries: int = 2       # shard reruns after worker recovery
    max_query_retries: int = 2       # data-plane query/build reruns
    respawn_budget: int = 2          # failed respawns before a worker is
                                     # declared *lost* (shards migrate)
    heal_probe_base: float = 0.25    # first heal-probe delay (seconds)
    heal_probe_factor: float = 2.0   # probe backoff growth per failure
    heal_probe_max: float = 30.0     # probe backoff ceiling (seconds)
    heartbeat_interval_rounds: int = 10  # liveness check cadence (0 = off)
    join_timeout: float = 5.0        # grace before terminate()/kill()
    # Socket-transport knobs (see repro.dist.transport):
    backoff_jitter: float = 0.25     # +[0,j)·backoff seeded jitter fraction
    rpc_window: int = 8              # in-flight requests per channel
    connect_timeout: float = 10.0    # budget for one TCP dial
    heartbeat_interval_seconds: float = 2.0  # idle-channel ping (0 = off)

    def backoff(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        return self.backoff_base * (self.backoff_factor ** max(0, attempt - 1))


# -- fault specification ----------------------------------------------------

KINDS = (
    "crash",
    "delay",
    "error",
    "drop",
    "duplicate",
    "respawn_fail",
    "host_loss",
    "partition",
    "reorder",
    "slow_link",
    "torn_frame",
)

_CALL_KINDS = {"crash", "delay", "error", "host_loss"}
#: Kinds that kill the worker at the matched site (the caller treats a
#: fired ``host_loss`` exactly like ``crash``; the difference is what
#: happens when the supervisor tries to bring the worker back).
CRASH_KINDS = {"crash", "host_loss"}
_BATCH_KINDS = {"drop", "duplicate"}
#: Kinds injected at the socket transport layer (repro.dist.transport);
#: the in-process and pipe runtimes have no wire, so these never fire
#: there.
NETWORK_KINDS = {"partition", "reorder", "slow_link", "torn_frame"}


@dataclass
class FaultSpec:
    """One deterministic fault rule; ``None`` constraints match anything."""

    kind: str
    worker: Optional[int] = None     # worker id (batch faults: the sender)
    round: Optional[int] = None      # BGP/OSPF round token (-1 = OSPF)
    shard: Optional[int] = None      # shard flush index
    command: Optional[str] = None    # call/phase name (exact match)
    where: str = "before"            # "before" | "after_send" (crash), or
                                     # "request" | "response" (partition)
    delay: float = 0.0               # seconds (kind="delay"/"slow_link")
    times: int = 1                   # maximum firings (0 = unlimited)
    probability: float = 1.0         # seeded gate; 1.0 = always
    heal_after: int = 3              # partition: blocked sends before heal

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.where not in ("before", "after_send", "request", "response"):
            raise ValueError(f"unknown fault site {self.where!r}")
        if self.heal_after < 1:
            raise ValueError("heal_after must be >= 1")

    @property
    def direction(self) -> str:
        """Partition direction; ``before`` (the default) means request."""
        return self.where if self.where in ("request", "response") else "request"

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a CLI spec: ``kind[:key=value,...]``.

        Example: ``crash:worker=1,shard=0,command=pull_round``.
        """
        kind, _, rest = text.partition(":")
        kind = kind.strip()
        kwargs: Dict[str, object] = {}
        if rest.strip():
            for item in rest.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep:
                    raise ValueError(
                        f"bad fault option {item!r} (expected key=value)"
                    )
                if key in ("worker", "round", "shard", "times", "heal_after"):
                    kwargs[key] = int(value)
                elif key in ("delay", "probability"):
                    kwargs[key] = float(value)
                elif key in ("command", "where"):
                    kwargs[key] = value
                else:
                    raise ValueError(
                        f"unknown fault option {key!r} (valid: worker, "
                        "round, shard, command, where, delay, times, "
                        "probability, heal_after)"
                    )
        return cls(kind=kind, **kwargs)


class FaultPlan:
    """A seeded, bounded set of fault rules consulted at injection sites.

    The orchestrators keep the plan's shard/round context up to date;
    the proxies, workers, and sidecars ask it whether to fire at their
    site.  All bookkeeping is lock-protected (the threaded runtime calls
    in from phase threads).
    """

    def __init__(
        self, specs: Sequence[FaultSpec] = (), seed: int = 0
    ) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._fired: Dict[int, int] = {}       # spec index -> firing count
        self.fired_by_kind: Dict[str, int] = {}
        self._recent_drops = 0
        # (worker_id, direction) -> blocked transmissions remaining before
        # the injected partition heals.
        self._active_partitions: Dict[tuple, int] = {}
        # worker_id -> failed respawn attempts remaining before the host
        # heals (armed when a host_loss spec fires at a call site).
        self._lost_hosts: Dict[int, int] = {}
        self.current_shard: Optional[int] = None
        self.current_round: Optional[int] = None
        # Observability hook: ``fn(kind, worker_id, command)`` called for
        # every firing (outside the plan lock).  The controller points it
        # at the metrics registry / tracer; it must never fail a run.
        self.observer = None

    @classmethod
    def from_args(
        cls, specs: Sequence[str], seed: int = 0
    ) -> "FaultPlan":
        """Build a plan from CLI ``--inject-fault`` strings."""
        return cls([FaultSpec.parse(text) for text in specs], seed=seed)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    # -- context (maintained by the orchestrators) -----------------------

    def set_context(
        self,
        shard: Optional[int] = None,
        round_token: Optional[int] = None,
    ) -> None:
        if shard is not None:
            self.current_shard = shard
        if round_token is not None:
            self.current_round = round_token

    # -- matching --------------------------------------------------------

    def _matches(
        self,
        index: int,
        spec: FaultSpec,
        worker_id: Optional[int],
        command: Optional[str],
        round_token: Optional[int],
    ) -> bool:
        if spec.times and self._fired.get(index, 0) >= spec.times:
            return False
        if spec.worker is not None and spec.worker != worker_id:
            return False
        if spec.command is not None and spec.command != command:
            return False
        if spec.shard is not None and spec.shard != self.current_shard:
            return False
        if spec.round is not None:
            effective = (
                round_token if round_token is not None else self.current_round
            )
            if spec.round != effective:
                return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        return True

    def _fire(self, index: int, spec: FaultSpec) -> FaultSpec:
        self._fired[index] = self._fired.get(index, 0) + 1
        self.fired_by_kind[spec.kind] = (
            self.fired_by_kind.get(spec.kind, 0) + 1
        )
        if spec.kind == "drop":
            self._recent_drops += 1
        return spec

    def _first_match(
        self,
        kinds,
        worker_id: Optional[int],
        command: Optional[str],
        round_token: Optional[int] = None,
    ) -> Optional[FaultSpec]:
        fired: Optional[FaultSpec] = None
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.kind not in kinds:
                    continue
                if self._matches(index, spec, worker_id, command, round_token):
                    fired = self._fire(index, spec)
                    if fired.kind == "host_loss" and worker_id is not None:
                        # The host is now down: the next heal_after
                        # respawn attempts will fail too.
                        self._lost_hosts[worker_id] = (
                            self._lost_hosts.get(worker_id, 0)
                            + fired.heal_after
                        )
                    break
        if fired is not None and self.observer is not None:
            try:
                self.observer(fired.kind, worker_id, command)
            except Exception:  # noqa: BLE001 — telemetry never fails a run
                pass
        return fired

    # -- injection sites -------------------------------------------------

    def on_call(
        self, worker_id: int, command: str
    ) -> Optional[FaultSpec]:
        """Proxy call site (process runtime); caller interprets the spec."""
        return self._first_match(_CALL_KINDS, worker_id, command)

    def on_phase(
        self, worker_id: int, site: str, round_token: Optional[int] = None
    ) -> Optional[FaultSpec]:
        """In-process worker phase site; caller interprets the spec."""
        return self._first_match(_CALL_KINDS, worker_id, site, round_token)

    def on_batch(
        self, source_worker: int, round_token: Optional[int] = None
    ) -> str:
        """Sidecar route-batch site: 'deliver' | 'drop' | 'duplicate'."""
        spec = self._first_match(
            _BATCH_KINDS, source_worker, None, round_token
        )
        return spec.kind if spec is not None else "deliver"

    def should_fail_respawn(self, worker_id: int) -> bool:
        with self._lock:
            remaining = self._lost_hosts.get(worker_id, 0)
            if remaining > 0:
                # One probe consumed; the host heals when the budget
                # drains, after which respawns succeed again.
                if remaining == 1:
                    del self._lost_hosts[worker_id]
                else:
                    self._lost_hosts[worker_id] = remaining - 1
                self.fired_by_kind["respawn_fail"] = (
                    self.fired_by_kind.get("respawn_fail", 0) + 1
                )
                return True
        return (
            self._first_match({"respawn_fail"}, worker_id, None) is not None
        )

    def host_is_down(self, worker_id: int) -> bool:
        """True while an armed ``host_loss`` still refuses respawns.

        A read-only peek (no budget consumed) — used by heal probers to
        decide whether dialing the host is worth a real attempt.
        """
        with self._lock:
            return self._lost_hosts.get(worker_id, 0) > 0

    def on_transport(
        self, worker_id: int, command: str
    ) -> Optional["FaultSpec"]:
        """Socket-transport site, consulted once per frame transmission.

        A matched ``partition`` is *activated* here — recorded as a
        blocked-transmission budget for its ``(worker, direction)`` link —
        and subsequently enforced by :meth:`partition_blocks`; the other
        network kinds are returned for the channel to act on directly.
        """
        spec = self._first_match(NETWORK_KINDS, worker_id, command)
        if spec is not None and spec.kind == "partition":
            with self._lock:
                key = (worker_id, spec.direction)
                self._active_partitions[key] = (
                    self._active_partitions.get(key, 0) + spec.heal_after
                )
        return spec

    def partition_blocks(self, worker_id: int, direction: str) -> bool:
        """True while an active partition still blocks this link.

        Each blocked transmission consumes one unit of the partition's
        ``heal_after`` budget, so the link heals after a bounded number
        of retries — "heals after N rounds" at transport granularity,
        chosen over round-count healing because a fully blocked link
        prevents the very rounds that would otherwise age it out.
        """
        with self._lock:
            key = (worker_id, direction)
            remaining = self._active_partitions.get(key, 0)
            if remaining <= 0:
                return False
            if remaining == 1:
                del self._active_partitions[key]
            else:
                self._active_partitions[key] = remaining - 1
            return True

    # -- accounting ------------------------------------------------------

    def consume_drops(self) -> int:
        """Drops fired since the last call (the CPO's per-round check)."""
        with self._lock:
            count = self._recent_drops
            self._recent_drops = 0
        return count

    def count(self, kind: str) -> int:
        with self._lock:
            return self.fired_by_kind.get(kind, 0)

    @property
    def total_fired(self) -> int:
        with self._lock:
            return sum(self.fired_by_kind.values())


def sample_plan(seed: int, num_workers: int) -> FaultPlan:
    """Draw a small recoverable fault plan for differential fuzzing.

    The sampled faults are all of the *survivable* kinds (crash with
    respawn, transient RPC errors, dropped/duplicated batches, and —
    since the loss-migration layer — a permanent ``host_loss`` whose
    shards migrate to the survivors): the fuzz oracle asserts that a run
    surviving them is bit-identical to a fault-free run.  Bare
    ``respawn_fail`` is excluded on purpose — with a budget of one
    failure it is indistinguishable from a slow respawn, and exhausting
    the budget on *every* worker degrades to the sequential fallback,
    which is covered by the fault-tolerance suite instead.
    """
    rng = random.Random(seed)
    specs: List[FaultSpec] = []
    kinds = ["crash", "error", "drop", "duplicate", "host_loss"]
    for _ in range(rng.randint(1, 2)):
        kind = rng.choice(kinds)
        spec = FaultSpec(
            kind=kind,
            worker=rng.randrange(num_workers),
            times=rng.randint(1, 2),
        )
        if kind in ("crash", "error"):
            spec = FaultSpec(
                kind=kind,
                worker=spec.worker,
                times=spec.times,
                command=rng.choice(["pull_round", "compute_exports"]),
            )
        elif kind == "host_loss":
            # One permanent loss; heal_after large enough that every
            # respawn-budget attempt fails and the worker is migrated.
            spec = FaultSpec(
                kind=kind,
                worker=spec.worker,
                times=1,
                heal_after=8,
                command=rng.choice(["pull_round", "compute_exports"]),
            )
        specs.append(spec)
    return FaultPlan(specs, seed=seed)


def sample_host_loss_plan(seed: int, num_workers: int) -> FaultPlan:
    """One permanent host loss — the fuzz oracle's degraded-capacity
    variant (``repro fuzz --host-loss-every N``).

    ``heal_after`` far exceeds the respawn budget, so the matched worker
    is declared *lost* and its shards migrate to the survivors mid-run;
    the check is that the degraded run is still bit-identical to the
    fault-free baseline (and, when every worker is lost, that the
    sequential fallback is).
    """
    rng = random.Random(seed ^ 0x105E)
    spec = FaultSpec(
        kind="host_loss",
        worker=rng.randrange(num_workers),
        command=rng.choice(["pull_round", "compute_exports"]),
        times=1,
        heal_after=100,
    )
    return FaultPlan([spec], seed=seed)


def sample_network_plan(seed: int, num_workers: int) -> FaultPlan:
    """Draw a small recoverable *network* fault plan (socket runtime).

    All four network kinds are recoverable — partitions heal, torn
    frames and reorders are absorbed by the idempotent retry machinery,
    slow links merely cost time — so the chaos oracle can assert the
    run's results are bit-identical to a fault-free one.  Commands are
    constrained to the hot control-plane RPCs so every sampled fault
    actually fires.
    """
    rng = random.Random(seed ^ 0x5EED)
    commands = ["pull_round", "compute_exports", "deliver_routes_many"]
    specs: List[FaultSpec] = []
    for _ in range(rng.randint(1, 2)):
        kind = rng.choice(sorted(NETWORK_KINDS))
        spec = FaultSpec(
            kind=kind,
            worker=rng.randrange(num_workers),
            command=rng.choice(commands),
            times=rng.randint(1, 2),
        )
        if kind == "partition":
            spec.where = rng.choice(["request", "response"])
            spec.heal_after = rng.randint(1, 2)
        elif kind == "slow_link":
            spec.delay = rng.choice([0.02, 0.05])
        specs.append(spec)
    return FaultPlan(specs, seed=seed)


def sample_serve_plan(seed: int, num_workers: int) -> FaultPlan:
    """Draw a recoverable fault plan for a *serve* session (multi-delta).

    A one-shot run sees each fault at most once; a resident session
    recomputes across many epochs, so the serve plan mixes network kinds
    (partition/torn_frame stress the epoch fence: a worker healed after a
    partition must be rejected and re-seeded, not trusted) with a bounded
    crash, and gives each spec more firings so faults land in more than
    the first delta.  Everything sampled is recoverable: the serve-chaos
    oracle asserts the session's final verdicts and RIBs are bit-identical
    to a cold start at the final config.
    """
    rng = random.Random(seed ^ 0xE60C)
    commands = ["pull_round", "compute_exports", "deliver_routes_many"]
    specs: List[FaultSpec] = []
    for kind in rng.sample(sorted(NETWORK_KINDS), k=2):
        spec = FaultSpec(
            kind=kind,
            worker=rng.randrange(num_workers),
            command=rng.choice(commands),
            times=rng.randint(2, 3),
        )
        if kind == "partition":
            spec.where = rng.choice(["request", "response"])
            spec.heal_after = rng.randint(1, 2)
        elif kind == "slow_link":
            spec.delay = rng.choice([0.01, 0.02])
        specs.append(spec)
    if rng.random() < 0.5:
        # Half the plans crash a worker; one in four of those turns the
        # crash into a permanent host loss (shards migrate, capacity
        # drops, and the session rebalances back once the host heals).
        kind = "host_loss" if rng.random() < 0.25 else "crash"
        spec = FaultSpec(
            kind=kind,
            worker=rng.randrange(num_workers),
            command=rng.choice(["pull_round", "compute_exports"]),
            times=1,
        )
        if kind == "host_loss":
            spec.heal_after = rng.randint(4, 8)
        specs.append(spec)
    return FaultPlan(specs, seed=seed)
