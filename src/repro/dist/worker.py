"""The S2 worker (§3.2): real nodes, shadow nodes, and per-worker DPV.

A worker hosts the :class:`~repro.routing.node.RouterNode` models of its
assigned switches ("real" nodes) and lightweight :class:`ShadowNode`
stand-ins for every switch hosted elsewhere.  A real node pulling routes
calls ``neighbor.advertise(...)`` without knowing which kind it got —
shadows answer from the worker's mailbox, which the sidecars fill with the
boundary advertisements of remote workers each round (the batched
equivalent of the paper's RPC relay, Figure 2).

Rounds are two-phase (compute exports, then pull), i.e. Jacobi iteration:
every node reads neighbor state as of the round start.  This is what makes
the distributed fixed point independent of how nodes are spread across
workers — S2's RIBs match the monolithic engine's exactly.

For the data plane the worker owns a private BDD engine (§4.3 option 2),
builds FIBs for its real nodes from the route store, compiles predicates,
and forwards symbolic packets; packets leaving its segment are serialized
into :class:`~repro.dist.message.PacketEnvelope` batches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..bdd.engine import BddEngine
from ..bdd.headerspace import HeaderEncoding
from ..bdd.serialize import SerializedBdd, deserialize, packed_size, serialize
from ..config.loader import Snapshot
from ..dataplane.fib import NextHopResolver, build_fib
from ..dataplane.forwarding import (
    FinalPacket,
    ForwardingContext,
    PacketBuffer,
    SymbolicPacket,
)
from ..dataplane.predicates import compile_predicates
from ..net.ip import Prefix
from ..obs.tracer import NULL_TRACER, Tracer
from ..routing.node import RouterNode
from .faults import FaultPlan, InjectedWorkerCrash, StaleEpochError
from ..routing.ospf import OspfProcess
from ..routing.route import BgpRoute, Route
from .message import (
    BoundaryExports,
    OspfExports,
    PacketBatch,
    PacketEnvelope,
    RouteBatch,
)
from .resources import CostModel, WorkerResources
from .sharding import PrefixShard
from .storage import RouteStore, ShardRoutes


class ShadowNode:
    """Stand-in for a switch hosted on another worker (§3.2).

    Behaves exactly like a real node from a neighbor's point of view: its
    ``advertise`` returns the routes the real node exported this round —
    read from the worker's mailbox instead of computed locally.
    """

    def __init__(self, name: str, worker: "Worker") -> None:
        self.name = name
        self._worker = worker

    def advertise(self, to_peer_addr: int, round_token: int = -1) -> List[BgpRoute]:
        return self._worker.mailbox.get((self.name, to_peer_addr), [])

    def advertise_ospf(
        self, to_peer_addr: int = None
    ) -> Dict[Prefix, Tuple[int, frozenset]]:
        return self._worker.ospf_mailbox.get((self.name, to_peer_addr), {})


@dataclass
class PullOutcome:
    changed: bool
    updates_processed: int
    candidate_routes: int
    # Hostnames whose RIB changed this round; what makes a
    # non-convergence diagnosable (the enriched ConvergenceError).
    changed_nodes: Tuple[str, ...] = ()


class Worker:
    """One S2 worker: a segment's switch models plus the DPV context."""

    def __init__(
        self,
        worker_id: int,
        snapshot: Snapshot,
        assignment: Dict[str, int],
        resources: Optional[WorkerResources] = None,
        max_hops: int = 24,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.worker_id = worker_id
        self.snapshot = snapshot
        self.assignment = assignment
        self.max_hops = max_hops
        self.tracer = tracer or NULL_TRACER
        self.resources = resources or WorkerResources(name=f"worker{worker_id}")
        self.nodes: Dict[str, RouterNode] = {}
        self.ospf: Dict[str, OspfProcess] = {}
        self._shadows: Dict[str, ShadowNode] = {}
        self.mailbox: Dict[Tuple[str, int], List[BgpRoute]] = {}
        self.ospf_mailbox: Dict[
            Tuple[str, int], Dict[Prefix, Tuple[int, frozenset]]
        ] = {}
        # Fault-tolerance state: the (controller-installed) injector for
        # in-process runtimes, per-source batch dedup, and the snapshot
        # of installed OSPF routes that checkpoint/replay ships around.
        self.fault_injector: Optional[FaultPlan] = None
        self._batch_sequences: Dict[int, int] = {}
        self.duplicate_batches = 0
        self._ospf_installed: Dict[str, Tuple] = {}
        # Serving epoch (-1 = never seeded).  A fresh or respawned worker
        # starts stale on purpose: it must fail the epoch fence until the
        # session (or the supervisor's recovery path) seeds it.
        self.epoch: int = -1
        # Streaming telemetry (in-process runtimes): an attached source
        # emits interval-gated frames at phase boundaries straight into
        # the controller's collector.  Remote runtimes piggyback frames
        # on RPC responses instead (see WorkerService.dispatch).
        self.telemetry = None
        self.telemetry_sink = None
        self.last_round: int = -1
        self._build_nodes()
        # -- data-plane state (populated by the DPO phase) --
        self.engine: Optional[BddEngine] = None
        self.encoding: Optional[HeaderEncoding] = None
        self.context: Optional[ForwardingContext] = None
        self._buffer: Optional[PacketBuffer] = None
        self._finals: List[FinalPacket] = []
        self._fib_entries = 0
        # node id -> serialized payload, valid until the next GC/compaction
        self._serialize_memo: Dict[int, SerializedBdd] = {}

    def _build_nodes(self) -> None:
        for hostname, owner in sorted(self.assignment.items()):
            if owner == self.worker_id:
                config = self.snapshot.configs[hostname]
                self.nodes[hostname] = RouterNode(
                    config, self.snapshot.topology
                )
                self.ospf[hostname] = OspfProcess(
                    config, self.snapshot.topology
                )
        self.resources.node_count = len(self.nodes)

    # -- supervision -----------------------------------------------------

    def ping(self) -> str:
        """Liveness probe; the heartbeat path of the supervisor."""
        return "pong"

    # -- streaming telemetry ---------------------------------------------

    def attach_telemetry(self, source, sink=None) -> None:
        """Wire an in-process frame source (and collector sink)."""
        self.telemetry = source
        self.telemetry_sink = sink

    def _emit_telemetry(self, phase: str) -> None:
        """Push one interval-gated frame to the sink, if attached."""
        if self.telemetry is None or self.telemetry_sink is None:
            return
        frame = self.telemetry.maybe_frame(phase=phase)
        if frame is not None:
            try:
                self.telemetry_sink(frame)
            except Exception:  # noqa: BLE001 — observability must never
                pass  # fail the phase it observes

    def reset(self) -> None:
        """Rebuild this worker from scratch *in place* (identity kept).

        The in-process equivalent of respawning a crashed worker process:
        every RIB, mailbox, shadow, and data-plane structure is discarded
        and the node models are rebuilt from the snapshot.  The caller
        (the supervisor) restores the OSPF checkpoint afterwards and the
        CPO replays the interrupted shard.
        """
        self.nodes.clear()
        self.ospf.clear()
        self._shadows.clear()
        self.mailbox.clear()
        self.ospf_mailbox.clear()
        self._batch_sequences.clear()
        self._ospf_installed = {}
        self.epoch = -1
        self.last_round = -1
        if self.telemetry is not None:
            # A reset is the in-process respawn: the frame stream starts
            # a new incarnation so the collector sees a fresh sequence.
            self.telemetry.reincarnate()
        self._build_nodes()
        self.engine = None
        self.encoding = None
        self.context = None
        self._buffer = None
        self._finals = []
        self._fib_entries = 0
        self._serialize_memo = {}

    def _inject(self, site: str, round_token: Optional[int] = None) -> None:
        """Consult the fault plan at an in-process phase boundary."""
        if self.fault_injector is None:
            return
        spec = self.fault_injector.on_phase(self.worker_id, site, round_token)
        if spec is None:
            return
        if spec.kind in ("crash", "host_loss"):
            raise InjectedWorkerCrash(
                f"worker {self.worker_id} crashed (injected, at {site})",
                worker_id=self.worker_id,
                command=site,
            )
        if spec.kind == "delay":
            time.sleep(spec.delay)

    def fault_counters(self) -> Dict[str, int]:
        """Receiver-side fault telemetry the CPO folds into its stats."""
        return {"duplicate_batches": self.duplicate_batches}

    # -- node resolution -------------------------------------------------

    def _resolve(self, name: str):
        node = self.nodes.get(name)
        if node is not None:
            return node
        shadow = self._shadows.get(name)
        if shadow is None:
            shadow = ShadowNode(name, self)
            self._shadows[name] = shadow
        return shadow

    def owns(self, name: str) -> bool:
        return name in self.nodes

    # -- serving: epoch fence and in-place snapshot rebind -----------------

    def begin_epoch(self, epoch: int) -> int:
        """Seed the worker's serving epoch; returns the installed value."""
        self.epoch = epoch
        return self.epoch

    def epoch_value(self) -> int:
        """RPC-friendly epoch getter (proxies expose it as ``.epoch``)."""
        return self.epoch

    def _fence_epoch(self, expected: Optional[int]) -> None:
        if expected is not None and self.epoch != expected:
            raise StaleEpochError(
                f"worker {self.worker_id} is at epoch {self.epoch}, "
                f"controller expects {expected}",
                worker_id=self.worker_id,
                command="begin_shard",
            )

    def rebind_snapshot(
        self,
        snapshot: Snapshot,
        changed_hosts: Sequence[str] = (),
        epoch: Optional[int] = None,
    ) -> None:
        """Swap in a delta'd snapshot without discarding resident state.

        The incremental path for announce-only deltas: topology, the
        assignment, and the IGP result are unchanged by construction, so
        only the changed devices' node models are rebuilt (their OSPF
        routes reinstalled from the retained checkpoint); every other
        node keeps its warm state.  ``epoch``, when given, seeds the
        fence in the same call — one RPC instead of two per worker.
        """
        self.snapshot = snapshot
        for hostname in changed_hosts:
            if self.assignment.get(hostname) != self.worker_id:
                continue
            config = snapshot.configs[hostname]
            self.nodes[hostname] = RouterNode(config, snapshot.topology)
            self.ospf[hostname] = OspfProcess(config, snapshot.topology)
            for route in self._ospf_installed.get(hostname, ()):
                self.nodes[hostname].main_rib.add(route)
        self.mailbox.clear()
        self.ospf_mailbox.clear()
        if epoch is not None:
            self.epoch = epoch

    # -- control plane: shard lifecycle ------------------------------------

    def begin_shard(
        self, shard: Optional[PrefixShard], epoch: Optional[int] = None
    ) -> None:
        self._fence_epoch(epoch)
        prefixes = shard.prefixes if shard is not None else None
        for node in self.nodes.values():
            node.begin_shard(prefixes)
        self.mailbox.clear()

    def finish_shard(self) -> ShardRoutes:
        """Collect the shard's selected routes and free the RIBs."""
        result: ShardRoutes = {}
        for hostname, node in self.nodes.items():
            selected = node.finish_shard()
            if selected:
                result[hostname] = selected
            node.begin_shard(frozenset())  # free per-shard memory
        self.mailbox.clear()
        self.update_memory(enforce=False)
        return result

    def observed_dependencies(self) -> set:
        """Runtime-discovered (prefix, watched-prefix) dependencies (§7),
        aggregated across this worker's real nodes for the current shard."""
        found: set = set()
        for node in self.nodes.values():
            found |= node.observed_dependencies
        return found

    def flush_shard(self, store: RouteStore, shard_index: int) -> Tuple[int, int]:
        """Finish the shard and persist it (§3.1: write to disk).

        Returns ``(bytes written, selected routes)``.  In the process
        runtime this happens inside the worker process, so converged RIBs
        never travel over the control pipe.
        """
        self._inject("flush_shard")
        with self.tracer.span(
            "worker.flush", category="cpo", shard=shard_index
        ) as span:
            shard_routes = self.finish_shard()
            written = store.write_shard(
                self.worker_id, shard_index, shard_routes
            )
            selected = sum(
                len(routes)
                for node_routes in shard_routes.values()
                for routes in node_routes.values()
            )
            span.set(bytes=written, selected=selected)
        self._emit_telemetry("flush_shard")
        return written, selected

    # -- control plane: one round (two phases) ---------------------------------

    def compute_exports(self, round_token: int) -> Dict[int, RouteBatch]:
        """Phase A: every real node computes this round's exports.

        Local sessions are warmed into the node's export cache; sessions
        whose importer lives elsewhere are batched per target worker.
        """
        self._inject("compute_exports", round_token)
        self.last_round = round_token
        boundary: Dict[int, BoundaryExports] = {}
        with self.tracer.span(
            "worker.exports", category="cpo", round=round_token
        ) as span:
            for hostname, node in sorted(self.nodes.items()):
                for session in node.sessions:
                    exports = node.advertise(session.peer_ip, round_token)
                    owner = self.assignment.get(session.neighbor)
                    if owner is None or owner == self.worker_id:
                        continue
                    boundary.setdefault(owner, {})[
                        (hostname, session.peer_ip)
                    ] = exports
            span.set(boundary_targets=len(boundary))
        self._emit_telemetry("compute_exports")
        return {
            target: RouteBatch(
                source_worker=self.worker_id,
                target_worker=target,
                round_token=round_token,
                exports=exports,
            )
            for target, exports in boundary.items()
        }

    def deliver_routes(self, batch: RouteBatch) -> None:
        """Sidecar delivery: fill the mailbox the shadows answer from.

        Deliveries are deduplicated by the batch's per-sender sequence
        number: an RPC transport may redeliver on retry, and applying a
        batch twice must not double-count (the mailbox overwrite is
        idempotent, but the telemetry should know it happened).
        """
        last = self._batch_sequences.get(batch.source_worker)
        if last is not None and batch.sequence == last:
            self.duplicate_batches += 1
            return
        if batch.sequence:
            self._batch_sequences[batch.source_worker] = batch.sequence
        for key, routes in batch.exports.items():
            self.mailbox[key] = routes
        if batch.ospf_exports:
            for key, vector in batch.ospf_exports.items():
                self.ospf_mailbox[key] = vector

    def deliver_routes_many(self, batches: Sequence[RouteBatch]) -> None:
        """Deliver one round's worth of batches in a single call.

        The pipelined exchange path coalesces every batch bound for this
        worker into one RPC per round, so a remote runtime pays one
        round trip per (sender set, receiver) instead of one per batch.
        Dedup semantics are per-batch, identical to repeated
        :meth:`deliver_routes` calls.
        """
        for batch in batches:
            self.deliver_routes(batch)

    def pull_round(self, round_token: int) -> PullOutcome:
        """Phase B: every real node pulls from its (real or shadow) peers."""
        self._inject("pull_round", round_token)
        self.last_round = round_token
        changed_nodes: List[str] = []
        updates = 0
        with self.tracer.span(
            "worker.pull", category="cpo", round=round_token
        ) as span:
            for hostname in sorted(self.nodes):
                node = self.nodes[hostname]
                if node.pull_round(self._resolve, round_token):
                    changed_nodes.append(hostname)
                updates += node.route_count()
            candidates = sum(
                node.route_count() for node in self.nodes.values()
            )
            span.set(updates=updates, changed=len(changed_nodes))
        self._emit_telemetry("pull_round")
        return PullOutcome(
            changed=bool(changed_nodes),
            updates_processed=updates,
            candidate_routes=candidates,
            changed_nodes=tuple(changed_nodes),
        )

    # -- control plane: OSPF rounds ----------------------------------------------

    def has_ospf(self) -> bool:
        return any(process.enabled for process in self.ospf.values())

    def compute_ospf_exports(self) -> Dict[int, RouteBatch]:
        boundary: Dict[int, OspfExports] = {}
        for hostname, process in sorted(self.ospf.items()):
            if not process.enabled:
                continue
            for adjacency in process.adjacencies:
                owner = self.assignment.get(adjacency.neighbor)
                if owner is None or owner == self.worker_id:
                    continue
                # The remote puller identifies itself by its own local
                # address, which is this adjacency's peer address.
                boundary.setdefault(owner, {})[
                    (hostname, adjacency.peer_addr)
                ] = process.advertise_ospf(adjacency.peer_addr)
        return {
            target: RouteBatch(
                source_worker=self.worker_id,
                target_worker=target,
                round_token=-1,
                exports={},
                ospf_exports=exports,
            )
            for target, exports in boundary.items()
        }

    def pull_ospf_round(self) -> bool:
        self._inject("pull_ospf_round", -1)
        changed = False
        with self.tracer.span("worker.ospf_pull", category="cpo") as span:
            for hostname in sorted(self.ospf):
                process = self.ospf[hostname]
                changed |= process.pull_round(self._resolve_ospf)
            span.set(changed=changed)
        return changed

    def _resolve_ospf(self, name: str):
        process = self.ospf.get(name)
        if process is not None:
            return process
        return self._resolve(name)  # shadow answers advertise_ospf

    def install_ospf_routes(self) -> None:
        for hostname, process in self.ospf.items():
            node = self.nodes[hostname]
            routes = tuple(process.routes())
            for route in routes:
                node.main_rib.add(route)
            if routes:
                self._ospf_installed[hostname] = routes

    # -- OSPF checkpoint (respawn replay / resume) -----------------------

    def export_ospf_state(self) -> Dict[str, Tuple]:
        """The installed OSPF routes, as checkpointed by the supervisor."""
        return dict(self._ospf_installed)

    def restore_ospf_state(self, state: Optional[Dict[str, Tuple]]) -> None:
        """Reinstall a checkpointed OSPF result without re-running the IGP.

        ``MainRib.add`` dedupes, so restoring on a worker that already
        holds (some of) the routes is harmless — the property respawn
        replay and resume both lean on.
        """
        if not state:
            return
        for hostname, routes in state.items():
            node = self.nodes.get(hostname)
            if node is None:
                continue
            for route in routes:
                node.main_rib.add(route)
        self._ospf_installed = dict(state)

    # -- resource accounting -------------------------------------------------------

    def update_memory(self, enforce: bool = True) -> int:
        candidates = sum(node.route_count() for node in self.nodes.values())
        candidates += sum(len(routes) for routes in self.mailbox.values())
        bdd_nodes = self.engine.node_count if self.engine is not None else 0
        return self.resources.update_memory(
            candidates,
            bdd_nodes,
            fib_entries=self._fib_entries,
            enforce=enforce,
        )

    # -- data plane -------------------------------------------------------------------

    def build_dataplane(
        self,
        store: RouteStore,
        resolver: NextHopResolver,
        encoding: HeaderEncoding,
        node_limit: int = 1 << 24,
        bdd_kernel: str = "flat",
    ) -> int:
        """Build FIBs (from the route store) and compile predicates into
        this worker's private engine.  Returns BDD ops spent (phase 1 of
        Figure 10).  Idempotent: a rebuild (after worker recovery) starts
        from a fresh engine and FIB count."""
        self._inject("build_dataplane")
        self.encoding = encoding
        self._fib_entries = 0
        self.engine = encoding.make_engine(
            node_limit=node_limit, kernel=bdd_kernel
        )
        self.engine.tracer = self.tracer if self.tracer.enabled else None
        self.context = ForwardingContext(
            self.engine,
            encoding,
            self.snapshot.topology,
            max_hops=self.max_hops,
        )
        self._buffer = PacketBuffer(self.engine)
        with self.tracer.span("worker.build_dataplane", category="dpo") as span:
            merged = store.merged_routes(self.worker_id)
            ops_before = self.engine.ops
            for hostname, node in sorted(self.nodes.items()):
                with self.engine.batch("bdd.compile", node=hostname):
                    main_routes: List[Route] = []
                    for prefix in node.main_rib.prefixes():
                        main_routes.extend(node.main_rib.routes_for(prefix))
                    fib = build_fib(
                        hostname,
                        node.local_prefixes,
                        main_routes,
                        merged.get(hostname, {}),
                        resolver,
                    )
                    self._fib_entries += len(fib)
                    self.context.add_node(
                        compile_predicates(
                            self.snapshot.configs[hostname],
                            fib,
                            self.engine,
                            self.encoding,
                        )
                    )
            span.set(
                fib_entries=self._fib_entries,
                bdd_ops=self.engine.ops - ops_before,
            )
        # The compiled predicates are the engine's permanent roots: they
        # must survive every between-query GC for the lifetime of this
        # data plane.
        for predicates in self.context.predicates.values():
            for root in predicates.roots():
                self.engine.add_root(root)
        self._serialize_memo = {}
        self.update_memory()
        self._emit_telemetry("build_dataplane")
        return self.engine.ops - ops_before

    def set_waypoint_bit(self, node: str, metadata_index: int) -> None:
        if self.context is not None and self.owns(node):
            self.context.set_waypoint_bit(node, metadata_index)

    def clear_waypoints(self) -> None:
        if self.context is not None:
            self.context.waypoint_bits.clear()

    def inject_header(self, sources: List[str], header_payload, trace: bool) -> None:
        """Inject a (serialized) header-space BDD at owned source nodes."""
        assert self.engine is not None and self.context is not None
        header = deserialize(self.engine, header_payload)
        for source in sources:
            if not self.owns(source):
                continue
            self._buffer.push(
                SymbolicPacket(
                    bdd=header,
                    node=source,
                    in_port=None,
                    hops=0,
                    source=source,
                    path=(source,) if trace else None,
                )
            )

    def deliver_packets(self, batch: PacketBatch) -> None:
        assert self.engine is not None
        for envelope in batch.envelopes:
            bdd = deserialize(self.engine, envelope.payload)
            self._buffer.push(
                SymbolicPacket(
                    bdd=bdd,
                    node=envelope.node,
                    in_port=envelope.in_port,
                    hops=envelope.hops,
                    source=envelope.source,
                    path=envelope.path,
                )
            )

    def drain(self) -> Tuple[int, Dict[int, PacketBatch], int]:
        """Process the local queue to exhaustion (one DPO superstep).

        Returns (finals produced, per-target outgoing batches, BDD ops).
        """
        self._inject("drain")
        assert self.context is not None and self.engine is not None
        ops_before = self.engine.ops
        outgoing: Dict[int, List[PacketEnvelope]] = {}
        produced = 0
        with self.tracer.span("worker.drain", category="dpo") as span:
            waves = 0
            while self._buffer:
                with self.engine.batch("bdd.wave", wave=waves):
                    waves += 1
                    for packet in self._buffer.pop_wave():
                        finals, forwarded = self.context.process(packet)
                        self._finals.extend(finals)
                        produced += len(finals)
                        for hop in forwarded:
                            owner = self.assignment.get(
                                hop.node, self.worker_id
                            )
                            if owner == self.worker_id:
                                self._buffer.push(hop)
                            else:
                                outgoing.setdefault(owner, []).append(
                                    PacketEnvelope(
                                        payload=self._serialized(hop.bdd),
                                        node=hop.node,
                                        in_port=hop.in_port,
                                        hops=hop.hops,
                                        source=hop.source,
                                        path=hop.path,
                                    )
                                )
            span.set(
                waves=waves,
                finals=produced,
                bdd_ops=self.engine.ops - ops_before,
            )
        self.update_memory()
        self._emit_telemetry("drain")
        batches = {
            target: PacketBatch(
                source_worker=self.worker_id,
                target_worker=target,
                envelopes=tuple(envelopes),
            )
            for target, envelopes in outgoing.items()
        }
        return produced, batches, self.engine.ops - ops_before

    def _serialized(self, bdd: int) -> SerializedBdd:
        """Serialize a node id, memoized until the next GC renames ids.

        The same symbolic packet routinely leaves a worker several times
        (ECMP fans a wave out to many peers, and repeated queries revisit
        the same predicates), so the children-first DFS is worth caching.
        """
        payload = self._serialize_memo.get(bdd)
        if payload is None:
            payload = serialize(self.engine, bdd)
            self._serialize_memo[bdd] = payload
        return payload

    def collect_finals(self) -> List[dict]:
        """Serialize accumulated finals for the controller's engine."""
        assert self.engine is not None
        collected = []
        for final in self._finals:
            collected.append(
                {
                    "state": final.state,
                    "node": final.node,
                    "payload": self._serialized(final.bdd),
                    "source": final.source,
                    "hops": final.hops,
                    "path": final.path,
                    "out_port": final.out_port,
                }
            )
        return collected

    def reset_dataplane_run(self) -> None:
        """Clear per-query state (queue + finals), keeping predicates.

        This is the between-query boundary, and the one point where a
        worker's engine can be safely garbage-collected: the previous
        query's finals have been serialized to the controller, so the
        compiled predicates (the registered roots) are the only node ids
        that must survive.  Collecting here is what keeps per-worker
        node counts flat across a multi-query (or multi-shard) DPV run
        instead of growing monotonically.
        """
        assert self.engine is not None
        self._buffer = PacketBuffer(self.engine)
        self._finals.clear()
        self.collect_engine_garbage()

    def collect_engine_garbage(self) -> int:
        """Mark-and-sweep the data-plane engine from the predicate roots.

        Only valid when no query is in flight (empty buffer and finals —
        their node ids are not registered as roots).  Returns the number
        of nodes reclaimed by this collection.
        """
        if self.engine is None or self.context is None:
            return 0
        before = self.engine.node_count
        remap = self.engine.collect_garbage()
        for predicates in self.context.predicates.values():
            predicates.remap(remap)
        self._serialize_memo = {}
        self.update_memory(enforce=False)
        return before - self.engine.node_count

    def engine_counters(self) -> Dict[str, float]:
        """The data-plane engine's health counters (empty pre-build)."""
        if self.engine is None:
            return {}
        return self.engine.counters()

    @property
    def pending_packets(self) -> int:
        return len(self._buffer) if self._buffer is not None else 0
