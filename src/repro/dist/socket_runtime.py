"""Socket-backed workers: the paper's deployment shape over real TCP.

The process runtime scales out on one machine over ``mp.Pipe``; this
module puts every worker behind a TCP server speaking the hardened
framed RPC protocol of :mod:`repro.dist.transport`, so the controller
and workers can live on different machines — S2's actual deployment
(§5: one controller plus workers on separate servers).  Localhost is the
default; pointing ``worker_hosts`` at remote ``host:port`` listeners
(each started with ``repro worker --listen``) is a config change, not a
code change.

:class:`SocketWorkerProxy` subclasses the pipe proxy and overrides only
the transact layer — the supervision stack above it (fault preamble,
retry loop, relayed exceptions, :class:`WorkerSupervisor` recovery) is
shared verbatim, which is the point: recovery semantics must not depend
on the wire.

Two spawn modes:

* **managed** (default): the pool forks one server process per worker on
  this machine — all processes before any channel thread — and learns
  each ephemeral port over a handshake pipe.  Respawn kills and re-forks.
* **connect**: the pool dials pre-started listeners from
  ``worker_hosts``.  Respawn is a reconnect plus a ``__configure__``
  replay (the listener outlives its worker state; a new incarnation is
  a logical respawn server-side).

In both modes workers receive their identity, snapshot, and assignment
via the idempotent ``__configure__`` RPC, so the listener binary is
fleet-generic.

Note for true multi-host runs: shard flushes and data-plane builds go
through the on-disk :class:`~repro.dist.storage.RouteStore`, so the
store directory must be on storage shared by all hosts (matching the
paper's write-to-persistent-storage step).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..config.loader import Snapshot
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from .faults import (
    FaultPlan,
    RespawnError,
    RetryPolicy,
    WorkerDiedError,
    WorkerFailure,
    WorkerTimeoutError,
)
from .process_runtime import WorkerProcessProxy
from .resources import WorkerResources
from .service import WorkerService
from .transport import (
    RpcChannel,
    RpcServer,
    RpcTimeoutError,
    TransportError,
    parse_hostport,
)

#: Seconds to wait for a freshly forked worker to report its port.
_HANDSHAKE_TIMEOUT = 30.0


def _socket_worker_main(handshake, host: str, port: int) -> None:
    """Worker process entry: bind, report the port, serve until stopped."""
    service = WorkerService()

    def handler(command: str, args: tuple, flow_id):
        if command == "__configure__":
            service.configure(*args)
            return "ok", None
        return service.dispatch(command, args, flow_id)

    server = RpcServer(handler, host=host, port=port)
    try:
        handshake.send((server.host, server.port))
        handshake.close()
        server.serve_forever()
    finally:
        service.finish()


def serve_worker(
    listen: str,
    install_signal_handlers: bool = True,
    metrics_listen: Optional[str] = None,
) -> None:
    """Run a standalone worker listener (the ``repro worker`` command).

    Blocks until a controller sends ``__stop__``, or SIGTERM/SIGINT
    arrives.  Identity, snapshot, and assignment all arrive over the
    wire via ``__configure__``; reconfiguration is a logical respawn, so
    one listener can serve many runs.

    ``metrics_listen`` (``host:port``) additionally exposes a local
    OpenMetrics scrape endpoint reporting this worker's live frame —
    remote workers in connect mode are observable even when the
    controller is on another machine.

    Shutdown is graceful: a signal triggers a *draining* server stop —
    the RPC currently executing finishes and its response is delivered
    — then the tracer shard is flushed and the call returns normally
    (exit code 0 from the CLI).
    """
    host, port = parse_hostport(listen)
    service = WorkerService()

    def handler(command: str, args: tuple, flow_id):
        if command == "__configure__":
            service.configure(*args)
            return "ok", None
        return service.dispatch(command, args, flow_id)

    server = RpcServer(handler, host=host, port=port)
    metrics_server = None
    if metrics_listen:
        from ..obs.openmetrics import MetricsHTTPServer
        from ..obs.telemetry import TelemetryCollector

        scrape_metrics = MetricsRegistry()
        collector = TelemetryCollector(scrape_metrics)
        # A dedicated source per worker incarnation: sharing the RPC
        # piggyback source would consume its sequence numbers and show
        # up as frame gaps on the controller side.
        scrape_sources: Dict[Tuple[int, int], Any] = {}

        def _scrape_snapshot() -> Dict[str, Any]:
            # Fold a fresh frame on demand: the scrape itself is the
            # sampling clock for a standalone worker.
            worker = service.worker
            if worker is not None:
                key = (id(worker), service.incarnation)
                source = scrape_sources.get(key)
                if source is None:
                    scrape_sources.clear()
                    source = TelemetrySource(
                        worker,
                        interval=1e-9,
                        incarnation=max(service.incarnation, 0),
                    )
                    scrape_sources[key] = source
                collector.ingest(source.frame(phase="scrape"))
            return scrape_metrics.snapshot()

        def _scrape_status() -> Dict[str, Any]:
            return {
                "role": "worker",
                "configured": service.configured,
                "incarnation": service.incarnation,
                "listen": f"{server.host}:{server.port}",
            }

        mhost, mport = parse_hostport(metrics_listen)
        metrics_server = MetricsHTTPServer(
            _scrape_snapshot,
            host=mhost,
            port=mport,
            status_fn=_scrape_status,
        )
        print(
            f"worker metrics on http://{metrics_server.address}/metrics",
            flush=True,
        )
    if install_signal_handlers:
        import signal

        def _drain(_signum, _frame) -> None:
            server.stop(drain=True)

        try:
            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
        except ValueError:
            pass  # not the main thread (embedded in tests)
    print(f"worker listening on {server.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    finally:
        if metrics_server is not None:
            metrics_server.close()
        service.finish()


class _SocketCallFuture:
    """Proxy-level future over a wire :class:`RpcFuture`.

    Settling maps transport failures to worker failures and applies the
    proxy's ``_relay`` (telemetry mirror, exception relaying) — the same
    post-processing a blocking call would have done inline.
    """

    __slots__ = ("_proxy", "_command", "_future")

    def __init__(self, proxy, command: str, future) -> None:
        self._proxy = proxy
        self._command = command
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> Any:
        del timeout  # the channel enforces its own call deadline
        try:
            status, payload = self._future.result()
        except RpcTimeoutError as exc:
            raise WorkerTimeoutError(
                str(exc),
                worker_id=self._proxy.worker_id,
                command=self._command,
            ) from exc
        except TransportError as exc:
            raise WorkerDiedError(
                f"worker {self._proxy.worker_id} unreachable during "
                f"{self._command}: {exc}",
                worker_id=self._proxy.worker_id,
                command=self._command,
            ) from exc
        return self._proxy._relay(self._command, status, payload)


class SocketWorkerProxy(WorkerProcessProxy):
    """Controller-side handle for one socket worker.

    Same surface and supervision semantics as the pipe proxy; only the
    transact layer differs.  No poisoning is needed: the channel's
    idempotent request ids make stale responses self-identifying, so a
    timed-out proxy stays usable.
    """

    def __init__(
        self,
        worker_id: int,
        channel: RpcChannel,
        process,
        resources: WorkerResources,
        policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        telemetry_sink: Optional[Callable[[Dict[str, Any]], Any]] = None,
    ) -> None:
        super().__init__(
            worker_id,
            connection=None,
            process=process,
            resources=resources,
            policy=policy,
            fault_plan=fault_plan,
            tracer=tracer,
            telemetry_sink=telemetry_sink,
        )
        self._channel = channel

    # -- pipelined calls ---------------------------------------------------

    def call_nowait(self, command: str, *args):
        """True wire pipelining: issue on the channel, relay at result.

        Unlike the pipe proxy (one request in flight per pipe, pipelined
        by a dispatch thread), the socket channel multiplexes responses
        by request id, so several requests genuinely share the wire up
        to ``rpc_window``.  With a fault plan attached we fall back to
        the thread-backed path so injected call faults keep their exact
        blocking-call semantics (preamble, transient retries).
        """
        if self._fault_plan is not None:
            return super().call_nowait(command, *args)
        flow_id = None
        if self.tracer.enabled:
            self._flow_seq += 1
            flow_id = (self.worker_id + 1) * 1_000_000 + self._flow_seq
        wire_future = self._channel.call_nowait(command, args, flow_id=flow_id)
        return _SocketCallFuture(self, command, wire_future)

    # -- transact (the only wire-specific layer) --------------------------

    def _transact(
        self, command: str, args: tuple, flow_id, kill_after_send: bool, span
    ) -> Tuple[str, Any]:
        post_send = self._fault_kill if kill_after_send else None
        try:
            return self._channel.call(
                command,
                args,
                flow_id=flow_id,
                post_send=post_send,
                span=span,
            )
        except RpcTimeoutError as exc:
            raise WorkerTimeoutError(
                str(exc), worker_id=self.worker_id, command=command
            ) from exc
        except TransportError as exc:
            raise WorkerDiedError(
                f"worker {self.worker_id} unreachable during {command}: "
                f"{exc}",
                worker_id=self.worker_id,
                command=command,
            ) from exc

    # -- supervision ------------------------------------------------------

    def is_alive(self) -> bool:
        if self._process is not None and not self._process.is_alive():
            return False
        return self._channel.healthy()

    def reap(self) -> None:
        self._channel.close()
        process = self._process
        if process is None:
            return
        try:
            if process.is_alive():
                process.terminate()
                process.join(self._policy.join_timeout)
            if process.is_alive():
                process.kill()
                process.join(self._policy.join_timeout)
        except (OSError, AttributeError):
            pass

    def revive(self, channel: RpcChannel, process) -> None:
        """Adopt a fresh channel (and process); the identity survives."""
        old, self._channel = self._channel, channel
        old.close()
        self._process = process
        self.resources.respawns += 1

    # -- lifecycle --------------------------------------------------------

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self._channel.call("__stop__", timeout=timeout, internal=True)
        except TransportError:
            pass
        self._channel.close()
        process = self._process
        if process is None:
            return
        process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout)
        if process.is_alive():
            process.kill()
            process.join(timeout)

    def transport_counters(self) -> Dict[str, int]:
        return dict(self._channel.counters)


class SocketWorkerPool:
    """Spawns (or dials) one TCP worker per id and hands out proxies.

    Mirrors :class:`~repro.dist.process_runtime.ProcessWorkerPool`'s
    supervision surface (``proxies``, ``dead_workers``, ``ping_all``,
    ``respawn``, ``close``) so :class:`WorkerSupervisor` treats both
    interchangeably.
    """

    def __init__(
        self,
        snapshot: Snapshot,
        assignment: Dict[str, int],
        num_workers: int,
        capacity: int,
        cost_model,
        max_hops: int = 24,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        trace_dir: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        worker_hosts: Optional[Sequence[str]] = None,
        host: str = "127.0.0.1",
        telemetry_interval: float = 0.0,
        telemetry_sink: Optional[Callable[[Dict[str, Any]], Any]] = None,
    ) -> None:
        self._context = mp.get_context(
            "fork" if os.name == "posix" else "spawn"
        )
        self._configure_args = (
            snapshot, assignment, capacity, cost_model, max_hops
        )
        self._policy = retry_policy or RetryPolicy()
        self._fault_plan = fault_plan
        self._trace_dir = trace_dir
        self._metrics = metrics
        self._host = host
        self._telemetry_interval = telemetry_interval
        self._incarnations: Dict[int, int] = {}
        # Workers declared permanently lost: worker_id -> their channel
        # counters frozen at loss time (the live channel is gone, but the
        # traffic it carried must stay reportable, tagged lost).
        self._lost: Dict[int, Dict[str, Any]] = {}
        self.managed = not worker_hosts
        if worker_hosts:
            addresses = [parse_hostport(spec) for spec in worker_hosts]
            if len(addresses) < num_workers:
                raise ValueError(
                    f"{num_workers} workers but only {len(addresses)} "
                    "worker hosts"
                )
            spawned: List[Tuple[Any, Tuple[str, int]]] = [
                (None, addresses[worker_id])
                for worker_id in range(num_workers)
            ]
        else:
            # Fork every server process before any channel exists: the rx
            # and heartbeat threads must never be duplicated into a child.
            spawned = [
                self._spawn_process(worker_id)
                for worker_id in range(num_workers)
            ]
        self.proxies: List[SocketWorkerProxy] = []
        for worker_id, (process, address) in enumerate(spawned):
            channel = self._open_channel(worker_id, address)
            self.proxies.append(
                SocketWorkerProxy(
                    worker_id,
                    channel,
                    process,
                    WorkerResources(
                        name=f"worker{worker_id}",
                        capacity=capacity,
                        model=cost_model,
                    ),
                    policy=self._policy,
                    fault_plan=fault_plan,
                    tracer=tracer,
                    telemetry_sink=telemetry_sink,
                )
            )
            self._configure(worker_id, channel)

    # -- spawning / dialing ----------------------------------------------

    def _spawn_process(self, worker_id: int):
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_socket_worker_main,
            args=(child_conn, self._host, 0),
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_HANDSHAKE_TIMEOUT):
            process.kill()
            raise RespawnError(
                f"worker {worker_id} never reported its port",
                worker_id=worker_id,
            )
        address = parent_conn.recv()
        parent_conn.close()
        return process, tuple(address)

    def _open_channel(
        self, worker_id: int, address: Tuple[str, int]
    ) -> RpcChannel:
        channel = RpcChannel(
            address,
            policy=self._policy,
            worker_id=worker_id,
            fault_plan=self._fault_plan,
            metrics=self._metrics,
            heartbeat=self._policy.heartbeat_interval_seconds > 0,
        )
        return channel

    def _configure(self, worker_id: int, channel: RpcChannel) -> None:
        """Ship identity + snapshot to the worker (idempotent RPC)."""
        snapshot, assignment, capacity, cost_model, max_hops = (
            self._configure_args
        )
        incarnation = self._incarnations.get(worker_id, -1) + 1
        self._incarnations[worker_id] = incarnation
        status, payload = channel.call(
            "__configure__",
            (
                worker_id,
                snapshot,
                assignment,
                capacity,
                cost_model,
                max_hops,
                self._trace_dir,
                incarnation,
                self._telemetry_interval,
            ),
            internal=True,
        )
        if status != "ok":
            raise RespawnError(
                f"worker {worker_id} failed to configure: {payload!r}",
                worker_id=worker_id,
            )

    # -- serving ----------------------------------------------------------

    def update_snapshot(
        self, snapshot: Snapshot, assignment: Optional[Dict[str, int]] = None
    ) -> None:
        """Point future respawn ``__configure__`` replays at the current
        snapshot/assignment (see the process pool's docstring: a worker
        respawned mid-epoch from boot-time args would carry a stale
        config *and* a stale epoch)."""
        _old_snapshot, old_assignment, capacity, cost_model, max_hops = (
            self._configure_args
        )
        self._configure_args = (
            snapshot,
            assignment if assignment is not None else old_assignment,
            capacity,
            cost_model,
            max_hops,
        )

    def reconfigure(
        self, snapshot: Snapshot, assignment: Dict[str, int]
    ) -> None:
        """Rebind every live worker to a new snapshot (logical respawn);
        listeners and channels stay resident.  Transport failures surface
        as :class:`WorkerFailure` for the caller's supervisor."""
        self.update_snapshot(snapshot, assignment)
        for proxy in self.proxies:
            if proxy.worker_id in self._lost:
                continue
            try:
                self._configure(proxy.worker_id, proxy._channel)
            except (TransportError, RespawnError) as exc:
                raise WorkerDiedError(
                    f"worker {proxy.worker_id} unreachable during "
                    f"reconfigure: {exc}",
                    worker_id=proxy.worker_id,
                    command="__configure__",
                ) from exc

    # -- supervision ------------------------------------------------------

    def mark_lost(self, worker_id: int) -> None:
        """Blacklist a worker, freezing its transport counters.

        The proxy slot is retained — ``respawn`` doubles as the heal
        probe and clears the mark on success — but fleet sweeps skip the
        worker and :meth:`transport_counters` reports the frozen stats
        tagged ``lost`` until then.
        """
        proxy = self.proxies[worker_id]
        try:
            counters: Dict[str, Any] = dict(proxy.transport_counters())
        except Exception:  # noqa: BLE001 — the channel may be torn down
            counters = {}
        self._lost[worker_id] = counters

    @property
    def lost_workers(self) -> List[int]:
        return sorted(self._lost)

    def dead_workers(self) -> List[int]:
        return [
            proxy.worker_id
            for proxy in self.proxies
            if proxy.worker_id not in self._lost and not proxy.is_alive()
        ]

    def ping_all(self) -> List[int]:
        failed = []
        for proxy in self.proxies:
            if proxy.worker_id in self._lost:
                continue
            try:
                if not proxy.ping():
                    failed.append(proxy.worker_id)
            except WorkerFailure:
                failed.append(proxy.worker_id)
        return failed

    def respawn(self, worker_id: int) -> SocketWorkerProxy:
        """Give the worker a fresh process (managed) or connection.

        In connect mode the listener is assumed to outlive its worker
        state: respawn redials and replays ``__configure__`` at the next
        incarnation, which rebuilds the worker server-side.  Raises
        :class:`RespawnError` when the worker cannot be brought back —
        the controller's cue to degrade to the sequential fallback.
        """
        if self._fault_plan is not None and (
            self._fault_plan.should_fail_respawn(worker_id)
        ):
            raise RespawnError(
                f"respawn of worker {worker_id} failed (injected)",
                worker_id=worker_id,
            )
        proxy = self.proxies[worker_id]
        address = proxy._channel.address
        proxy.reap()
        try:
            if self.managed:
                process, address = self._spawn_process(worker_id)
            else:
                process = None
            channel = self._open_channel(worker_id, address)
            channel.connect()
            proxy.revive(channel, process)
            self._configure(worker_id, channel)
            self._lost.pop(worker_id, None)
        except TransportError as exc:
            raise RespawnError(
                f"respawn of worker {worker_id} failed: {exc}",
                worker_id=worker_id,
            ) from exc
        except OSError as exc:
            raise RespawnError(
                f"respawn of worker {worker_id} failed: {exc!r}",
                worker_id=worker_id,
            ) from exc
        return proxy

    # -- telemetry --------------------------------------------------------

    def transport_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-worker channel counters plus a fleet-wide total.

        A lost worker's entry is its counters frozen at loss time,
        tagged ``lost: True`` — never the fresh zeros a torn-down
        channel would report.
        """
        per_worker: Dict[str, Dict[str, Any]] = {}
        for proxy in self.proxies:
            if proxy.worker_id in self._lost:
                counters = dict(self._lost[proxy.worker_id])
                counters["lost"] = True
            else:
                counters = dict(proxy.transport_counters())
            per_worker[f"worker{proxy.worker_id}"] = counters
        totals: Dict[str, int] = {}
        for counters in per_worker.values():
            for name, value in counters.items():
                if name == "lost":
                    continue
                if name == "inflight_high_water":
                    totals[name] = max(totals.get(name, 0), value)
                else:
                    totals[name] = totals.get(name, 0) + value
        per_worker["total"] = totals
        return per_worker

    def close(self) -> None:
        """Stop every worker; never raises (best-effort teardown)."""
        for proxy in self.proxies:
            try:
                proxy.stop(timeout=self._policy.join_timeout)
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
        for proxy in self.proxies:
            process = proxy._process
            try:
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(self._policy.join_timeout)
            except (OSError, AttributeError):
                pass
