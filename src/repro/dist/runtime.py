"""Execution backends for worker phases.

The orchestrators express each phase as "run this thunk on every worker";
the runtime decides how.  ``sequential`` executes workers one by one in a
deterministic order — the modeled clock still accounts for parallelism, so
this is the default for reproducible experiments.  ``threaded`` runs the
phase on a thread pool: the numbers are identical (phases are data-race
free by the two-phase round design), but the real concurrency machinery —
mailboxes, shadow proxies, batched sidecar traffic — is exercised under
interleaving, which the concurrency tests rely on.

(A note on fidelity: CPython's GIL means threads add little wall-clock
speedup for this pure-Python workload; the paper's wall-clock scaling
claims are reproduced through the modeled clock, as DESIGN.md documents.)
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class Runtime:
    """Maps thunks over workers; subclasses choose the execution policy."""

    def map(self, thunks: Sequence[Callable[[], T]]) -> List[T]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SequentialRuntime(Runtime):
    """Deterministic in-order execution (the default)."""

    def map(self, thunks: Sequence[Callable[[], T]]) -> List[T]:
        return [thunk() for thunk in thunks]


class ThreadedRuntime(Runtime):
    """One thread per worker phase, joined at the phase barrier."""

    def __init__(self, max_threads: Optional[int] = None) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_threads or 16)

    def map(self, thunks: Sequence[Callable[[], T]]) -> List[T]:
        futures = [self._pool.submit(thunk) for thunk in thunks]
        # Wait for *every* future before surfacing a failure: recovery
        # (worker respawn, shard replay) must not start while sibling
        # phase thunks are still mutating worker state.
        results: List[T] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)  # type: ignore[arg-type]
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def make_runtime(kind: str, max_threads: Optional[int] = None) -> Runtime:
    if kind == "sequential":
        return SequentialRuntime()
    if kind == "threaded":
        return ThreadedRuntime(max_threads)
    raise ValueError(f"unknown runtime {kind!r}")
