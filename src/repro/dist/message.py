"""Wire messages between sidecars, with real serialization accounting.

All cross-worker traffic is expressed as these dataclasses.  The in-process
transports deliver the objects directly but still *pickle them once* to
measure the bytes an RPC transport would move (the paper uses gRPC with
Java serialization; we charge the measured payload size to the sender's
resource model).  The process transport actually ships the pickled bytes.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd.serialize import SerializedBdd
from ..net.ip import Prefix
from ..routing.route import BgpRoute

# (exporting node, importer-side session local address) -> exported routes
BoundaryExports = Dict[Tuple[str, int], List[BgpRoute]]

# (exporting node, importer-side local address) -> OSPF distance vector
OspfExports = Dict[Tuple[str, int], Dict[Prefix, Tuple[int, frozenset]]]


@dataclass(frozen=True)
class RouteBatch:
    """One round's boundary route advertisements toward one worker.

    ``sequence`` is a per-sender monotonically increasing counter stamped
    by the sidecar at send time.  Receivers track the last sequence seen
    per source worker, which lets them discard duplicated deliveries (a
    real RPC transport can redeliver on retry) without any coordination.
    """

    source_worker: int
    target_worker: int
    round_token: int
    exports: BoundaryExports
    ospf_exports: Optional[OspfExports] = None
    sequence: int = 0

    def route_count(self) -> int:
        return sum(len(routes) for routes in self.exports.values())


@dataclass(frozen=True)
class PacketEnvelope:
    """A symbolic packet crossing a worker boundary (§4.3).

    The BDD travels in serialized form; the receiving worker re-encodes
    it in its own engine (the "option 2" design the paper adopts).
    """

    payload: SerializedBdd
    node: str
    in_port: str
    hops: int
    source: str
    path: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class PacketBatch:
    source_worker: int
    target_worker: int
    envelopes: Tuple[PacketEnvelope, ...]


def measured_size(message: object) -> int:
    """The bytes an RPC transport would move for ``message``."""
    return len(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))
