"""The hardened RPC transport: TCP framing, channels, and servers.

The paper's deployment runs the controller and workers on five separate
servers over a real network (§5); this module is the layer that makes
the reproduction's distributed claims testable on that footing.  It has
three parts:

* **Framing** — every message travels as a length-prefixed frame with a
  magic tag and a CRC32 trailer.  :class:`FrameDecoder` reassembles
  frames from arbitrary byte splits and *refuses to hand garbage
  upward*: a bad magic, an impossible length, or a checksum mismatch
  raises :class:`FrameError`, and the connection is dropped and
  re-established rather than resynchronized in place (TCP gives no
  reliable mid-stream resync point).  A torn frame — the connection
  dying mid-frame — is detected by the leftover partial buffer.

* **`RpcChannel`** — the client side.  Every request carries an
  idempotent ``(channel_id, request_id)`` pair, runs under a per-call
  deadline, and is retried with exponential backoff plus jitter across
  transparent reconnections.  A bounded in-flight window applies
  backpressure; a background heartbeat probes liveness while the
  channel is idle.  Because retries reuse the request id and the server
  caches responses, a retry after a lost response is answered from the
  cache — the request is **executed at most once**.

* **`RpcServer`** — the service loop: single connection at a time,
  sequential request execution, a bounded response cache keyed by the
  idempotent request id, and tolerance for torn frames and vanished
  clients (the response stays cached for the retry).

The module also owns the :class:`TransportError` taxonomy that unifies
what used to be scattered ``(BrokenPipeError, EOFError, OSError)``
tuples: supervisors and proxies match on these types, and
:func:`mapped_transport_errors` converts OS-level failures at the edge.

Network-level chaos faults (``partition``, ``reorder``, ``slow_link``,
``torn_frame`` — see :mod:`repro.dist.faults`) are injected in
:meth:`RpcChannel._transmit`, i.e. at the same layer a real lossy
network would bite.
"""

from __future__ import annotations

import itertools
import os
import pickle
import random
import socket
import struct
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

# -- failure taxonomy -------------------------------------------------------


class TransportError(RuntimeError):
    """Base class for transport-level failures.

    Proxies translate these into :class:`~repro.dist.faults.WorkerFailure`
    subclasses; everything below the proxy matches on this taxonomy
    instead of on ``(BrokenPipeError, EOFError, OSError)`` tuples.
    """


class ConnectionLostError(TransportError):
    """The peer is unreachable: refused, reset, EOF, or torn mid-frame."""


class FrameError(TransportError):
    """The byte stream does not parse as frames; never deserialized."""


class RpcTimeoutError(TransportError):
    """A call's deadline expired (including the backpressure wait)."""


#: OS-level exceptions the edges convert into the taxonomy.  EOFError is
#: what a pipe raises on peer death; socket.timeout is an OSError alias
#: since 3.10 but listed for clarity.
_OS_FAILURES = (BrokenPipeError, ConnectionError, EOFError, OSError)


@contextmanager
def mapped_transport_errors(context: str = ""):
    """Convert OS-level I/O failures into :class:`ConnectionLostError`.

    Taxonomy errors pass through untouched, so nesting is harmless.
    """
    try:
        yield
    except TransportError:
        raise
    except _OS_FAILURES as exc:
        suffix = f" during {context}" if context else ""
        raise ConnectionLostError(
            f"connection lost{suffix}: {exc!r}"
        ) from exc


# -- framing ----------------------------------------------------------------

#: Frame magic: protocol name + version.  Changing the wire format bumps
#: the version, and mixed-version peers fail loudly on the first frame.
FRAME_MAGIC = b"S2R1"

_HEADER = struct.Struct("!4sII")  # magic, payload length, CRC32(payload)

#: Upper bound on one frame's payload: a snapshot-sized configure call
#: fits with room to spare; anything bigger is stream corruption.
MAX_FRAME_BYTES = 1 << 28


def encode_frame(payload: bytes) -> bytes:
    """One wire frame: header (magic, length, crc) + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"refusing to encode a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(
        FRAME_MAGIC, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    ) + payload


class FrameDecoder:
    """Incremental frame reassembly from arbitrary byte splits.

    ``feed`` returns every complete payload the new bytes finished;
    partial frames stay buffered.  Corruption (bad magic, impossible
    length, CRC mismatch) raises :class:`FrameError` — the caller must
    drop the connection; the buffer cannot be trusted past that point.
    """

    __slots__ = ("_buffer", "frames_decoded", "bytes_decoded")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (torn-frame tell)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer.extend(data)
        payloads: List[bytes] = []
        while len(self._buffer) >= _HEADER.size:
            magic, length, crc = _HEADER.unpack_from(self._buffer)
            if magic != FRAME_MAGIC:
                raise FrameError(
                    f"bad frame magic {bytes(magic)!r} "
                    f"(expected {FRAME_MAGIC!r}); stream is corrupt"
                )
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"frame length {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte limit; stream is corrupt"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise FrameError(
                    f"frame checksum mismatch over {length} bytes; "
                    "refusing to deserialize"
                )
            self.frames_decoded += 1
            self.bytes_decoded += end
            payloads.append(payload)
        return payloads


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


# -- the client channel -----------------------------------------------------

#: Channel ids must be unique across every channel that might ever talk
#: to one server (respawns create fresh channels whose request ids
#: restart at 1), so the response cache key never collides.
_CHANNEL_COUNTER = itertools.count(1)


class _Pending:
    """One in-flight request awaiting its response (or a failure)."""

    __slots__ = ("event", "status", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.status: Optional[str] = None
        self.payload: Any = None

    def reset(self) -> None:
        self.event = threading.Event()
        self.status = None
        self.payload = None

    def fail(self, exc: TransportError) -> None:
        if not self.event.is_set():
            self.status = "__transport__"
            self.payload = exc
            self.event.set()


class RpcFuture:
    """One pipelined RPC issued with :meth:`RpcChannel.call_nowait`.

    The request is already on the wire (or its first transmission
    already failed) by the time the caller holds this object; the
    response streams in on the channel's receive thread while the caller
    does other work.  :meth:`result` then settles the call with exactly
    the semantics the blocking :meth:`RpcChannel.call` always had —
    deadline, jittered-backoff retransmits under the same idempotent
    request id, ``__transport__`` demux — and releases the in-flight
    window slot.  ``result()`` is idempotent: the outcome is cached and
    re-returned (or re-raised) on repeat calls.
    """

    __slots__ = (
        "_channel",
        "_command",
        "_frame",
        "_pending",
        "_rid",
        "_deadline",
        "_budget",
        "_post_send",
        "_internal",
        "_span",
        "_send_failure",
        "_done",
        "_outcome",
        "_error",
    )

    def __init__(
        self,
        channel: "RpcChannel",
        command: str,
        frame: bytes,
        pending: _Pending,
        rid: int,
        deadline: float,
        budget: float,
        post_send,
        internal: bool,
        span,
        send_failure: Optional[TransportError],
    ) -> None:
        self._channel = channel
        self._command = command
        self._frame = frame
        self._pending = pending
        self._rid = rid
        self._deadline = deadline
        self._budget = budget
        self._post_send = post_send
        self._internal = internal
        self._span = span
        self._send_failure = send_failure
        self._done = False
        self._outcome: Optional[Tuple[str, Any]] = None
        self._error: Optional[TransportError] = None

    def done(self) -> bool:
        """True once the response (or a transport failure) arrived.

        Purely advisory — a pending retransmit still counts as not done.
        """
        return self._done or self._pending.event.is_set()

    def _settle(self) -> Tuple[str, Any]:
        channel = self._channel
        pending = self._pending
        failure = self._send_failure
        attempts = 0
        while True:
            if failure is None:
                remaining = self._deadline - time.monotonic()
                if remaining > 0 and pending.event.wait(remaining):
                    if pending.status == "__transport__":
                        failure = pending.payload
                    else:
                        channel._suspect_count = 0
                        if attempts and self._span is not None:
                            self._span.set(transport_retries=attempts)
                        return pending.status, pending.payload
                else:
                    channel._count("timeouts")
                    failure = RpcTimeoutError(
                        f"worker {channel.worker_id} did not answer "
                        f"{self._command} within {self._budget:.1f}s"
                    )
            attempts += 1
            out_of_budget = (
                attempts > channel._policy.max_call_retries
                or time.monotonic() >= self._deadline
            )
            if self._span is not None:
                self._span.set(
                    transport_retries=attempts,
                    transport_failure=type(failure).__name__,
                )
            if out_of_budget:
                raise failure
            channel._count("retries")
            time.sleep(
                min(
                    channel._jittered_backoff(attempts),
                    max(0.0, self._deadline - time.monotonic()),
                )
            )
            failure = None
            pending.reset()
            try:
                channel._ensure_connected(self._deadline)
                channel._transmit(self._frame, self._command, self._internal)
                if self._post_send is not None:
                    callback, self._post_send = self._post_send, None
                    callback()
            except TransportError as exc:
                failure = exc

    def result(self) -> Tuple[str, Any]:
        """Block until settled; return ``(status, payload)`` or raise."""
        if self._done:
            if self._error is not None:
                raise self._error
            return self._outcome
        try:
            self._outcome = self._settle()
            return self._outcome
        except TransportError as exc:
            self._error = exc
            raise
        finally:
            self._done = True
            channel = self._channel
            with channel._pending_lock:
                channel._pending.pop(self._rid, None)
            channel._inflight -= 1
            channel._window.release()


class RpcChannel:
    """One hardened client connection to one worker's RPC server.

    Guarantees, in the vocabulary of the design doc:

    * **idempotency** — requests are keyed ``(channel_id, request_id)``
      and retries resend the same key, so the server's response cache
      makes every request at-most-once-executed;
    * **deadlines** — each call has a wall-clock budget
      (``policy.call_timeout`` unless overridden) covering backpressure,
      (re)connection, and the response wait;
    * **bounded retries** — transport failures and timeouts are retried
      up to ``policy.max_call_retries`` times with exponential backoff
      plus seeded jitter;
    * **transparent reconnection** — a dead connection is re-dialed on
      the next attempt; in-flight requests are failed fast (woken, not
      leaked) and retried by their callers;
    * **backpressure** — at most ``policy.rpc_window`` requests are in
      flight; further callers wait (against their own deadline);
    * **liveness** — an optional background heartbeat pings the server
      while the channel is idle; consecutive failures mark the peer
      suspect (``healthy()``), and any successful traffic clears it.
    """

    #: consecutive heartbeat failures before the peer is suspect
    SUSPECT_AFTER = 3

    def __init__(
        self,
        address: Tuple[str, int],
        policy=None,
        worker_id: int = -1,
        fault_plan=None,
        metrics=None,
        heartbeat: bool = False,
    ) -> None:
        from .faults import RetryPolicy  # local: faults imports nothing back

        self.address = address
        self.worker_id = worker_id
        self._policy = policy or RetryPolicy()
        self._fault_plan = fault_plan
        self._metrics = metrics
        self.channel_id = f"{os.getpid()}-{next(_CHANNEL_COUNTER)}"
        self._rng = random.Random(worker_id + 1)
        self._sock: Optional[socket.socket] = None
        self._generation = 0
        self._ever_connected = False
        self._conn_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._request_counter = 0
        self._pending: Dict[int, _Pending] = {}
        self._pending_lock = threading.Lock()
        self._window = threading.BoundedSemaphore(
            max(1, self._policy.rpc_window)
        )
        self._inflight = 0
        self._held_frame: Optional[bytes] = None
        self._reorder_timer: Optional[threading.Timer] = None
        self._closed = False
        self._suspect_count = 0
        self.counters: Dict[str, int] = {
            "calls": 0,
            "retries": 0,
            "timeouts": 0,
            "reconnects": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "frames_sent": 0,
            "frames_received": 0,
            "inflight_high_water": 0,
            "heartbeats": 0,
            "heartbeat_failures": 0,
            "stale_responses": 0,
            "torn_frames": 0,
        }
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._heartbeat_stop = threading.Event()
        if heartbeat and self._policy.heartbeat_interval_seconds > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"rpc-heartbeat-w{worker_id}",
                daemon=True,
            )
            self._heartbeat_thread.start()

    # -- counters ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        if self._metrics is not None:
            self._metrics.counter(f"transport.{name}").inc(amount)

    def healthy(self) -> bool:
        """False once ``SUSPECT_AFTER`` consecutive heartbeats failed."""
        return not self._closed and self._suspect_count < self.SUSPECT_AFTER

    # -- connection management -------------------------------------------

    def connect(self, timeout: Optional[float] = None) -> None:
        """Dial eagerly (optional — calls dial lazily)."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self._policy.connect_timeout
        )
        self._ensure_connected(deadline)

    def _ensure_connected(self, deadline: float) -> None:
        with self._conn_lock:
            if self._closed:
                raise ConnectionLostError("channel is closed")
            if self._sock is not None:
                return
            budget = max(0.05, min(
                self._policy.connect_timeout, deadline - time.monotonic()
            ))
            try:
                sock = socket.create_connection(self.address, timeout=budget)
            except _OS_FAILURES as exc:
                raise ConnectionLostError(
                    f"cannot reach worker {self.worker_id} at "
                    f"{self.address[0]}:{self.address[1]}: {exc!r}"
                ) from exc
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            # A fresh connection means fresh liveness state: suspicion
            # accumulated against the *previous* socket must not carry
            # over, or a healed channel reads as dead until enough
            # heartbeats succeed to outvote history that no longer
            # describes this connection.
            self._suspect_count = 0
            self._generation += 1
            if self._ever_connected:
                self._count("reconnects")
            self._ever_connected = True
            receiver = threading.Thread(
                target=self._receive_loop,
                args=(sock, self._generation),
                name=f"rpc-recv-w{self.worker_id}.{self._generation}",
                daemon=True,
            )
            receiver.start()

    def _drop_connection(self) -> None:
        """Tear the current socket down and fail the in-flight waiters."""
        with self._conn_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            # shutdown() before close(): the rx thread blocked in recv()
            # holds an io-ref that defers the real close, so only a
            # shutdown sends the FIN (unwedging the server) and wakes
            # the rx thread promptly.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._fail_pending(
            ConnectionLostError(
                f"connection to worker {self.worker_id} was lost"
            )
        )

    def _fail_pending(self, exc: TransportError) -> None:
        with self._pending_lock:
            waiters = list(self._pending.values())
        for pending in waiters:
            pending.fail(exc)

    # -- receive path -----------------------------------------------------

    def _receive_loop(self, sock: socket.socket, generation: int) -> None:
        decoder = FrameDecoder()
        while True:
            try:
                data = sock.recv(1 << 16)
            except OSError:
                data = b""
            if not data:
                if decoder.pending_bytes:
                    self._count("torn_frames")
                break
            try:
                payloads = decoder.feed(data)
            except FrameError:
                self._count("torn_frames")
                break
            self._count("bytes_received", len(data))
            for payload in payloads:
                self._count("frames_received")
                try:
                    kind, rid, status, body = pickle.loads(payload)
                except Exception:  # noqa: BLE001 — framed but unloadable
                    kind = None
                if kind != "res":
                    self._count("stale_responses")
                    continue
                with self._pending_lock:
                    pending = self._pending.get(rid)
                if pending is None or pending.event.is_set():
                    # A response to a request that already completed via
                    # an earlier transmission — the idempotent-id dance
                    # working as intended.
                    self._count("stale_responses")
                    continue
                pending.status = status
                pending.payload = body
                pending.event.set()
        # Only tear down if nobody reconnected underneath us already.
        with self._conn_lock:
            current = self._sock is sock and self._generation == generation
            if current:
                self._sock = None
        try:
            sock.close()
        except OSError:
            pass
        if current:
            self._fail_pending(
                ConnectionLostError(
                    f"connection to worker {self.worker_id} was lost"
                )
            )

    # -- send path (fault injection lives here) ---------------------------

    def _flush_held(self) -> None:
        """Timer fallback: a reordered frame with no successor still goes."""
        with self._send_lock:
            frame, self._held_frame = self._held_frame, None
            sock = self._sock
        if frame is None or sock is None:
            return
        try:
            sock.sendall(frame)
            self._count("frames_sent")
            self._count("bytes_sent", len(frame))
        except OSError:
            pass

    def _transmit(self, frame: bytes, command: str, internal: bool) -> None:
        """Write one frame, applying injected network faults."""
        plan = self._fault_plan if not internal else None
        spec = plan.on_transport(self.worker_id, command) if plan else None
        if plan is not None and plan.partition_blocks(
            self.worker_id, "request"
        ):
            raise ConnectionLostError(
                f"link to worker {self.worker_id} is partitioned "
                "(injected, request direction)"
            )
        if spec is not None and spec.kind == "slow_link":
            time.sleep(spec.delay if spec.delay > 0 else 0.05)
        with self._send_lock:
            sock = self._sock
            if sock is None:
                raise ConnectionLostError(
                    f"no connection to worker {self.worker_id}"
                )
            if spec is not None and spec.kind == "torn_frame":
                torn = frame[: max(1, len(frame) - 1 - len(frame) // 2)]
                try:
                    sock.sendall(torn)
                except OSError:
                    pass
                self._count("torn_frames")
                # fall through to the drop outside the send lock
            elif spec is not None and spec.kind == "reorder":
                # Hold this frame until the next one passes it on the
                # wire; a timer flushes it if no successor shows up.
                # Callers still await their response, so phase barriers
                # hold — the reorder is visible to the server's arrival
                # order and the client's demultiplexer only.
                self._held_frame = frame
                if self._reorder_timer is not None:
                    self._reorder_timer.cancel()
                self._reorder_timer = threading.Timer(0.05, self._flush_held)
                self._reorder_timer.daemon = True
                self._reorder_timer.start()
                return
            else:
                held, self._held_frame = self._held_frame, None
                try:
                    sock.sendall(frame)
                    self._count("frames_sent")
                    self._count("bytes_sent", len(frame))
                    if held is not None:
                        sock.sendall(held)
                        self._count("frames_sent")
                        self._count("bytes_sent", len(held))
                except OSError as exc:
                    raise ConnectionLostError(
                        f"send to worker {self.worker_id} failed: {exc!r}"
                    ) from exc
        if spec is not None and spec.kind == "torn_frame":
            self._drop_connection()
            raise ConnectionLostError(
                f"frame to worker {self.worker_id} torn mid-send (injected)"
            )
        if plan is not None and plan.partition_blocks(
            self.worker_id, "response"
        ):
            # The request reached the worker; the response direction is
            # cut.  Drop the connection so the retry (same request id)
            # exercises the server's idempotency cache.
            self._drop_connection()
            raise ConnectionLostError(
                f"link from worker {self.worker_id} is partitioned "
                "(injected, response direction)"
            )

    # -- the call ---------------------------------------------------------

    def _next_request_id(self) -> int:
        with self._id_lock:
            self._request_counter += 1
            return self._request_counter

    def _jittered_backoff(self, attempt: int) -> float:
        base = self._policy.backoff(attempt)
        return base * (1.0 + self._policy.backoff_jitter * self._rng.random())

    def call_nowait(
        self,
        command: str,
        args: tuple = (),
        flow_id: Optional[int] = None,
        timeout: Optional[float] = None,
        post_send: Optional[Callable[[], None]] = None,
        internal: bool = False,
        span=None,
    ) -> RpcFuture:
        """Issue one idempotent RPC without waiting for its response.

        The request is transmitted before this returns (a first-send
        transport failure is captured into the future and handled by its
        retry loop), so several calls issued back to back share the wire
        — true pipelining within the channel's ``rpc_window``.  Window
        acquisition still blocks here, which is the backpressure point:
        a caller cannot race further ahead than the window allows.
        Settle the call with :meth:`RpcFuture.result`, which owns the
        deadline/retransmit loop and releases the window slot.
        """
        budget = timeout if timeout is not None else self._policy.call_timeout
        deadline = time.monotonic() + budget
        rid = self._next_request_id()
        frame = encode_frame(
            _dumps(("req", rid, self.channel_id, command, args, flow_id))
        )
        if not self._window.acquire(timeout=budget):
            self._count("timeouts")
            raise RpcTimeoutError(
                f"no in-flight slot for {command} to worker "
                f"{self.worker_id} within {budget:.1f}s "
                f"(window {self._policy.rpc_window})"
            )
        self._inflight += 1
        if self._inflight > self.counters["inflight_high_water"]:
            self.counters["inflight_high_water"] = self._inflight
            if self._metrics is not None:
                self._metrics.gauge("transport.inflight").set(self._inflight)
        pending = _Pending()
        with self._pending_lock:
            self._pending[rid] = pending
        self._count("calls")
        send_failure: Optional[TransportError] = None
        try:
            self._ensure_connected(deadline)
            self._transmit(frame, command, internal)
            if post_send is not None:
                callback, post_send = post_send, None
                callback()
        except TransportError as exc:
            send_failure = exc
        return RpcFuture(
            self,
            command,
            frame,
            pending,
            rid,
            deadline,
            budget,
            post_send,
            internal,
            span,
            send_failure,
        )

    def call(
        self,
        command: str,
        args: tuple = (),
        flow_id: Optional[int] = None,
        timeout: Optional[float] = None,
        post_send: Optional[Callable[[], None]] = None,
        internal: bool = False,
        span=None,
    ) -> Tuple[str, Any]:
        """One idempotent RPC; returns the raw ``(status, payload)``.

        Raises :class:`RpcTimeoutError` when the deadline expires and
        :class:`ConnectionLostError` when the peer stays unreachable
        through the retry budget.  ``post_send`` runs exactly once after
        the first successful transmission (fault injection uses it to
        kill the worker "after send").  Equivalent to
        ``call_nowait(...).result()``.
        """
        return self.call_nowait(
            command,
            args,
            flow_id=flow_id,
            timeout=timeout,
            post_send=post_send,
            internal=internal,
            span=span,
        ).result()

    # -- heartbeat --------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        interval = self._policy.heartbeat_interval_seconds
        while not self._heartbeat_stop.wait(interval):
            if self._closed:
                return
            # Only probe an idle channel: real traffic is its own
            # heartbeat (any success clears the suspect count), and a
            # probe queued behind a long-running command would time out
            # for the wrong reason.
            if self._inflight or self._sock is None:
                continue
            self._count("heartbeats")
            try:
                status, payload = self.call(
                    "__ping__",
                    timeout=min(self._policy.call_timeout, interval * 2),
                    internal=True,
                )
                if status == "ok" and payload == "pong":
                    self._suspect_count = 0
                else:
                    raise ConnectionLostError("bad heartbeat answer")
            except TransportError:
                self._suspect_count += 1
                self._count("heartbeat_failures")

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._heartbeat_stop.set()
        if self._reorder_timer is not None:
            self._reorder_timer.cancel()
        self._drop_connection()


# -- the server -------------------------------------------------------------

#: Responses remembered per server for retry dedup.  The client window
#: bounds how many distinct requests can be outstanding, so a small
#: multiple of the largest sane window suffices.
RESPONSE_CACHE_SIZE = 128


class RpcServer:
    """The worker-side service loop over the framed protocol.

    One connection at a time (there is exactly one controller), requests
    executed sequentially in arrival order, every response cached by its
    idempotent id so a retry after a lost response is answered **without
    re-executing**.  Torn frames and client disappearances are routine:
    the connection is dropped, the accept loop takes the next one.
    """

    #: How often an idle connection wakes to check for a drain-stop.
    DRAIN_POLL_SECONDS = 0.5

    def __init__(
        self,
        handler: Callable[[str, tuple, Optional[int]], Tuple[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._handler = handler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping = False
        self._active: Optional[socket.socket] = None
        # (channel_id, request_id) -> framed response bytes, insertion
        # ordered for FIFO eviction.
        self._responses: Dict[Tuple[str, int], bytes] = {}
        self.stats: Dict[str, int] = {
            "requests": 0,
            "dedup_replays": 0,
            "torn_frames": 0,
            "connections": 0,
        }

    def serve_forever(self) -> None:
        try:
            while not self._stopping:
                try:
                    conn, _peer = self._listener.accept()
                except OSError:
                    break  # listener closed by stop()
                self.stats["connections"] += 1
                self._active = conn
                try:
                    self._serve_connection(conn)
                finally:
                    self._active = None
                    try:
                        conn.close()
                    except OSError:
                        pass
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # A short receive timeout lets the loop observe a drain-stop
        # between frames instead of blocking in recv() forever; in-flight
        # requests still run to completion before the check fires.
        conn.settimeout(self.DRAIN_POLL_SECONDS)
        decoder = FrameDecoder()
        while not self._stopping:
            try:
                data = conn.recv(1 << 16)
            except socket.timeout:
                continue  # idle tick — re-check _stopping
            except OSError:
                data = b""
            if not data:
                if decoder.pending_bytes:
                    self.stats["torn_frames"] += 1
                return
            try:
                payloads = decoder.feed(data)
            except FrameError:
                self.stats["torn_frames"] += 1
                return  # drop the connection; the client resyncs by redial
            for payload in payloads:
                if not self._handle_request(conn, payload):
                    return

    def _handle_request(self, conn: socket.socket, payload: bytes) -> bool:
        """Execute one framed request; False ends the connection."""
        try:
            kind, rid, channel_id, command, args, flow_id = pickle.loads(
                payload
            )
        except Exception:  # noqa: BLE001 — framed but not a request
            return False
        if kind != "req":
            return False
        key = (channel_id, rid)
        cached = self._responses.get(key)
        if cached is not None:
            self.stats["dedup_replays"] += 1
            return self._send(conn, cached)
        self.stats["requests"] += 1
        if command == "__ping__":
            status, result = "ok", "pong"
        elif command == "__stop__":
            self._stopping = True
            status, result = "ok", None
        else:
            status, result = self._handler(command, args, flow_id)
        response = encode_frame(_dumps(("res", rid, status, result)))
        self._responses[key] = response
        while len(self._responses) > RESPONSE_CACHE_SIZE:
            self._responses.pop(next(iter(self._responses)))
        delivered = self._send(conn, response)
        return delivered and not self._stopping

    @staticmethod
    def _send(conn: socket.socket, frame: bytes) -> bool:
        try:
            # The drain-poll receive timeout must not tear a large
            # response mid-sendall; sends are always blocking.
            timeout = conn.gettimeout()
            conn.settimeout(None)
            try:
                conn.sendall(frame)
            finally:
                conn.settimeout(timeout)
            return True
        except OSError:
            # The client vanished mid-response; the cached copy answers
            # its retry after it reconnects.
            return False

    def stop(self, drain: bool = False) -> None:
        """Stop from another thread; the loop exits promptly.

        Forceful by default: the active connection is shut down,
        aborting whatever was mid-flight.  With ``drain=True`` the
        listener closes but the live connection is left untouched, so
        the request currently executing finishes and its response is
        delivered before the loop exits at the next receive-timeout
        tick — this is what SIGTERM handlers want.
        """
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        if drain:
            return
        active = self._active
        if active is not None:
            try:
                active.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


def parse_hostport(spec: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse a ``host:port`` (or bare ``port``) worker spec."""
    text = spec.strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host.strip() or default_host
    else:
        host, port_text = default_host, text
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(
            f"bad worker spec {spec!r}: expected host:port"
        ) from exc
    if not 0 <= port < 65536:
        raise ValueError(f"bad worker spec {spec!r}: port out of range")
    return host, port
